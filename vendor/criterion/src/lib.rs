//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmarking surface the `benches/` targets use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple measurement loop: warm up for `warm_up_time`, then run
//! `sample_size` samples (each sized to fill `measurement_time /
//! sample_size`) and report mean / min / max per-iteration wall time.
//!
//! `CRITERION_QUICK=1` shrinks warm-up and measurement windows to smoke
//! levels so CI can run every bench target in seconds.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// An identifier of one benchmark within a group, e.g. `solve/128`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher<'a> {
    stats: &'a mut SampleStats,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

/// Accumulated per-iteration timings for one benchmark.
#[derive(Debug, Default, Clone, Copy)]
pub struct SampleStats {
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample's seconds per iteration.
    pub min_s: f64,
    /// Slowest sample's seconds per iteration.
    pub max_s: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

impl Bencher<'_> {
    /// Times `f`, warm-up then samples; the closure's return value is
    /// passed through [`black_box`] so the computation isn't elided.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses, measuring the
        // rough per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.measurement.as_secs_f64() / self.sample_size as f64)
            / per_iter.max(1e-9))
        .ceil()
        .max(1.0) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        let sum: f64 = samples.iter().sum();
        *self.stats = SampleStats {
            mean_s: sum / samples.len() as f64,
            min_s: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_s: samples.iter().copied().fold(0.0, f64::max),
            iters: total_iters,
        };
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

/// Formats seconds human-readably (ns/µs/ms/s).
fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !quick_mode() {
            self.measurement = d;
        }
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !quick_mode() {
            self.warm_up = d;
        }
        self
    }

    /// Sets the number of samples.
    pub fn sample_size(&mut self, k: usize) -> &mut Self {
        self.sample_size = k.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut stats = SampleStats::default();
        let mut b = Bencher {
            stats: &mut stats,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b);
        println!(
            "bench {full:<40} mean {:>10}  (min {}, max {}, {} iters)",
            fmt_time(stats.mean_s),
            fmt_time(stats.min_s),
            fmt_time(stats.max_s),
            stats.iters,
        );
        self.criterion.results.push((full, stats));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(name, stats)` for every benchmark run, in execution order.
    pub results: Vec<(String, SampleStats)>,
}

impl Criterion {
    /// Opens a named group with default settings (3 s measure, 1 s warm-up,
    /// 10 samples; `CRITERION_QUICK=1` shrinks to 60 ms total).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warm_up, measurement) = if quick_mode() {
            (Duration::from_millis(10), Duration::from_millis(50))
        } else {
            (Duration::from_secs(1), Duration::from_secs(3))
        };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up,
            measurement,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group(name.to_string())
            .bench_function("run", f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
