//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small slice of `rand`'s API the simulator uses: [`rngs::StdRng`]
//! (here a xoshiro256++ generator seeded via SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_bool`, and `gen_range`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed (the
//! property every test and experiment relies on) but do **not** match
//! upstream `rand`'s ChaCha12 output.

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via the widening-multiply method.
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // Integer compare on the top 53 bits — same acceptance probability
        // as a float compare against a 53-bit uniform, without the
        // int→float conversion on every draw.
        (self.next_u64() >> 11) < (p * (1u64 << 53) as f64) as u64
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, cheap generator for high-volume process randomness
    /// (upstream `rand`'s `SmallRng` role): SplitMix64, one 64-bit word of
    /// state and ~3 arithmetic ops per draw. Statistically solid for
    /// simulation workloads but, like upstream's, not reproducible across
    /// library versions — derive seeds from [`StdRng`] when a stream must
    /// stay pinned.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // The seed is a raw position in SplitMix64's single 2^64
            // sequence: seeds that differ by the golden-gamma increment
            // yield the same stream offset by one draw. Derive seeds from
            // a master `StdRng` (as the engine does) rather than from
            // structured values when streams must be independent.
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` if empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn small_rng_is_deterministic_and_fair() {
        use super::rngs::SmallRng;
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs, (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "biased coin: {hits}");
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "biased coin: {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: u32 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // All values of a small range are reachable.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
