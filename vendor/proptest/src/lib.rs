//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this repository's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` inner
//! attribute, range strategies over integers and floats, and
//! `prop_assert!` / `prop_assert_eq!`. Cases are sampled from a
//! deterministic RNG (no shrinking): a failing case prints its inputs so
//! it can be reproduced as a plain unit test.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Types samplable as proptest strategies (ranges only, which is all the
/// tests use).
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// whole process) with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                left,
                right,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                ::std::stringify!($a),
                ::std::stringify!($b),
                left,
                right,
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                left,
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` looping `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use ::rand::SeedableRng as _;
            let config: $crate::ProptestConfig = $cfg;
            // Deterministic stream: failures reproduce run-over-run.
            let mut rng = ::rand::rngs::StdRng::seed_from_u64(0x5eed_cafe);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                    $(::std::clone::Clone::clone(&$arg)),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!("proptest case {case} failed [{inputs}]: {e}");
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}
