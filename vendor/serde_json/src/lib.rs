//! Offline, API-compatible subset of `serde_json`: renders the vendored
//! serde [`Value`] tree to JSON text and parses JSON text back.

#![forbid(unsafe_code)]

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] only for non-finite floats, which JSON cannot
/// represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to an indented (2-space) JSON string.
///
/// # Errors
///
/// Returns [`Error`] only for non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => write!(out, "{u}").expect("writing to String"),
        Value::I64(i) => write!(out, "{i}").expect("writing to String"),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("JSON cannot represent {f}")));
            }
            // Rust's shortest-roundtrip Display guarantees parse-back
            // equality; add ".0" so integers stay recognizably floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                write!(out, "{f:.1}").expect("writing to String");
            } else {
                write!(out, "{f}").expect("writing to String");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at offset {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x \"y\"\n".into())),
            ("d".into(), Value::F64(1.25)),
            ("e".into(), Value::I64(-3)),
        ]);
        let s = to_string(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&s).unwrap();
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    /// Serializes/deserializes a raw Value verbatim, for tests.
    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(ValueWrap(v.clone()))
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!((from_str::<f64>("2.5e3").unwrap() - 2500.0).abs() < 1e-12);
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<u64>("xyz").is_err());
        assert!(from_str::<u64>("1 2").is_err());
    }

    #[test]
    fn float_display_roundtrips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }
}
