//! The JSON-shaped value tree the vendored serde serializes through.

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or any signed) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Shared `null` used when an object key is absent (so `Option` fields
/// deserialize to `None` without allocating).
pub static NULL: Value = Value::Null;

impl Value {
    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 2f64.powi(64) => Some(*f as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value's fields if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value's items if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up `key` in an object's fields; absent keys yield `null` (so
/// optional fields deserialize as `None`). Used by derived `Deserialize`.
pub fn field<'a>(fields: &'a [(String, Value)], key: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map_or(&NULL, |(_, v)| v)
}

/// A deserialization shape/type mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a value of the wrong kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }

    /// Error with a custom message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}
