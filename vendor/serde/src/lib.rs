//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal serde: a JSON-shaped [`value::Value`] tree, [`Serialize`] /
//! [`Deserialize`] traits over it, and derive macros (re-exported from
//! `serde_derive`) supporting named structs, tuple/newtype structs, and
//! enums with unit or struct variants — exactly the shapes this repository
//! declares. The companion `serde_json` crate renders and parses the tree.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{DeError, Value};

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape or types mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty => $name:expr),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected($name, v))?;
                <$t>::try_from(u).map_err(|_| DeError::expected($name, v))
            }
        }
    )*};
}

impl_unsigned!(u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64");

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let u = v.as_u64().ok_or_else(|| DeError::expected("usize", v))?;
        usize::try_from(u).map_err(|_| DeError::expected("usize", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty => $name:expr),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected($name, v))?;
                <$t>::try_from(i).map_err(|_| DeError::expected($name, v))
            }
        }
    )*};
}

impl_signed!(i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64");

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = v.as_i64().ok_or_else(|| DeError::expected("isize", v))?;
        isize::try_from(i).map_err(|_| DeError::expected("isize", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("char", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == [$($idx),+].len() => {
                        let mut it = items.iter();
                        Ok(($($t::from_value(it.next().expect("length checked"))?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
