//! Derive macros for the vendored serde subset.
//!
//! `syn`/`quote` are not available offline, so the item is parsed directly
//! from the `proc_macro` token stream. Supported shapes — the only ones
//! this repository declares — are structs with named fields, tuple/newtype
//! structs, unit structs, and enums whose variants are unit or
//! struct-like. Generic types and `#[serde(...)]` attributes are not
//! supported and panic with a clear message at expansion time.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// Skips one attribute (`#` already consumed ⇒ consume the `[...]` group).
fn skip_attr(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("expected [...] after # in attribute, found {other:?}"),
    }
}

/// Consumes leading attributes and a visibility modifier, if present.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                skip_attr(iter);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses the field names of a named-fields brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected : after field {name}, found {other:?}"),
        }
        fields.push(name);
        // Skip the type: angle brackets are bare puncts in the stream, so
        // track their depth to find the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the fields of a tuple-struct paren group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tt in group {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<(String, Shape)> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde derive does not support tuple enum variants ({name})")
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        // Skip an optional discriminant, then the separating comma.
        for tt in iter.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct or enum, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type {name}");
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Struct {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Item::Struct {
            name,
            shape: Shape::Unit,
        },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (k, t) => panic!("unsupported item shape for {name}: {k} followed by {t:?}"),
    }
}

fn named_to_value(fields: &[String], prefix: &str) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f})),"
            )
        })
        .collect();
    format!("::serde::value::Value::Object(::std::vec![{pushes}])")
}

fn named_from_value(ty_path: &str, fields: &[String], source: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::value::field({source}, \"{f}\"))?,"
            )
        })
        .collect();
    format!("{ty_path} {{ {inits} }}")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let to = match &shape {
                Shape::Named(fields) => named_to_value(fields, "self."),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(k) => {
                    let items: String = (0..*k)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::value::Value::Array(::std::vec![{items}])")
                }
                Shape::Unit => "::serde::value::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{ {to} }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::value::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner = named_to_value(fields, "");
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::value::Value::Object(::std::vec![
                                (::std::string::String::from(\"{v}\"), {inner}),
                            ]),"
                        )
                    }
                    Shape::Tuple(_) => unreachable!("rejected during parsing"),
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    body.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let from = match &shape {
                Shape::Named(fields) => {
                    let build = named_from_value(&name, fields, "fields");
                    format!(
                        "let fields = v.as_object()
                             .ok_or_else(|| ::serde::value::DeError::expected(\"object\", v))?;
                         ::std::result::Result::Ok({build})"
                    )
                }
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(k) => {
                    let inits: String = (0..*k)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                        .collect();
                    format!(
                        "let items = v.as_array()
                             .ok_or_else(|| ::serde::value::DeError::expected(\"array\", v))?;
                         if items.len() != {k} {{
                             return ::std::result::Result::Err(
                                 ::serde::value::DeError::msg(\"tuple arity mismatch\"));
                         }}
                         ::std::result::Result::Ok({name}({inits}))"
                    )
                }
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> ::std::result::Result<Self, ::serde::value::DeError> {{ {from} }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(v, s)| match s {
                    Shape::Named(fields) => {
                        let build = named_from_value(&format!("{name}::{v}"), fields, "fields");
                        Some(format!(
                            "\"{v}\" => {{
                                let fields = inner.as_object()
                                    .ok_or_else(|| ::serde::value::DeError::expected(\"object\", inner))?;
                                ::std::result::Result::Ok({build})
                            }}"
                        ))
                    }
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> ::std::result::Result<Self, ::serde::value::DeError> {{
                        match v {{
                            ::serde::value::Value::Str(s) => match s.as_str() {{
                                {unit_arms}
                                _ => ::std::result::Result::Err(::serde::value::DeError::msg(
                                    ::std::format!(\"unknown variant {{s}} of {name}\"))),
                            }},
                            ::serde::value::Value::Object(o) if o.len() == 1 => {{
                                let (tag, inner) = (&o[0].0, &o[0].1);
                                let _ = inner;
                                match tag.as_str() {{
                                    {struct_arms}
                                    _ => ::std::result::Result::Err(::serde::value::DeError::msg(
                                        ::std::format!(\"unknown variant {{tag}} of {name}\"))),
                                }}
                            }}
                            other => ::std::result::Result::Err(
                                ::serde::value::DeError::expected(\"enum tag\", other)),
                        }}
                    }}
                }}"
            )
        }
    };
    body.parse().expect("derived Deserialize impl parses")
}
