//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of rayon's API the experiment harness uses — `into_par_iter`
//! / `par_iter` followed by `map(...).collect()` — implemented with
//! `std::thread::scope` over contiguous chunks. Results are written back
//! by original index, so `collect` yields exactly the serial order: with
//! per-item derived seeds, parallel runs are bit-identical to serial ones.

use std::num::NonZeroUsize;

/// Commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to use (`RAYON_NUM_THREADS` overrides the
/// machine's available parallelism, matching upstream's env knob).
fn thread_count() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(k) = v.parse::<usize>() {
            if k >= 1 {
                return k;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// preserving input order in the output.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let threads = thread_count().min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    // Deal items round-robin so a slow prefix doesn't serialize on one
    // worker; worker w owns items w, w+threads, w+2·threads, … and the
    // matching (disjoint) `&mut` output slots.
    let mut work: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        work[i % threads].push(item);
    }
    let mut worker_slots: Vec<Vec<&mut Option<R>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        worker_slots[i % threads].push(slot);
    }
    std::thread::scope(|scope| {
        let f = &f;
        for (chunk, outs) in work.drain(..).zip(worker_slots) {
            scope.spawn(move || {
                for (item, slot) in chunk.into_iter().zip(outs) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by exactly one worker"))
        .collect()
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of [`ParIter::map`]; terminal operation is [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed in parallel at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range!(u32, u64, usize);

/// Types whose references convert into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = vec![3u32, 1, 4, 1, 5];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..=100).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
