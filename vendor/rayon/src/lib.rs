//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of rayon's API the experiment harness uses — `into_par_iter`
//! / `par_iter` followed by `map(...).collect()` — implemented with
//! `std::thread::scope` over contiguous chunks. Results are written back
//! by original index, so `collect` yields exactly the serial order: with
//! per-item derived seeds, parallel runs are bit-identical to serial ones.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::num::NonZeroUsize;

/// Commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    /// The ambient pool size installed by [`ThreadPool::install`] on the
    /// current thread (`None` = no pool installed; fall back to the env
    /// knob / machine parallelism).
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use: an installed [`ThreadPool`] wins, then
/// `RAYON_NUM_THREADS` (upstream's env knob), then the machine's available
/// parallelism.
fn thread_count() -> usize {
    if let Some(k) = INSTALLED_THREADS.get() {
        return k.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(k) = v.parse::<usize>() {
            if k >= 1 {
                return k;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scoped thread pool, mirroring `rayon::ThreadPool`.
///
/// This subset implements parallelism with `std::thread::scope` per
/// fan-out rather than persistent workers, so the pool is a *capacity*:
/// [`ThreadPool::install`] makes every parallel iterator on the calling
/// thread use `num_threads` workers for the duration of the closure,
/// without touching process-global state. Two pools on two threads
/// coexist — the property the experiment harness needs so concurrent
/// labs (and tests running labs in parallel) don't race on
/// `RAYON_NUM_THREADS`.
///
/// Nested `install`s stack: the innermost pool wins, and the previous
/// ambient size is restored on exit (also on panic).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// A pool of `num_threads` workers (clamped to at least 1).
    pub fn new(num_threads: usize) -> Self {
        ThreadPool {
            num_threads: num_threads.max(1),
        }
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool as the calling thread's ambient pool:
    /// parallel iterators inside use `num_threads` workers. Restores the
    /// previous ambient pool on exit, even if `op` panics.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.set(self.0);
            }
        }
        let _restore = Restore(INSTALLED_THREADS.replace(Some(self.num_threads)));
        op()
    }
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// preserving input order in the output.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let threads = thread_count().min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    // Deal items round-robin so a slow prefix doesn't serialize on one
    // worker; worker w owns items w, w+threads, w+2·threads, … and the
    // matching (disjoint) `&mut` output slots.
    let mut work: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        work[i % threads].push(item);
    }
    let mut worker_slots: Vec<Vec<&mut Option<R>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        worker_slots[i % threads].push(slot);
    }
    std::thread::scope(|scope| {
        let f = &f;
        for (chunk, outs) in work.drain(..).zip(worker_slots) {
            scope.spawn(move || {
                for (item, slot) in chunk.into_iter().zip(outs) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by exactly one worker"))
        .collect()
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of [`ParIter::map`]; terminal operation is [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed in parallel at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range!(u32, u64, usize);

/// Types whose references convert into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = vec![3u32, 1, 4, 1, 5];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn install_scopes_thread_count_and_restores() {
        let pool = super::ThreadPool::new(3);
        assert_eq!(pool.current_num_threads(), 3);
        let before = super::thread_count();
        pool.install(|| {
            assert_eq!(super::thread_count(), 3);
            // Nested installs stack; the innermost wins.
            super::ThreadPool::new(1).install(|| {
                assert_eq!(super::thread_count(), 1);
            });
            assert_eq!(super::thread_count(), 3);
        });
        assert_eq!(super::thread_count(), before);
    }

    #[test]
    fn install_restores_on_panic() {
        let before = super::thread_count();
        let outcome = std::panic::catch_unwind(|| {
            super::ThreadPool::new(2).install(|| panic!("boom"));
        });
        assert!(outcome.is_err());
        assert_eq!(super::thread_count(), before);
    }

    #[test]
    fn pools_on_separate_threads_are_independent() {
        std::thread::scope(|s| {
            for k in [1usize, 4] {
                s.spawn(move || {
                    super::ThreadPool::new(k).install(|| {
                        assert_eq!(super::thread_count(), k);
                        let out: Vec<u64> = (0u64..64).into_par_iter().map(|x| x * 3).collect();
                        let expect: Vec<u64> = (0u64..64).map(|x| x * 3).collect();
                        assert_eq!(out, expect);
                    });
                });
            }
        });
    }

    #[test]
    fn zero_thread_pool_clamps_to_one() {
        super::ThreadPool::new(0).install(|| {
            assert_eq!(super::thread_count(), 1);
        });
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..=100).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
