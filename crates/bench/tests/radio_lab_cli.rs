//! End-to-end tests of the `radio-lab` binary's streaming surface: the
//! `--stream --no-records --records --csv` pipeline produces parseable
//! artifacts, the streamed CSV is byte-identical to the materialized run's,
//! colliding `--csv` targets uniquify instead of clobbering, duplicate
//! value-taking flags are refused, a killed checkpointed sweep resumes
//! byte-identically (torn `--records` tails truncated with a warning,
//! changed-spec fingerprints refused), and a sharded sweep merges
//! byte-identically to the single-process run.

use std::path::{Path, PathBuf};
use std::process::Command;

const SPEC: &str = r#"{
  "id": "CLI-STREAM",
  "caption": "radio-lab CLI streaming smoke",
  "render": "Aggregate",
  "topologies": [
    { "kind": { "GeometricDense": { "n": 12 } }, "seed": null },
    { "kind": { "GeometricDense": { "n": 20 } }, "seed": null }
  ],
  "adversaries": [{ "Random": { "p": 0.5 } }],
  "workloads": [
    { "kind": { "Core": { "algo": "Mis" } },
      "run_seed": null, "net_seed": null, "det_seed": null }
  ],
  "trials": 3,
  "nest": "TopologyMajor",
  "seeds": { "net_base": 77, "run_base": 5 },
  "stop": "Default",
  "aggregate": null
}"#;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radio_lab_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn lab(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_radio-lab"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("radio-lab spawns")
}

#[test]
fn streamed_csv_is_byte_identical_to_materialized() {
    let dir = scratch("ident");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");

    let out = lab(
        &["spec.json", "--out", "mat.json", "--csv", "mat.csv"],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "2",
            "--no-records",
            "--records",
            "records.jsonl",
            "--out",
            "str.json",
            "--csv",
            "str.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mat = std::fs::read_to_string(dir.join("mat.csv")).expect("materialized CSV");
    let str_csv = std::fs::read_to_string(dir.join("str.csv")).expect("streamed CSV");
    assert_eq!(str_csv, mat, "streamed CSV drifted from materialized");

    // The JSONL log holds one parseable record per unit (MIS = one record
    // each), and no cell anywhere reads "NaN".
    let jsonl = std::fs::read_to_string(dir.join("records.jsonl")).expect("JSONL log");
    assert_eq!(jsonl.lines().count(), 6, "2 topologies × 1 × 1 × 3 trials");
    for line in jsonl.lines() {
        assert!(line.contains("\"algo\""), "record line: {line}");
    }
    assert!(!str_csv.contains("NaN"), "NaN leaked into CSV: {str_csv}");

    // The streamed results JSON carries counts, not records.
    let report = std::fs::read_to_string(dir.join("str.json")).expect("results JSON");
    assert!(report.contains("\"schema\": \"radio-lab/v2\""));
    assert!(report.contains("\"units\": 6"));
    assert!(
        report.contains("\"run\": null"),
        "records embedded despite --no-records"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_csv_targets_uniquify_and_warn() {
    let dir = scratch("dup");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    // The same spec twice: both tables share the id CLI-STREAM, which
    // previously collapsed to one clobbered CSV target.
    let out = lab(
        &[
            "spec.json",
            "spec.json",
            "--out",
            "dup.json",
            "--csv",
            "dup.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let first = dir.join("dup_CLI-STREAM.csv");
    let second = dir.join("dup_CLI-STREAM_2.csv");
    assert!(first.exists(), "first table's CSV missing");
    assert!(
        second.exists(),
        "second table's CSV was clobbered into the first"
    );
    assert_eq!(
        std::fs::read_to_string(&first).expect("first CSV"),
        std::fs::read_to_string(&second).expect("second CSV"),
        "identical specs must produce identical tables"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("collides"),
        "no collision warning in stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunk_without_stream_is_rejected() {
    let dir = scratch("reject");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    let out = lab(&["spec.json", "--chunk", "4"], &dir);
    assert!(
        !out.status.success(),
        "--chunk without --stream must exit nonzero"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_value_flags_are_rejected_not_swallowed() {
    // `--out a.json --out b.json` used to keep a.json and silently treat
    // b.json as a positional (spec file) argument.
    let dir = scratch("dupflag");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    for dup in [
        ["--out", "a.json", "--out", "b.json"],
        ["--csv", "a.csv", "--csv", "b.csv"],
        ["--threads", "1", "--threads", "2"],
    ] {
        let mut args = vec!["spec.json"];
        args.extend(dup);
        let out = lab(&args, &dir);
        assert!(
            !out.status.success(),
            "duplicate {} must exit nonzero",
            dup[0]
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(dup[0]) && stderr.contains("at most once"),
            "unclear duplicate-flag error: {stderr}"
        );
        assert!(
            !dir.join("a.json").exists() && !dir.join("b.json").exists(),
            "a duplicate flag still wrote output"
        );
    }
    // --records and --chunk are stream-only; exercise their duplicates
    // under --stream.
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "2",
            "--chunk",
            "3",
            "--out",
            "o.json",
        ],
        &dir,
    );
    assert!(!out.status.success(), "duplicate --chunk must exit nonzero");
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--records",
            "a.jsonl",
            "--records",
            "b.jsonl",
        ],
        &dir,
    );
    assert!(
        !out.status.success(),
        "duplicate --records must exit nonzero"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `lab` with an environment variable set.
fn lab_env(args: &[&str], cwd: &Path, key: &str, value: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_radio-lab"))
        .args(args)
        .current_dir(cwd)
        .env(key, value)
        .output()
        .expect("radio-lab spawns")
}

#[test]
fn killed_sweep_resumes_byte_identical_even_with_a_torn_records_tail() {
    let dir = scratch("resume");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    // Uninterrupted reference.
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "2",
            "--records",
            "ref.jsonl",
            "--out",
            "ref.json",
            "--csv",
            "ref.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ref_stdout = out.stdout.clone();
    // Interrupted run: the sweep "dies" at the second chunk boundary
    // (mimicking SIGKILL with exit 137), leaving the checkpoint behind.
    let args = [
        "spec.json",
        "--stream",
        "--chunk",
        "2",
        "--records",
        "run.jsonl",
        "--out",
        "run.json",
        "--csv",
        "run.csv",
        "--checkpoint",
        "cp.json",
    ];
    let out = lab_env(&args, &dir, "RADIO_LAB_DIE_AFTER_CHUNKS", "2");
    assert_eq!(out.status.code(), Some(137), "simulated kill exit code");
    assert!(dir.join("cp.json").exists(), "checkpoint left behind");
    assert!(
        !dir.join("run.csv").exists(),
        "no CSV must exist before completion"
    );
    // Simulate the torn final line of a crash mid-write.
    let mut torn = std::fs::read(dir.join("run.jsonl")).expect("partial log");
    torn.extend_from_slice(b"{\"algo\": \"torn");
    std::fs::write(dir.join("run.jsonl"), torn).expect("torn tail appended");
    // Resume: output must be byte-identical to the uninterrupted run.
    let mut resume_args = args.to_vec();
    resume_args.push("--resume");
    let out = lab(&resume_args, &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("torn"),
        "no torn-tail warning: {stderr}"
    );
    assert_eq!(out.stdout, ref_stdout, "stdout table drifted after resume");
    for (a, b) in [("ref.csv", "run.csv"), ("ref.jsonl", "run.jsonl")] {
        assert_eq!(
            std::fs::read(dir.join(a)).expect(a),
            std::fs::read(dir.join(b)).expect(b),
            "{b} drifted from {a}"
        );
    }
    assert!(
        !dir.join("cp.json").exists(),
        "checkpoint consumed on completion"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_changed_spec_fingerprint() {
    let dir = scratch("fingerprint");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    let args = [
        "spec.json",
        "--stream",
        "--chunk",
        "2",
        "--out",
        "run.json",
        "--checkpoint",
        "cp.json",
    ];
    let out = lab_env(&args, &dir, "RADIO_LAB_DIE_AFTER_CHUNKS", "1");
    assert_eq!(out.status.code(), Some(137));
    // The spec changes under the checkpoint (more trials).
    std::fs::write(
        dir.join("spec.json"),
        SPEC.replace("\"trials\": 3", "\"trials\": 4"),
    )
    .expect("spec rewrites");
    let mut resume_args = args.to_vec();
    resume_args.push("--resume");
    let out = lab(&resume_args, &dir);
    assert!(!out.status.success(), "fingerprint mismatch must refuse");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fingerprint") && stderr.contains("refusing"),
        "unclear refusal: {stderr}"
    );
    // Starting fresh over an existing checkpoint is refused too.
    let out = lab(&args, &dir);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume"),
        "should point at --resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_sweep_merges_byte_identical_to_single_run() {
    let dir = scratch("shard");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "2",
            "--records",
            "ref.jsonl",
            "--out",
            "ref.json",
            "--csv",
            "ref.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ref_stdout = out.stdout.clone();
    for i in 0..3 {
        let shard = format!("{i}/3");
        let records = format!("s{i}.jsonl");
        let partial = format!("s{i}.partial");
        let out = lab(
            &[
                "spec.json",
                "--stream",
                "--chunk",
                "2",
                "--shard",
                &shard,
                "--records",
                &records,
                "--out",
                &partial,
            ],
            &dir,
        );
        assert!(
            out.status.success(),
            "shard {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Merge accepts partials in any order; fold is by shard index.
    let out = lab(
        &[
            "merge",
            "s1.partial",
            "s2.partial",
            "s0.partial",
            "--out",
            "merged.json",
            "--csv",
            "merged.csv",
            "--records",
            "merged.jsonl",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, ref_stdout, "merged stdout table drifted");
    for (a, b) in [("ref.csv", "merged.csv"), ("ref.jsonl", "merged.jsonl")] {
        assert_eq!(
            std::fs::read(dir.join(a)).expect(a),
            std::fs::read(dir.join(b)).expect(b),
            "{b} drifted from {a}"
        );
    }
    // A missing shard is refused.
    let out = lab(
        &["merge", "s0.partial", "s2.partial", "--out", "x.json"],
        &dir,
    );
    assert!(!out.status.success(), "missing shard must refuse");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_flag_rejects_malformed_and_out_of_range_refs() {
    let dir = scratch("shardflag");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    // Every rejected form must exit 2 (usage) with a diagnostic naming
    // the problem, and must produce no partial artifact.
    for (shard, why) in [
        ("0/0", "zero shard count"),
        ("2/2", "index == count"),
        ("3/2", "index past count"),
        ("x/2", "non-numeric index"),
        ("1/y", "non-numeric count"),
        ("1", "missing count"),
        ("1-2", "wrong separator"),
        ("-1/2", "negative index"),
    ] {
        let out = lab(
            &[
                "spec.json",
                "--stream",
                "--shard",
                shard,
                "--out",
                "part.partial",
            ],
            &dir,
        );
        assert_eq!(
            out.status.code(),
            Some(2),
            "--shard {shard} ({why}) must exit 2"
        );
        assert!(
            !dir.join("part.partial").exists(),
            "--shard {shard} ({why}) must not write a partial"
        );
    }
    // The well-formed boundary neighbours still work.
    for shard in ["0/1", "1/2"] {
        let out = lab(
            &[
                "spec.json",
                "--stream",
                "--shard",
                shard,
                "--out",
                "part.partial",
            ],
            &dir,
        );
        assert!(
            out.status.success(),
            "--shard {shard} must run: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::remove_file(dir.join("part.partial")).expect("partial written");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
