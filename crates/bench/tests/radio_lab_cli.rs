//! End-to-end tests of the `radio-lab` binary's streaming surface: the
//! `--stream --no-records --records --csv` pipeline produces parseable
//! artifacts, the streamed CSV is byte-identical to the materialized run's,
//! and colliding `--csv` targets uniquify instead of clobbering.

use std::path::{Path, PathBuf};
use std::process::Command;

const SPEC: &str = r#"{
  "id": "CLI-STREAM",
  "caption": "radio-lab CLI streaming smoke",
  "render": "Aggregate",
  "topologies": [
    { "kind": { "GeometricDense": { "n": 12 } }, "seed": null },
    { "kind": { "GeometricDense": { "n": 20 } }, "seed": null }
  ],
  "adversaries": [{ "Random": { "p": 0.5 } }],
  "workloads": [
    { "kind": { "Core": { "algo": "Mis" } },
      "run_seed": null, "net_seed": null, "det_seed": null }
  ],
  "trials": 3,
  "nest": "TopologyMajor",
  "seeds": { "net_base": 77, "run_base": 5 },
  "stop": "Default",
  "aggregate": null
}"#;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radio_lab_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn lab(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_radio-lab"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("radio-lab spawns")
}

#[test]
fn streamed_csv_is_byte_identical_to_materialized() {
    let dir = scratch("ident");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");

    let out = lab(
        &["spec.json", "--out", "mat.json", "--csv", "mat.csv"],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "2",
            "--no-records",
            "--records",
            "records.jsonl",
            "--out",
            "str.json",
            "--csv",
            "str.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mat = std::fs::read_to_string(dir.join("mat.csv")).expect("materialized CSV");
    let str_csv = std::fs::read_to_string(dir.join("str.csv")).expect("streamed CSV");
    assert_eq!(str_csv, mat, "streamed CSV drifted from materialized");

    // The JSONL log holds one parseable record per unit (MIS = one record
    // each), and no cell anywhere reads "NaN".
    let jsonl = std::fs::read_to_string(dir.join("records.jsonl")).expect("JSONL log");
    assert_eq!(jsonl.lines().count(), 6, "2 topologies × 1 × 1 × 3 trials");
    for line in jsonl.lines() {
        assert!(line.contains("\"algo\""), "record line: {line}");
    }
    assert!(!str_csv.contains("NaN"), "NaN leaked into CSV: {str_csv}");

    // The streamed results JSON carries counts, not records.
    let report = std::fs::read_to_string(dir.join("str.json")).expect("results JSON");
    assert!(report.contains("\"schema\": \"radio-lab/v2\""));
    assert!(report.contains("\"units\": 6"));
    assert!(
        report.contains("\"run\": null"),
        "records embedded despite --no-records"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_csv_targets_uniquify_and_warn() {
    let dir = scratch("dup");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    // The same spec twice: both tables share the id CLI-STREAM, which
    // previously collapsed to one clobbered CSV target.
    let out = lab(
        &[
            "spec.json",
            "spec.json",
            "--out",
            "dup.json",
            "--csv",
            "dup.csv",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let first = dir.join("dup_CLI-STREAM.csv");
    let second = dir.join("dup_CLI-STREAM_2.csv");
    assert!(first.exists(), "first table's CSV missing");
    assert!(
        second.exists(),
        "second table's CSV was clobbered into the first"
    );
    assert_eq!(
        std::fs::read_to_string(&first).expect("first CSV"),
        std::fs::read_to_string(&second).expect("second CSV"),
        "identical specs must produce identical tables"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("collides"),
        "no collision warning in stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunk_without_stream_is_rejected() {
    let dir = scratch("reject");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    let out = lab(&["spec.json", "--chunk", "4"], &dir);
    assert!(
        !out.status.success(),
        "--chunk without --stream must exit nonzero"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
