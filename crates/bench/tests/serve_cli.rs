//! End-to-end tests of the fault-tolerant sweep service: `radio-lab
//! serve` with a worker fleet must produce stdout/CSV/JSONL
//! byte-identical to the uninterrupted single-process `--stream` run —
//! on the happy path, across worker counts, and under every injected
//! fault the service claims to survive (worker kills at each chunk
//! boundary, torn record-log tails, heartbeat stalls that force a lease
//! takeover, and bounded sink-error retries). A shard that exhausts its
//! retries must degrade loudly: partial table marked INCOMPLETE, no
//! CSV/JSONL artifacts, exit code 3.

use std::path::{Path, PathBuf};
use std::process::Command;

const SPEC: &str = r#"{
  "id": "SERVE-CLI",
  "caption": "radio-lab serve chaos smoke",
  "render": "Aggregate",
  "topologies": [
    { "kind": { "GeometricDense": { "n": 12 } }, "seed": null },
    { "kind": { "GeometricDense": { "n": 20 } }, "seed": null }
  ],
  "adversaries": [{ "Random": { "p": 0.5 } }],
  "workloads": [
    { "kind": { "Core": { "algo": "Mis" } },
      "run_seed": null, "net_seed": null, "det_seed": null }
  ],
  "trials": 3,
  "nest": "TopologyMajor",
  "seeds": { "net_base": 77, "run_base": 5 },
  "stop": "Default",
  "aggregate": null
}"#;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radio_serve_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn lab(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_radio-lab"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("radio-lab spawns")
}

/// Runs the uninterrupted single-process reference and returns its
/// stdout; `ref.csv` and `ref.jsonl` land in `dir`.
fn reference(dir: &Path) -> Vec<u8> {
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    let out = lab(
        &[
            "spec.json",
            "--stream",
            "--chunk",
            "1",
            "--no-records",
            "--records",
            "ref.jsonl",
            "--csv",
            "ref.csv",
            "--out",
            "ref.json",
        ],
        dir,
    );
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Asserts a finished serve run's artifacts match the reference
/// byte-for-byte.
fn assert_identical(dir: &Path, out: &std::process::Output, ref_stdout: &[u8], tag: &str) {
    assert!(
        out.status.success(),
        "{tag}: serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout,
        ref_stdout.to_vec(),
        "{tag}: stdout table drifted from the single-process run"
    );
    for (a, b) in [("ref.csv", "merged.csv"), ("ref.jsonl", "merged.jsonl")] {
        assert_eq!(
            std::fs::read(dir.join(a)).expect(a),
            std::fs::read(dir.join(b)).expect(b),
            "{tag}: {b} drifted from {a}"
        );
    }
}

/// The serve argument list every test shares; `extra` appends
/// test-specific flags.
fn serve_args<'a>(spool: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "serve",
        "spec.json",
        "--spool",
        spool,
        "--workers",
        "2",
        "--shards",
        "2",
        "--chunk",
        "1",
        "--poll-ms",
        "10",
        "--records",
        "merged.jsonl",
        "--csv",
        "merged.csv",
        "--out",
        "serve.json",
    ];
    args.extend_from_slice(extra);
    args
}

#[test]
fn serve_matches_stream_run_across_worker_counts() {
    let dir = scratch("happy");
    let ref_stdout = reference(&dir);
    for (workers, shards) in [("1", "1"), ("2", "3"), ("3", "2")] {
        let spool = format!("spool_w{workers}_s{shards}");
        let out = lab(
            &[
                "serve",
                "spec.json",
                "--spool",
                &spool,
                "--workers",
                workers,
                "--shards",
                shards,
                "--chunk",
                "1",
                "--poll-ms",
                "10",
                "--records",
                "merged.jsonl",
                "--csv",
                "merged.csv",
                "--out",
                "serve.json",
            ],
            &dir,
        );
        assert_identical(&dir, &out, &ref_stdout, &format!("{workers}w/{shards}s"));
        let report = std::fs::read_to_string(dir.join("serve.json")).expect("report");
        assert!(report.contains("\"radio-lab/serve/v1\""), "report schema");
        assert!(report.contains("\"complete\""), "phase recorded");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_recovers_from_a_kill_with_a_torn_records_tail() {
    let dir = scratch("killtear");
    let ref_stdout = reference(&dir);
    // Whichever worker runs shard 0's first attempt dies at the first
    // chunk boundary, tearing the record log on the way out. The lease
    // expires, another worker takes over from the checkpoint, and the
    // torn tail is truncated — output must not drift by a byte.
    std::fs::write(
        dir.join("plan.json"),
        r#"{ "schema": "radio-lab/fault-plan/v1", "events": [
            { "worker": null, "spec": null, "shard": 0, "attempt": 0, "at_chunk": 1,
              "action": { "Kill": { "tear_jsonl": true } } } ] }"#,
    )
    .expect("plan writes");
    let out = lab(
        &serve_args("spool", &["--lease-ms", "400", "--fault-plan", "plan.json"]),
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("died") && stderr.contains("137"),
        "no kill observed: {stderr}"
    );
    assert!(
        stderr.contains("dropped") && stderr.contains("torn"),
        "no torn-tail truncation observed: {stderr}"
    );
    assert_identical(&dir, &out, &ref_stdout, "kill+tear");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_survives_a_kill_at_every_chunk_boundary() {
    let dir = scratch("killmatrix");
    let ref_stdout = reference(&dir);
    // 6 grid units, 2 shards, chunk 1: each shard is 3 chunks, so
    // boundaries 1..=3 cover first / middle / final-chunk kills (the
    // final boundary dies after the shard's last checkpoint but before
    // the partial publishes — recovery must still finish it).
    for boundary in ["1", "2", "3"] {
        std::fs::write(
            dir.join("plan.json"),
            format!(
                r#"{{ "schema": "radio-lab/fault-plan/v1", "events": [
                    {{ "worker": null, "spec": null, "shard": 0, "attempt": 0,
                       "at_chunk": {boundary},
                       "action": {{ "Kill": {{ "tear_jsonl": false }} }} }} ] }}"#
            ),
        )
        .expect("plan writes");
        let spool = format!("spool_b{boundary}");
        let out = lab(
            &serve_args(&spool, &["--lease-ms", "400", "--fault-plan", "plan.json"]),
            &dir,
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("died"),
            "boundary {boundary}: no kill observed: {stderr}"
        );
        assert_identical(&dir, &out, &ref_stdout, &format!("boundary {boundary}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stalled_heartbeat_loses_the_lease_and_another_worker_takes_over() {
    let dir = scratch("stall");
    let ref_stdout = reference(&dir);
    // The first attempt on shard 0 stalls 1500 ms against a 300 ms
    // lease: the peer worker must take the shard over, and the stalled
    // worker must notice at its fence and abandon without publishing.
    std::fs::write(
        dir.join("plan.json"),
        r#"{ "schema": "radio-lab/fault-plan/v1", "events": [
            { "worker": null, "spec": null, "shard": 0, "attempt": 0, "at_chunk": 1,
              "action": { "StallHeartbeat": { "stall_ms": 1500 } } } ] }"#,
    )
    .expect("plan writes");
    let out = lab(
        &serve_args("spool", &["--lease-ms", "300", "--fault-plan", "plan.json"]),
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("taking over"),
        "no lease takeover observed: {stderr}"
    );
    assert!(
        stderr.contains("lost the lease") || stderr.contains("abandon"),
        "stalled worker never abandoned: {stderr}"
    );
    assert_identical(&dir, &out, &ref_stdout, "stall");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_retries_sink_errors_with_backoff_until_success() {
    let dir = scratch("retry");
    let ref_stdout = reference(&dir);
    // Shard 1's record-log writes fail on attempts 0 and 1; attempt 2
    // (within max_retries 3) runs clean. The run must end complete and
    // byte-identical, with both failures on the record.
    std::fs::write(
        dir.join("plan.json"),
        r#"{ "schema": "radio-lab/fault-plan/v1", "events": [
            { "worker": null, "spec": null, "shard": 1, "attempt": 0, "at_chunk": 0,
              "action": "SinkError" },
            { "worker": null, "spec": null, "shard": 1, "attempt": 1, "at_chunk": 0,
              "action": "SinkError" } ] }"#,
    )
    .expect("plan writes");
    let out = lab(
        &serve_args(
            "spool",
            &[
                "--max-retries",
                "3",
                "--backoff-ms",
                "20",
                "--fault-plan",
                "plan.json",
            ],
        ),
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.matches("injected sink I/O fault").count(),
        2,
        "expected exactly two failed attempts: {stderr}"
    );
    assert_identical(&dir, &out, &ref_stdout, "retry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_degrades_when_a_shard_exhausts_its_retries() {
    let dir = scratch("degraded");
    let _ = reference(&dir);
    // Every attempt on shard 1 hits the sink fault; with max_retries 2
    // the shard exhausts and the spec degrades: exit 3, the partial
    // table clearly marked, and no CSV/JSONL artifacts on disk.
    std::fs::write(
        dir.join("plan.json"),
        r#"{ "schema": "radio-lab/fault-plan/v1", "events": [
            { "worker": null, "spec": null, "shard": 1, "attempt": null, "at_chunk": 0,
              "action": "SinkError" } ] }"#,
    )
    .expect("plan writes");
    let out = lab(
        &serve_args(
            "spool",
            &[
                "--max-retries",
                "2",
                "--backoff-ms",
                "10",
                "--fault-plan",
                "plan.json",
            ],
        ),
        &dir,
    );
    assert_eq!(out.status.code(), Some(3), "degraded run must exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("INCOMPLETE"),
        "partial table not marked: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("DEGRADED"),
        "no degradation notice: {stderr}"
    );
    assert!(
        !dir.join("merged.csv").exists() && !dir.join("merged.jsonl").exists(),
        "degraded runs must not write merged artifacts"
    );
    // The spool keeps the evidence: status reports the exhausted shard
    // and the preview table carries the marker.
    let out = lab(&["status", "--spool", "spool"], &dir);
    assert!(out.status.success(), "status must succeed on a spool");
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(
        status.contains("degraded") && status.contains("exhausted"),
        "status missed the degradation: {status}"
    );
    assert!(status.contains("INCOMPLETE"), "preview unmarked: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_reports_a_complete_spool_and_emits_json() {
    let dir = scratch("status");
    let ref_stdout = reference(&dir);
    let out = lab(&serve_args("spool", &[]), &dir);
    assert_identical(&dir, &out, &ref_stdout, "pre-status serve");
    let out = lab(&["status", "--spool", "spool"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("complete") && text.contains("2/2 shards done"),
        "status misread the spool: {text}"
    );
    assert!(
        !text.contains("INCOMPLETE"),
        "complete spool must not be marked incomplete: {text}"
    );
    let out = lab(&["status", "--spool", "spool", "--json"], &dir);
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout);
    let line = line.lines().next().expect("one status line");
    assert!(
        line.contains("\"radio-lab/spool-status/v1\"") && line.contains("\"complete\""),
        "status JSON misshaped: {line}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_usage_errors_are_loud_and_early() {
    let dir = scratch("usage");
    std::fs::write(dir.join("spec.json"), SPEC).expect("spec writes");
    // No --spool.
    let out = lab(&["serve", "spec.json"], &dir);
    assert_eq!(out.status.code(), Some(2));
    // No specs.
    let out = lab(&["serve", "--spool", "spool"], &dir);
    assert_eq!(out.status.code(), Some(2));
    // Unloadable fault plan fails before any worker spawns.
    let out = lab(
        &[
            "serve",
            "spec.json",
            "--spool",
            "spool",
            "--fault-plan",
            "missing.json",
        ],
        &dir,
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(!dir.join("spool").exists(), "nothing may touch the spool");
    // Reusing a spool that already holds a queue is refused.
    let out = lab(&serve_args("spool", &[]), &dir);
    assert!(out.status.success(), "first serve must succeed");
    let out = lab(&serve_args("spool", &[]), &dir);
    assert_eq!(out.status.code(), Some(1), "reused spool must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already holds a queue"),
        "refusal must say why"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
