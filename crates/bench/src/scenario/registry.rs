//! The experiment registry: every paper experiment E1–E11 as
//! [`ScenarioSpec`] data.
//!
//! Each entry reproduces its pre-refactor imperative sweep exactly — same
//! grids, same seed schedule, same table formatting (the golden tests in
//! `tests/golden_experiments.rs` pin this byte-for-byte at quick scale).
//! Historical seed quirks are encoded as per-entry overrides: E3a/E8 pin
//! the topology seed, E4 keys the network stream by `τ` and lets the
//! detector continue it, E11 pins an independent detector stream.

use super::{
    render, run_spec, NestOrder, RenderKind, ScenarioSpec, SeedPolicy, StopCondition,
    TopologyEntry, Workload, WorkloadEntry,
};
use crate::table::Table;
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_sim::SpuriousSource;
use radio_structures::runner::AlgoKind;

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 11] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
];

fn base_spec(id: &str, caption: &str, render: RenderKind) -> ScenarioSpec {
    ScenarioSpec {
        id: id.to_string(),
        caption: caption.to_string(),
        render,
        topologies: Vec::new(),
        adversaries: vec![AdversaryKind::Random { p: 0.5 }],
        workloads: Vec::new(),
        trials: 1,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base: 0,
            run_base: 0,
        },
        stop: StopCondition::Default,
        aggregate: None,
    }
}

/// A placeholder topology axis for workloads that build no network (game
/// and schedule probes): the axis must be non-empty for the grid product.
fn no_network() -> Vec<TopologyEntry> {
    vec![TopologyEntry::new(TopologyKind::Clique { n: 1 })]
}

fn e1(quick: bool) -> Vec<ScenarioSpec> {
    let ns: &[usize] = if quick {
        &[32, 64]
    } else {
        // Extended past the historical n = 512 cap now that trials fan out
        // in parallel, and past n = 2048 now that `--stream` keeps peak
        // memory bounded by the chunk size instead of the grid.
        &[32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    let mut spec = base_spec(
        "E1",
        "MIS (Sec. 4) under a random unreliable adversary: rounds to solve vs n; \
         paper claims O(log^3 n) w.h.p. — the rounds/log^3(n) ratio should stay flat",
        RenderKind::E1,
    );
    spec.topologies = ns
        .iter()
        .map(|&n| TopologyEntry::new(TopologyKind::GeometricDense { n }))
        .collect();
    spec.workloads = vec![WorkloadEntry::core(AlgoKind::Mis)];
    spec.trials = if quick { 2 } else { 5 };
    spec.seeds = SeedPolicy {
        net_base: 1000,
        run_base: 7,
    };
    vec![spec]
}

fn e2(quick: bool) -> Vec<ScenarioSpec> {
    let ns: &[usize] = if quick { &[64] } else { &[64, 256] };
    let mut spec = base_spec(
        "E2",
        "MIS density (Cor. 4.7): max MIS nodes within distance r of any node, \
         against the overlay constant I_r",
        RenderKind::E2,
    );
    spec.topologies = ns
        .iter()
        .map(|&n| TopologyEntry::new(TopologyKind::GeometricDense { n }))
        .collect();
    spec.workloads = vec![WorkloadEntry::core(AlgoKind::Mis)];
    spec.seeds = SeedPolicy {
        net_base: 2000,
        run_base: 3,
    };
    vec![spec]
}

fn e3(quick: bool) -> Vec<ScenarioSpec> {
    let n: usize = if quick { 48 } else { 96 };
    // (a) Δ sweep at small b.
    let degrees: &[f64] = if quick {
        &[8.0, 14.0]
    } else {
        &[8.0, 14.0, 20.0, 26.0]
    };
    let mut a = base_spec(
        "E3a",
        "CCDS (Sec. 5) rounds vs Delta at small b = 64 bits: the Delta*log^2(n)/b \
         term dominates, so rounds grow ~linearly in Delta",
        RenderKind::E3a,
    );
    a.topologies = degrees
        .iter()
        .map(|&degree| TopologyEntry::seeded(TopologyKind::GeometricDegree { n, degree }, 31))
        .collect();
    a.workloads = vec![WorkloadEntry::core(AlgoKind::Ccds { b: 64 })];
    a.seeds = SeedPolicy {
        net_base: 31,
        run_base: 5,
    };
    // (b) b sweep at fixed topology.
    let bs: &[u64] = if quick {
        &[64, 512]
    } else {
        &[48, 64, 128, 256, 512, 1024, 2048]
    };
    let mut b = base_spec(
        "E3b",
        "CCDS rounds vs message bound b at fixed Delta: rounds fall as 1/b until \
         the MIS term log^3 n dominates (the paper's large-message regime b = Omega(Delta log n))",
        RenderKind::E3b,
    );
    b.topologies = vec![TopologyEntry::new(TopologyKind::GeometricDense { n })];
    b.workloads = bs
        .iter()
        .map(|&bits| WorkloadEntry::core(AlgoKind::Ccds { b: bits }))
        .collect();
    b.seeds = SeedPolicy {
        net_base: 3000,
        run_base: 11,
    };
    vec![a, b]
}

fn e4(quick: bool) -> Vec<ScenarioSpec> {
    let n: usize = if quick { 24 } else { 48 };
    let taus: &[usize] = if quick { &[1] } else { &[1, 2, 3] };
    let degrees: &[f64] = if quick { &[8.0] } else { &[6.0, 10.0, 14.0] };
    let mut spec = base_spec(
        "E4",
        "tau-complete CCDS (Sec. 6): rounds vs Delta and tau; linear in Delta \
         (per-neighbor slots), tau+1 MIS iterations",
        RenderKind::E4,
    );
    spec.topologies = degrees
        .iter()
        .map(|&degree| TopologyEntry::new(TopologyKind::GeometricDegree { n, degree }))
        .collect();
    // The τ axis keys the historical network stream (`41 + τ`); the
    // τ-complete detector continues that stream, as the original loop did.
    spec.workloads = taus
        .iter()
        .map(|&tau| {
            let mut w = WorkloadEntry::core(AlgoKind::TauCcds {
                tau,
                spurious: SpuriousSource::UnreliableNeighbors,
            });
            w.net_seed = Some(41 + tau as u64);
            w
        })
        .collect();
    spec.nest = NestOrder::WorkloadMajor;
    spec.seeds = SeedPolicy {
        net_base: 41,
        run_base: 13,
    };
    vec![spec]
}

fn e5(quick: bool) -> Vec<ScenarioSpec> {
    // (a) single hitting game.
    let betas: &[u32] = if quick {
        &[16, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let trials = if quick { 100 } else { 400 };
    let mut a = base_spec(
        "E5a",
        "beta-single hitting game: mean rounds to hit vs beta; any strategy needs \
         >= (beta+1)/2 in expectation — the bottom of the Thm 7.1 reduction",
        RenderKind::E5a,
    );
    a.topologies = no_network();
    a.adversaries = vec![AdversaryKind::CliqueIsolator];
    a.workloads = betas
        .iter()
        .flat_map(|&beta| {
            [(false, 1u64), (true, 2u64)].map(|(replacement, seed)| {
                let mut w = WorkloadEntry::new(Workload::Hitting {
                    beta,
                    trials,
                    replacement,
                });
                w.run_seed = Some(seed);
                w
            })
        })
        .collect();
    // (b) two-clique network, 1-complete detectors, isolating adversary.
    let betas_b: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8, 12, 16] };
    let mut b = base_spec(
        "E5b",
        "two-clique network (Lemma 7.2) with 1-complete detectors under the \
         clique-isolating adversary: rounds grow linearly in Delta = beta \
         (upper-bounded by the Sec. 6 schedule, lower-bounded by Thm 7.1)",
        RenderKind::E5b,
    );
    b.topologies = no_network();
    b.adversaries = vec![AdversaryKind::CliqueIsolator];
    b.workloads = vec![{
        let mut w = WorkloadEntry::new(Workload::TwoCliqueSweep {
            betas: betas_b.to_vec(),
            trials: if quick { 1 } else { 3 },
        });
        w.run_seed = Some(99);
        w
    }];
    // (c) separation: 0-complete CCDS at large b is polylog (flat in Δ);
    // 1-complete is linear in Δ.
    let mut c = base_spec(
        "E5c",
        "the separation: schedule rounds for 0-complete CCDS (large b) stay \
         ~flat in Delta while the 1-complete structure grows linearly",
        RenderKind::E5c,
    );
    c.topologies = no_network();
    c.adversaries = vec![AdversaryKind::CliqueIsolator];
    c.workloads = betas_b
        .iter()
        .map(|&beta| WorkloadEntry::new(Workload::SchedulePair { beta }))
        .collect();
    vec![a, b, c]
}

fn e6(quick: bool) -> Vec<ScenarioSpec> {
    let mut spec = base_spec(
        "E6",
        "continuous CCDS (Sec. 8) with a dynamic detector stabilizing at round r: \
         the structure is a valid CCDS when checked at r + 2*delta_CDS (Thm 8.1)",
        RenderKind::E6,
    );
    spec.topologies = vec![TopologyEntry::new(TopologyKind::Path { n: 8 })];
    spec.adversaries = vec![AdversaryKind::ReliableOnly];
    spec.workloads = vec![WorkloadEntry::core(AlgoKind::ContinuousDynamic { b: 256 })];
    spec.trials = if quick { 1 } else { 3 };
    spec.seeds = SeedPolicy {
        net_base: 0,
        run_base: 1,
    };
    vec![spec]
}

fn e7(quick: bool) -> Vec<ScenarioSpec> {
    let ns: &[usize] = if quick {
        &[16, 32]
    } else {
        // Extended past the historical n = 128 cap (ROADMAP: scale sweeps
        // beyond n = 512), then to n = 4096 alongside E1 once streaming
        // execution decoupled sweep memory from grid size.
        &[32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    let mut spec = base_spec(
        "E7",
        "async-start MIS (Sec. 9): max rounds from wake-up to output vs n; \
         paper claims O(log^3 n) per process — ratio should stay ~flat",
        RenderKind::E7,
    );
    spec.topologies = ns
        .iter()
        .flat_map(|&n| {
            [
                TopologyEntry::seeded(TopologyKind::GeometricClassic { n }, 71),
                TopologyEntry::seeded(TopologyKind::GeometricDense { n }, 72),
            ]
        })
        .collect();
    spec.adversaries = vec![AdversaryKind::AllUnreliable];
    spec.workloads = vec![WorkloadEntry::core(AlgoKind::AsyncMis)];
    spec.seeds = SeedPolicy {
        net_base: 71,
        run_base: 73,
    };
    vec![spec]
}

fn e8(quick: bool) -> Vec<ScenarioSpec> {
    let spacings: &[f64] = if quick {
        &[0.9, 0.45]
    } else {
        &[0.9, 0.6, 0.45, 0.32]
    };
    let side = if quick { 5 } else { 7 };
    let mut spec = base_spec(
        "E8",
        "banned list ablation: explorations per MIS node (Sec. 5, measured max) vs \
         the naive explore-every-neighbor turns (Sec. 5's 'simple approach' = Sec. 6 at tau=0)",
        RenderKind::E8,
    );
    spec.topologies = spacings
        .iter()
        .map(|&spacing| {
            TopologyEntry::seeded(
                TopologyKind::Grid {
                    cols: side,
                    rows: side,
                    spacing,
                },
                81,
            )
        })
        .collect();
    spec.workloads = vec![WorkloadEntry::core(AlgoKind::Ccds { b: 1024 })];
    spec.seeds = SeedPolicy {
        net_base: 81,
        run_base: 7,
    };
    vec![spec]
}

fn e9(quick: bool) -> Vec<ScenarioSpec> {
    let n = if quick { 32 } else { 64 };
    let mut a = base_spec(
        "E9a",
        "MIS solve rounds under increasingly hostile reach-set adversaries: \
         correctness holds under all (the Sec. 4 design goal); cost degrades gracefully",
        RenderKind::E9a,
    );
    a.topologies = vec![TopologyEntry::seeded(
        TopologyKind::GeometricDense { n },
        91,
    )];
    a.adversaries = vec![
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.5 },
        AdversaryKind::Bursty {
            p_gb: 0.05,
            p_bg: 0.05,
        },
        AdversaryKind::AllUnreliable,
        AdversaryKind::Collider,
    ];
    a.workloads = vec![WorkloadEntry::core(AlgoKind::Mis)];
    a.seeds = SeedPolicy {
        net_base: 91,
        run_base: 17,
    };
    // Broadcast: Decay (fast, fragile) vs round robin (slow, immune) on a
    // line with unreliable chords.
    let len = if quick { 12 } else { 20 };
    let mut b = base_spec(
        "E9b",
        "detector-less broadcast on a line with unreliable chords: Decay is fast \
         when links behave but degrades under the collider; round robin is \
         adversary-immune at Theta(n)-per-hop cost (why [5] calls it optimal)",
        RenderKind::E9b,
    );
    b.topologies = vec![TopologyEntry::new(TopologyKind::PathChords { n: len })];
    b.adversaries = vec![AdversaryKind::ReliableOnly];
    b.workloads = [(true, false), (true, true), (false, true)]
        .into_iter()
        .map(|(decay, collider)| WorkloadEntry::new(Workload::Broadcast { decay, collider }))
        .collect();
    b.seeds = SeedPolicy {
        net_base: 0,
        run_base: 19,
    };
    b.stop = StopCondition::Rounds { max: 40_000 };
    vec![a, b]
}

fn e10(quick: bool) -> Vec<ScenarioSpec> {
    let ns: &[usize] = if quick { &[48] } else { &[48, 96] };
    let mut spec = base_spec(
        "E10",
        "CCDS as routing backbone (the paper's motivating application): flood a \
         message with only backbone nodes forwarding vs everyone flooding; the \
         backbone trades constant-factor latency for a transmission rate \
         proportional to backbone size instead of n",
        RenderKind::E10,
    );
    spec.topologies = ns
        .iter()
        .map(|&n| TopologyEntry::seeded(TopologyKind::GeometricDense { n }, 4000))
        .collect();
    // One workload per n: the CCDS builds once and both flood modes reuse
    // it (the pre-refactor loop's sharing, kept).
    spec.workloads = vec![WorkloadEntry::new(Workload::BackboneCompare {
        b: 512,
        flood_seed: 11,
        flood_budget: 200_000,
    })];
    spec.seeds = SeedPolicy {
        net_base: 4000,
        run_base: 5,
    };
    vec![spec]
}

fn e11(quick: bool) -> Vec<ScenarioSpec> {
    let n: usize = if quick { 24 } else { 40 };
    let taus: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 6, 8] };
    let mut spec = base_spec(
        "E11",
        "beyond the paper (Sec. 10 future work): tau-CCDS at non-constant tau; \
         cost grows linearly in tau and the winner set densifies (tau+1 per \
         disk) — the quantity the paper's impossibility conjecture is about",
        RenderKind::E11,
    );
    spec.topologies = vec![TopologyEntry::seeded(
        TopologyKind::GeometricDense { n },
        5000,
    )];
    // The detector stream is independent of the network stream here
    // (historically `1100 + τ` vs the fixed network seed 5000).
    spec.workloads = taus
        .iter()
        .map(|&tau| {
            let mut w = WorkloadEntry::core(AlgoKind::TauCcds {
                tau,
                spurious: SpuriousSource::AnyNonNeighbor,
            });
            w.det_seed = Some(1100 + tau as u64);
            w
        })
        .collect();
    spec.nest = NestOrder::WorkloadMajor;
    spec.seeds = SeedPolicy {
        net_base: 5000,
        run_base: 17,
    };
    vec![spec]
}

/// The specs of an experiment id (`"e1"`..`"e11"`), one per table.
pub fn specs(id: &str, quick: bool) -> Option<Vec<ScenarioSpec>> {
    match id {
        "e1" => Some(e1(quick)),
        "e2" => Some(e2(quick)),
        "e3" => Some(e3(quick)),
        "e4" => Some(e4(quick)),
        "e5" => Some(e5(quick)),
        "e6" => Some(e6(quick)),
        "e7" => Some(e7(quick)),
        "e8" => Some(e8(quick)),
        "e9" => Some(e9(quick)),
        "e10" => Some(e10(quick)),
        "e11" => Some(e11(quick)),
        _ => None,
    }
}

/// Runs an experiment by id through the scenario subsystem, returning its
/// tables.
///
/// # Panics
///
/// Panics on an unknown id (caller validates CLI input).
pub fn experiment_tables(id: &str, quick: bool) -> Vec<Table> {
    let specs = specs(id, quick).unwrap_or_else(|| panic!("unknown experiment id {id}"));
    specs
        .iter()
        .map(|spec| {
            let run = run_spec(spec);
            render(spec, &run)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_spec_plans_to_its_grid_product() {
        for id in ALL_EXPERIMENTS {
            for spec in specs(id, true).expect("registered") {
                assert_eq!(spec.plan().len(), spec.grid_size(), "{id}/{}", spec.id);
                assert!(spec.grid_size() > 0, "{id}/{}", spec.id);
            }
        }
    }

    #[test]
    fn registry_specs_roundtrip_serde() {
        for id in ALL_EXPERIMENTS {
            for spec in specs(id, true).expect("registered") {
                let json = serde_json::to_string_pretty(&spec).expect("serializes");
                let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
                assert_eq!(back, spec, "{id}/{}", spec.id);
            }
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(specs("e12", true).is_none());
    }
}
