//! Plain-text experiment tables.
//!
//! Every experiment produces a [`Table`]: a caption, a header row, and data
//! rows. The harness prints them aligned for terminals and can serialize
//! them to JSON for `EXPERIMENTS.md` regeneration.

use serde::{Deserialize, Serialize};

/// The absent-cell marker: what a table prints when a statistic does not
/// exist (no observations, spread of a single sample, a record without
/// the field). [`Table::to_csv`] writes these cells as **empty fields**,
/// so spreadsheets and plotting scripts see a missing value instead of a
/// dash they would have to special-case (or a NaN they would silently
/// propagate).
pub const ABSENT: &str = "—";

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// Human caption (what the table shows and which claim it tests).
    pub caption: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, caption: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.caption));
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders the table as RFC 4180-style CSV: the header line then one
    /// line per row, fields quoted when they contain commas, quotes, or
    /// newlines. [`ABSENT`] cells become empty fields (a missing value,
    /// not a dash string). The id/caption are not embedded — the file is
    /// pure data for spreadsheets and plotting scripts (`radio-lab
    /// --csv`).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s == ABSENT {
                String::new()
            } else if s.contains(['"', ',', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for cells in std::iter::once(&self.header).chain(&self.rows) {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 1 decimal ([`ABSENT`] for NaN).
pub fn f1(x: f64) -> String {
    if x.is_nan() {
        ABSENT.to_string()
    } else {
        format!("{x:.1}")
    }
}

/// Formats a float with 3 decimals ([`ABSENT`] for NaN).
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        ABSENT.to_string()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["n", "rounds"]);
        t.push(vec!["32".into(), "1234".into()]);
        t.push(vec!["1024".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("|    n | rounds |"));
        assert!(s.contains("| 1024 |      9 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_rows() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new("E0", "demo", &["name", "value"]);
        t.push(vec!["plain".into(), "1,234".into()]);
        t.push(vec!["has \"quote\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,value\nplain,\"1,234\"\n\"has \"\"quote\"\"\",2\n"
        );
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f1(f64::NAN), "—");
        assert_eq!(f3(0.12345), "0.123");
    }
}
