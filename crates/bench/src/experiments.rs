//! The experiment suite façade: every experiment id from `DESIGN.md` runs
//! through the declarative [`crate::scenario`] subsystem.
//!
//! Each experiment is a [`crate::scenario::ScenarioSpec`] (or several, one
//! per table) in [`crate::scenario::registry`]: plain data describing the
//! topology × adversary × workload × trial grid, expanded by the sweep
//! planner and executed through the parallel trial runner. The imperative
//! per-experiment sweep loops this module used to contain live on only in
//! `tests/golden_experiments.rs`, which pins the spec-driven tables to the
//! historical output byte-for-byte.
//!
//! All experiments accept a `quick` flag: `true` shrinks sizes/trials to
//! smoke-test levels (used by CI tests), `false` runs the full sweeps
//! recorded in `EXPERIMENTS.md`.

use crate::scenario::registry;
use crate::table::Table;

pub use crate::scenario::registry::ALL_EXPERIMENTS;

/// Runs an experiment by id (`"e1"`..`"e11"`), returning its tables.
///
/// # Panics
///
/// Panics on an unknown id (caller validates CLI input).
pub fn run_experiment(id: &str, quick: bool) -> Vec<Table> {
    registry::experiment_tables(id, quick)
}
