//! # radio-bench — the experiment harness
//!
//! Regenerates every evaluation claim of *Structuring Unreliable Radio
//! Networks* as a table. The paper is a theory paper — its "tables and
//! figures" are theorems — so each experiment measures the quantity a
//! theorem bounds and reports the shape (scaling exponents, crossovers,
//! separations, validity rates). See `DESIGN.md` for the per-experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Run everything: `cargo run -p radio-bench --bin experiments --release -- --all`
//! Run one: `cargo run -p radio-bench --bin experiments --release -- e5`

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod checkpoint;
pub mod enginebench;
pub mod experiments;
pub mod parallel;
pub mod scenario;
pub mod schemas;
pub mod serve;
pub mod sink;
pub mod stats;
pub mod table;

pub use aggregate::AggregateSpec;
pub use checkpoint::{
    merge_partials, shard_range, spec_fingerprint, ShardPartial, ShardRef, SweepCheckpoint,
};
pub use experiments::{run_experiment, ALL_EXPERIMENTS};
pub use parallel::{
    run_trials, run_trials_chunked, run_trials_chunked_range, run_trials_in, ThreadPool,
};
pub use scenario::{
    render, run_spec, run_spec_streaming, run_spec_streaming_range, ScenarioRun, ScenarioSpec,
    StreamStats,
};
pub use serve::{run_serve, run_worker, FaultPlan, ServeConfig, WorkerConfig};
pub use sink::{JsonlWriter, Materialize, RecordSink, StreamAggregate};
pub use table::Table;
