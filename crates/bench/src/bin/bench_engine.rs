//! Generates `BENCH_engine.json`: engine rounds/sec, wall time, and
//! steady-state allocations per round, for the scratch engine and the seed
//! (`step_legacy`) baseline, on the canonical workloads.
//!
//! Usage:
//!
//! ```text
//! bench_engine            # full measurement (50k rounds per workload)
//! bench_engine --quick    # smoke scale for CI (2k rounds)
//! bench_engine --out PATH # write the JSON somewhere else
//! ```
//!
//! The binary installs a counting global allocator, so the reported
//! `allocs_per_round` is exact: the scratch engine must report 0.0 in
//! steady state (the zero-allocation acceptance criterion), while the
//! legacy engine reports its per-round buffer churn.

use radio_bench::enginebench::run_engine_bench;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting allocations and requested bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, only adding relaxed counter
// bumps on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);
    let rounds = if quick { 2_000 } else { 50_000 };

    eprintln!("measuring {rounds} rounds per workload per engine...");
    let report = run_engine_bench(rounds, Some(&counters));

    println!(
        "{:<12} {:>4} {:>8} {:>14} {:>14} {:>9} {:>13}",
        "workload", "n", "engine", "rounds/sec", "wall s", "speedup", "allocs/round"
    );
    for w in &report.workloads {
        for m in &w.engines {
            println!(
                "{:<12} {:>4} {:>8} {:>14.0} {:>14.4} {:>9} {:>13}",
                w.name,
                w.n,
                m.engine,
                m.rounds_per_sec,
                m.wall_s,
                if m.engine == "scratch" {
                    format!("{:.2}x", w.speedup)
                } else {
                    "—".to_string()
                },
                m.allocs_per_round
                    .map_or("—".to_string(), |a| format!("{a:.2}")),
            );
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(out_path, json).expect("write BENCH_engine.json");
    eprintln!("wrote {out_path}");

    // Surface acceptance regressions directly in the exit code: the
    // scratch engine must stay allocation-free in steady state.
    let leaky: Vec<&str> = report
        .workloads
        .iter()
        .filter(|w| {
            w.engines
                .iter()
                .any(|m| m.engine == "scratch" && m.allocs_per_round.unwrap_or(0.0) > 0.0)
        })
        .map(|w| w.name.as_str())
        .collect();
    if !leaky.is_empty() {
        eprintln!("FAIL: scratch engine allocated in steady state on: {leaky:?}");
        std::process::exit(1);
    }
}
