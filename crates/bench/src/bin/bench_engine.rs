// lint:allow(forbid-unsafe) the zero-alloc probe needs `unsafe impl GlobalAlloc` for its counting allocator; the unsafety is confined to that shim
//! Generates `BENCH_engine.json`: engine rounds/sec, wall time, and
//! steady-state allocations per round, for all four engine tiers —
//! scratch (`step`), the seed baseline (`step_legacy`), the word-packed
//! `step_bitset`, and the multi-trial `BatchedEngine` (accounted in
//! trial-rounds/sec) — on the canonical workloads.
//!
//! Usage:
//!
//! ```text
//! bench_engine                 # full measurement (50k rounds per workload)
//! bench_engine --quick         # smoke scale for CI (2k rounds)
//! bench_engine --out PATH      # write the JSON somewhere else
//! bench_engine --baseline PATH # diff against a previous report
//! bench_engine --check         # exit nonzero on >15% ratio regression
//! ```
//!
//! When the output path already holds a previous report (or `--baseline`
//! names one), a delta table prints for every workload; with `--check`,
//! a >15% drop in the scratch/legacy speedup ratio — or in the
//! bitset/scratch ratio, when the baseline records one — fails the run;
//! the batched/bitset ratio gates the same way, on the dense clique
//! workloads only (`clique-256`, `clique-1024`), where batching is the
//! selected tier and the ratio is stable enough at `--quick` scale. The
//! CI bench-smoke step runs this against the committed
//! `BENCH_engine.json`. The gates use speedup ratios (not absolute
//! rounds/sec) because the tiers are measured interleaved, so machine
//! speed cancels and the committed baseline stays valid across hardware.
//! Schema-v1/v2 baselines (no bitset/batched column) still gate the
//! ratios they do record.
//!
//! The binary installs a counting global allocator, so the reported
//! `allocs_per_round` is exact: the scratch, bitset, and batched engines
//! must report 0.0 in steady state (the zero-allocation acceptance
//! criterion), while the legacy engine reports its per-round buffer
//! churn.

use radio_bench::enginebench::run_engine_bench;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting allocations and requested bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, only adding relaxed counter
// bumps on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Maximum tolerated drop in the scratch/legacy **speedup ratio** vs the
/// baseline before `--check` fails the run.
///
/// The gate compares speedups, not absolute rounds/sec: the two engines
/// are measured interleaved in the same process, so machine speed cancels
/// out of the ratio and the check stays meaningful when the baseline was
/// recorded on different hardware or at a different `--quick` scale (the
/// CI case). Absolute rounds/sec deltas still print for same-machine
/// reruns.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Workloads whose batched/bitset ratio is regression-gated. On the
/// sparse/small workloads the batch layer would never be selected and the
/// ratio is noise-dominated at `--quick` scale, so only the dense cliques
/// gate.
const BATCHED_GATED: [&str; 2] = ["clique-256", "clique-1024"];

/// Per-workload gate inputs of a report, in report order.
struct WorkloadStats {
    name: String,
    /// Scratch rounds/sec.
    rate: f64,
    /// scratch/legacy speedup.
    speedup: f64,
    /// bitset/scratch speedup (`None` in schema-v1 baselines).
    bitset: Option<f64>,
    /// batched/bitset trial-round amortization (`None` before schema v3).
    batched: Option<f64>,
}

fn scratch_stats(report: &radio_bench::enginebench::EngineBenchReport) -> Vec<WorkloadStats> {
    report
        .workloads
        .iter()
        .filter_map(|w| {
            w.engines
                .iter()
                .find(|m| m.engine == "scratch")
                .map(|m| WorkloadStats {
                    name: w.name.clone(),
                    rate: m.rounds_per_sec,
                    speedup: w.speedup,
                    bitset: w.bitset_speedup,
                    batched: w.batched_speedup,
                })
        })
        .collect()
}

/// Prints the baseline delta table; returns the workloads whose
/// scratch/legacy — or bitset/scratch — ratio regressed beyond the
/// tolerance.
fn diff_against_baseline(
    baseline: &radio_bench::enginebench::EngineBenchReport,
    current: &radio_bench::enginebench::EngineBenchReport,
) -> Vec<String> {
    let old = scratch_stats(baseline);
    let new = scratch_stats(current);
    let mut regressed = Vec::new();
    println!();
    println!(
        "{:<12} {:>16} {:>16} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload",
        "baseline r/s",
        "current r/s",
        "delta",
        "base spdup",
        "cur spdup",
        "delta",
        "base bit",
        "cur bit",
        "delta",
        "base bat",
        "cur bat",
        "delta"
    );
    for stats in &new {
        let name = &stats.name;
        let Some(base) = old.iter().find(|b| b.name == *name) else {
            println!("{name:<12} {:>16} {:>16.0} — new workload", "—", stats.rate);
            continue;
        };
        let rate_delta = stats.rate / base.rate.max(1e-12) - 1.0;
        let speedup_delta = stats.speedup / base.speedup.max(1e-12) - 1.0;
        // The bitset/batched ratios only gate when both reports record
        // them (a v1/v2 baseline never blocks a new column's
        // introduction), and batched only on the dense cliques.
        let ratio_delta = |b: Option<f64>, c: Option<f64>| match (b, c) {
            (Some(b), Some(c)) => Some(c / b.max(1e-12) - 1.0),
            _ => None,
        };
        let bitset_delta = ratio_delta(base.bitset, stats.bitset);
        let batched_delta = ratio_delta(base.batched, stats.batched);
        let ratio_cell = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.2}x"));
        let delta_cell =
            |v: Option<f64>| v.map_or("—".to_string(), |d| format!("{:+.1}%", d * 100.0));
        println!(
            "{name:<12} {:>16.0} {:>16.0} {:>+8.1}% {:>9.2}x {:>9.2}x {:>+8.1}% {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            base.rate,
            stats.rate,
            rate_delta * 100.0,
            base.speedup,
            stats.speedup,
            speedup_delta * 100.0,
            ratio_cell(base.bitset),
            ratio_cell(stats.bitset),
            delta_cell(bitset_delta),
            ratio_cell(base.batched),
            ratio_cell(stats.batched),
            delta_cell(batched_delta),
        );
        if speedup_delta < -REGRESSION_TOLERANCE
            || bitset_delta.is_some_and(|d| d < -REGRESSION_TOLERANCE)
            || (BATCHED_GATED.contains(&name.as_str())
                && batched_delta.is_some_and(|d| d < -REGRESSION_TOLERANCE))
        {
            regressed.push(name.clone());
        }
    }
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);
    // Default baseline: the previous report at the output path, so plain
    // reruns always show their delta.
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map_or(out_path, String::as_str)
        .to_string();
    let baseline: Option<radio_bench::enginebench::EngineBenchReport> =
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(report) => Some(report),
                Err(e) => {
                    // A baseline that exists but does not parse must never
                    // silently disable an explicitly requested gate.
                    eprintln!("baseline {baseline_path} is unreadable as a report: {e}");
                    if check {
                        std::process::exit(1);
                    }
                    None
                }
            },
            Err(_) => {
                if check {
                    eprintln!("--check requires a baseline; none found at {baseline_path}");
                    std::process::exit(1);
                }
                None
            }
        };
    let rounds = if quick { 2_000 } else { 50_000 };

    eprintln!("measuring {rounds} rounds per workload per engine...");
    let report = run_engine_bench(rounds, Some(&counters));

    println!(
        "{:<12} {:>4} {:>8} {:>14} {:>14} {:>9} {:>13}",
        "workload", "n", "engine", "rounds/sec", "wall s", "speedup", "allocs/round"
    );
    for w in &report.workloads {
        for m in &w.engines {
            println!(
                "{:<12} {:>4} {:>8} {:>14.0} {:>14.4} {:>9} {:>13}",
                w.name,
                w.n,
                m.engine,
                m.rounds_per_sec,
                m.wall_s,
                match m.engine.as_str() {
                    // scratch row: scratch/legacy; bitset row:
                    // bitset/scratch; batched row: batched/bitset
                    // (trial-round amortization at B = BATCHED_TRIALS).
                    "scratch" => format!("{:.2}x", w.speedup),
                    "bitset" => w
                        .bitset_speedup
                        .map_or("—".to_string(), |s| format!("{s:.2}x")),
                    "batched" => w
                        .batched_speedup
                        .map_or("—".to_string(), |s| format!("{s:.2}x")),
                    _ => "—".to_string(),
                },
                m.allocs_per_round
                    .map_or("—".to_string(), |a| format!("{a:.2}")),
            );
        }
    }

    let regressed = baseline
        .as_ref()
        .map(|base| diff_against_baseline(base, &report))
        .unwrap_or_default();

    // A failed check must not clobber the baseline it failed against: the
    // rejected report lands beside it so a rerun still compares against
    // the original numbers.
    let reject = check && !regressed.is_empty();
    let write_path = if reject && out_path == baseline_path {
        format!("{out_path}.rejected.json")
    } else {
        out_path.to_string()
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&write_path, json).expect("write BENCH_engine.json");
    eprintln!("wrote {write_path}");

    if reject {
        eprintln!(
            "FAIL: a gated speedup ratio regressed more than {:.0}% vs {} on: {regressed:?}",
            REGRESSION_TOLERANCE * 100.0,
            baseline_path
        );
        std::process::exit(1);
    }

    // Surface acceptance regressions directly in the exit code: the
    // scratch, bitset, and batched engines must stay allocation-free in
    // steady state.
    let leaky: Vec<String> = report
        .workloads
        .iter()
        .flat_map(|w| {
            w.engines
                .iter()
                .filter(|m| {
                    matches!(m.engine.as_str(), "scratch" | "bitset" | "batched")
                        && m.allocs_per_round.unwrap_or(0.0) > 0.0
                })
                .map(|m| format!("{}/{}", w.name, m.engine))
        })
        .collect();
    if !leaky.is_empty() {
        eprintln!("FAIL: engines allocated in steady state on: {leaky:?}");
        std::process::exit(1);
    }
}
