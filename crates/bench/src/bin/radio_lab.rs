//! `radio-lab` — run declarative scenarios from JSON spec files or the
//! built-in experiment registry, and write machine-readable results.
//!
//! Usage:
//!
//! ```text
//! radio-lab my_scenario.json            # run a user-authored ScenarioSpec
//! radio-lab e1 e5 --quick               # registry experiments at smoke scale
//! radio-lab --all --full                # the whole E1–E11 suite
//! radio-lab spec.json --threads 4       # cap the trial-runner parallelism
//! radio-lab spec.json --out results.json
//! ```
//!
//! Positional arguments naming registry ids (`e1`..`e11`) expand to the
//! built-in specs; anything else is read as a JSON [`ScenarioSpec`] file.
//! Tables print to stdout; the results file records, per scenario, the
//! spec, the rendered tables, the planned units, every `RunRecord`, and
//! the sweep's wall-clock seconds.

use radio_bench::scenario::{registry, render, run_spec, ScenarioRun, ScenarioSpec};
use radio_bench::Table;
use serde::Serialize;

/// One executed scenario in the results file.
#[derive(Serialize)]
struct LabScenario {
    spec: ScenarioSpec,
    tables: Vec<Table>,
    run: ScenarioRun,
}

/// The whole results document.
#[derive(Serialize)]
struct LabReport {
    schema: String,
    quick: bool,
    wall_s_total: f64,
    scenarios: Vec<LabScenario>,
}

fn usage() -> ! {
    eprintln!(
        "usage: radio-lab [SPEC.json | e1..e11 | --all] [--quick|--full] \
         [--threads N] [--out PATH] [--json]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_tables = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("LAB_results.json", String::as_str)
        .to_string();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
            usage();
        };
        // The vendored rayon reads this on every fan-out, so setting it
        // up front caps the whole run.
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    let mut skip_next = false;
    let mut inputs: Vec<String> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--threads" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            if !matches!(a.as_str(), "--quick" | "--full" | "--json" | "--all") {
                eprintln!("unknown flag {a}");
                usage();
            }
            continue;
        }
        let _ = i;
        inputs.push(a.clone());
    }
    if all {
        inputs.extend(registry::ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    if inputs.is_empty() {
        usage();
    }

    // Resolve every input to specs before running anything, so a typo
    // fails fast instead of after a long sweep.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for input in &inputs {
        if let Some(built_in) = registry::specs(&input.to_lowercase(), quick) {
            specs.extend(built_in);
            continue;
        }
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{input}: not a registry id (e1..e11) and unreadable as a file: {e}");
                std::process::exit(2);
            }
        };
        match serde_json::from_str::<ScenarioSpec>(&text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("{input}: invalid ScenarioSpec JSON: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut report = LabReport {
        schema: "radio-lab/v1".to_string(),
        quick,
        wall_s_total: 0.0,
        scenarios: Vec::new(),
    };
    for spec in specs {
        eprintln!(
            "running {} ({} units{})...",
            spec.id,
            spec.grid_size(),
            if quick { ", quick" } else { "" }
        );
        let run = run_spec(&spec);
        let table = render(&spec, &run);
        if json_tables {
            println!(
                "{}",
                serde_json::to_string(&table).expect("table serializes")
            );
        } else {
            println!("{}", table.render());
        }
        eprintln!("{}: {:.3}s", spec.id, run.wall_s);
        report.wall_s_total += run.wall_s;
        report.scenarios.push(LabScenario {
            spec,
            tables: vec![table],
            run,
        });
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {out_path} ({} scenarios, {:.3}s total)",
        report.scenarios.len(),
        report.wall_s_total
    );
}
