//! `radio-lab` — run declarative scenarios from JSON spec files or the
//! built-in experiment registry, and write machine-readable results.
//!
//! Usage:
//!
//! ```text
//! radio-lab my_scenario.json            # run a user-authored ScenarioSpec
//! radio-lab e1 e5 --quick               # registry experiments at smoke scale
//! radio-lab --all --full                # the whole E1–E11 suite
//! radio-lab spec.json --threads 4       # scoped pool for this run only
//! radio-lab spec.json --out results.json
//! radio-lab spec.json --csv results.csv # aggregated/raw tables as CSV
//! ```
//!
//! Positional arguments naming registry ids (`e1`..`e11`) expand to the
//! built-in specs; anything else is read as a JSON [`ScenarioSpec`] file.
//! Tables print to stdout; the results file records, per scenario, the
//! spec, the rendered tables, the planned units, every `RunRecord`, and
//! the sweep's wall-clock seconds.
//!
//! `--threads N` installs a **scoped** [`ThreadPool`] for this run instead
//! of mutating `RAYON_NUM_THREADS`, so concurrent labs in one process (or
//! test harness) size their pools independently. A user spec with
//! `"render": "Aggregate"` (or an `"aggregate"` group-by block) prints a
//! grouped summary table — mean, CI, percentiles — instead of one raw row
//! per record; `--csv` writes whatever tables render as CSV.

use radio_bench::scenario::{registry, render, run_spec, ScenarioRun, ScenarioSpec};
use radio_bench::{Table, ThreadPool};
use serde::Serialize;

/// One executed scenario in the results file.
#[derive(Serialize)]
struct LabScenario {
    spec: ScenarioSpec,
    tables: Vec<Table>,
    run: ScenarioRun,
}

/// The whole results document.
#[derive(Serialize)]
struct LabReport {
    schema: String,
    quick: bool,
    wall_s_total: f64,
    scenarios: Vec<LabScenario>,
}

const USAGE: &str = "usage: radio-lab [SPEC.json | e1..e11 | --all] [--quick|--full] \
[--threads N] [--out PATH] [--csv PATH] [--json]\n\
\n\
SPEC.json is a ScenarioSpec; give it \"render\": \"Aggregate\" (or an\n\
\"aggregate\" block with group_by keys and metric reductions) for a\n\
grouped mean/CI/percentile summary instead of one row per record —\n\
see examples/aggregate_mis.json for the end-to-end shape.\n\
--threads N uses a scoped pool for this run only (no global state);\n\
--csv writes each rendered table as CSV (a single table lands at PATH;\n\
several get the table id spliced in before the extension).";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_tables = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    // A value-taking flag's argument must exist and not itself be a flag —
    // `--csv --json` silently writing a file named "--json" is worse than
    // exiting.
    let flag_value = |flag: &str| -> Option<&str> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v),
            _ => {
                eprintln!("{flag} requires a value");
                usage();
            }
        }
    };
    let out_path = flag_value("--out")
        .unwrap_or("LAB_results.json")
        .to_string();
    let csv_path = flag_value("--csv").map(str::to_string);
    // A scoped pool for this run: nothing process-global changes, so
    // concurrent labs (or a test harness running labs in parallel) each
    // keep their own width.
    let pool = flag_value("--threads").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 1 => ThreadPool::new(n),
        _ => {
            eprintln!("--threads requires a positive integer, got {v}");
            usage();
        }
    });
    let mut skip_next = false;
    let mut inputs: Vec<String> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--threads" || a == "--csv" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            if !matches!(a.as_str(), "--quick" | "--full" | "--json" | "--all") {
                eprintln!("unknown flag {a}");
                usage();
            }
            continue;
        }
        inputs.push(a.clone());
    }
    if all {
        inputs.extend(registry::ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    if inputs.is_empty() {
        usage();
    }

    // Resolve every input to specs before running anything, so a typo
    // fails fast instead of after a long sweep.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for input in &inputs {
        if let Some(built_in) = registry::specs(&input.to_lowercase(), quick) {
            specs.extend(built_in);
            continue;
        }
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{input}: not a registry id (e1..e11) and unreadable as a file: {e}");
                std::process::exit(2);
            }
        };
        match serde_json::from_str::<ScenarioSpec>(&text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("{input}: invalid ScenarioSpec JSON: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut report = LabReport {
        schema: "radio-lab/v1".to_string(),
        quick,
        wall_s_total: 0.0,
        scenarios: Vec::new(),
    };
    let mut csv_tables: Vec<(String, String)> = Vec::new();
    for spec in specs {
        eprintln!(
            "running {} ({} units{})...",
            spec.id,
            spec.grid_size(),
            if quick { ", quick" } else { "" }
        );
        let run = match &pool {
            Some(p) => p.install(|| run_spec(&spec)),
            None => run_spec(&spec),
        };
        let table = render(&spec, &run);
        if csv_path.is_some() {
            csv_tables.push((table.id.clone(), table.to_csv()));
        }
        if json_tables {
            println!(
                "{}",
                serde_json::to_string(&table).expect("table serializes")
            );
        } else {
            println!("{}", table.render());
        }
        eprintln!("{}: {:.3}s", spec.id, run.wall_s);
        report.wall_s_total += run.wall_s;
        report.scenarios.push(LabScenario {
            spec,
            tables: vec![table],
            run,
        });
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &csv_path {
        // One table → exactly the requested path; several tables get the
        // table id spliced in before the extension (one well-formed CSV
        // per file — concatenating tables with different headers would
        // parse as a ragged mess).
        for (id, csv) in &csv_tables {
            let target = if csv_tables.len() == 1 {
                path.clone()
            } else {
                let p = std::path::Path::new(path);
                let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("tables");
                let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("csv");
                p.with_file_name(format!("{stem}_{id}.{ext}"))
                    .to_string_lossy()
                    .into_owned()
            };
            std::fs::write(&target, csv).unwrap_or_else(|e| {
                eprintln!("cannot write {target}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {target}");
        }
    }
    eprintln!(
        "wrote {out_path} ({} scenarios, {:.3}s total)",
        report.scenarios.len(),
        report.wall_s_total
    );
}
