//! `radio-lab` — run declarative scenarios from JSON spec files or the
//! built-in experiment registry, and write machine-readable results.
//!
//! Usage:
//!
//! ```text
//! radio-lab my_scenario.json            # run a user-authored ScenarioSpec
//! radio-lab e1 e5 --quick               # registry experiments at smoke scale
//! radio-lab --all --full                # the whole E1–E11 suite
//! radio-lab spec.json --threads 4       # scoped pool for this run only
//! radio-lab spec.json --out results.json
//! radio-lab spec.json --csv results.csv # aggregated/raw tables as CSV
//! radio-lab spec.json --stream --chunk 512 \
//!   --records records.jsonl --no-records  # bounded-memory sweep
//! radio-lab spec.json --stream --checkpoint cp.json   # durable progress
//! radio-lab spec.json --stream --checkpoint cp.json --resume  # continue
//! radio-lab spec.json --stream --shard 0/4 --out s0.partial   # one shard
//! radio-lab merge s0.partial s1.partial s2.partial s3.partial \
//!   --out final.json --csv final.csv --records final.jsonl
//! ```
//!
//! Positional arguments naming registry ids (`e1`..`e11`) expand to the
//! built-in specs; anything else is read as a JSON [`ScenarioSpec`] file.
//! Tables print to stdout; the results file records, per scenario, the
//! spec, the rendered tables, the unit/record counts, the sweep's
//! wall-clock seconds, and (unless `--no-records` or `--stream`) the full
//! `ScenarioRun` with every `RunRecord`.
//!
//! `--threads N` installs a **scoped** [`ThreadPool`] for this run instead
//! of mutating `RAYON_NUM_THREADS`, so concurrent labs in one process (or
//! test harness) size their pools independently. A user spec with
//! `"render": "Aggregate"` (or an `"aggregate"` group-by block) prints a
//! grouped summary table — mean, CI, percentiles — instead of one raw row
//! per record; `--csv` writes whatever tables render as CSV.
//!
//! `--stream` switches execution to the bounded-memory pipeline
//! ([`radio_bench::scenario::run_spec_streaming`]): the grid runs in
//! index-ordered chunks of `--chunk` units (default 256) and every
//! completed unit's records flow to sinks instead of accumulating — an
//! aggregation sink for the table (byte-identical to the materialized
//! fold) and, with `--records PATH.jsonl`, a JSONL writer logging one
//! record per line in unit order. Streamed results JSON never embeds
//! records (counts and wall-clock replace them); specs that don't render
//! through the aggregate fold already — bespoke `E*` layouts, or
//! `Generic` without an `aggregate` block — fall back to the default
//! aggregate grouping under `--stream` with a stderr notice (their
//! layouts need the materialized records).
//!
//! # Resumable and sharded sweeps
//!
//! `--checkpoint PATH` (requires `--stream`, one scenario) makes progress
//! durable: after every chunk the sinks flush and a
//! [`radio_bench::checkpoint::SweepCheckpoint`] lands atomically at
//! `PATH` — spec fingerprint, next grid index, lossless accumulator
//! state, durable record-log line count. A killed sweep re-run with
//! `--resume` restores the accumulators, truncates a torn `--records`
//! tail back to the checkpointed durable prefix (with a warning), and
//! continues from the last durable chunk; the final table, CSV, and
//! JSONL are **byte-identical** to an uninterrupted run. A fingerprint
//! mismatch (the spec changed) is refused.
//!
//! `--shard i/m` (requires `--stream`, one scenario) runs the i-th of
//! `m` contiguous index ranges and writes a
//! [`radio_bench::checkpoint::ShardPartial`] to `--out` instead of a
//! results report (give each shard its own `--out` and, if logging,
//! `--records` path). `radio-lab merge a.partial b.partial … --out
//! final.json` folds the partials **in shard order** — producing table,
//! `--csv`, and concatenated `--records` output byte-identical to the
//! single-process `--stream` run — and refuses missing, duplicate, or
//! fingerprint-mismatched shards. Shards compose with `--checkpoint`:
//! each shard can itself be killed and resumed.

#![forbid(unsafe_code)]

use radio_bench::checkpoint::{
    merge_partials, shard_range, truncate_jsonl_to_lines, ShardPartial, ShardRef, SweepCheckpoint,
    PARTIAL_SCHEMA,
};
use radio_bench::scenario::{
    registry, render, run_spec, run_spec_streaming, RenderKind, ScenarioRun, ScenarioSpec,
};
use radio_bench::sink::{JsonlWriter, RecordSink, SinkFile, StreamAggregate};
use radio_bench::{spec_fingerprint, Table, ThreadPool};
use serde::Serialize;
use std::io::BufWriter;
use std::path::Path;

/// One executed scenario in the results file.
#[derive(Serialize)]
struct LabScenario {
    spec: ScenarioSpec,
    tables: Vec<Table>,
    /// Units executed (= the spec's grid product).
    units: u64,
    /// Records produced across all units.
    records: u64,
    /// Wall-clock seconds for the sweep.
    wall_s: f64,
    /// The full materialized run (planned units + every record); absent
    /// under `--stream` / `--no-records`, where counts stand in.
    run: Option<ScenarioRun>,
}

/// The whole results document.
#[derive(Serialize)]
struct LabReport {
    schema: String,
    quick: bool,
    streamed: bool,
    wall_s_total: f64,
    scenarios: Vec<LabScenario>,
}

const USAGE: &str = "usage: radio-lab [SPEC.json | e1..e11 | --all] [--quick|--full] \
[--threads N] [--out PATH] [--csv PATH] [--json] \
[--stream] [--chunk N] [--records PATH.jsonl] [--no-records] \
[--checkpoint PATH [--resume]] [--shard I/M]\n\
       radio-lab merge PART.partial... [--out PATH] [--csv PATH] \
[--records PATH.jsonl] [--json]\n\
       radio-lab serve|work|status ... (fault-tolerant multi-process \
sweep service; see radio-lab serve --help)\n\
\n\
SPEC.json is a ScenarioSpec; give it \"render\": \"Aggregate\" (or an\n\
\"aggregate\" block with group_by keys and metric reductions) for a\n\
grouped mean/CI/percentile summary instead of one row per record —\n\
see examples/aggregate_mis.json for the end-to-end shape.\n\
--threads N uses a scoped pool for this run only (no global state);\n\
--csv writes each rendered table as CSV (a single table lands at PATH;\n\
several get the table id spliced in before the extension, and\n\
colliding targets — duplicate table ids — are uniquified with a\n\
numeric suffix and a warning instead of clobbering each other).\n\
Value-taking flags may be given at most once; a repeated flag is an\n\
error rather than a silently ignored value.\n\
--stream executes the grid in index-ordered chunks of --chunk units\n\
(default 256), folding records into the aggregate table as they\n\
arrive: peak memory is O(chunk), not O(grid), and the table is\n\
byte-identical to the materialized run. --records PATH.jsonl streams\n\
every RunRecord as one JSON line (unit order) while the sweep runs;\n\
--no-records keeps the per-record dump out of the results JSON (unit\n\
and record counts plus wall-clock are always recorded). Specs that\n\
don't render through the aggregate fold — bespoke E* layouts, or\n\
Generic without an aggregate block — print the default aggregate\n\
summary under --stream (a notice says so).\n\
--checkpoint PATH (with --stream, one scenario) writes a durable\n\
checkpoint after every chunk: spec fingerprint, next grid index,\n\
lossless accumulator state. --resume restores it and continues from\n\
the last durable chunk — output is byte-identical to an uninterrupted\n\
run; a changed spec (fingerprint mismatch) is refused, and a torn\n\
--records tail from a crash is truncated back to the durable prefix\n\
with a warning.\n\
--shard I/M (with --stream, one scenario) runs the I-th of M\n\
contiguous grid slices and writes a shard partial to --out; 'radio-lab\n\
merge *.partial' folds partials in shard order into table/CSV/JSONL\n\
byte-identical to the single-process run (missing, duplicate, or\n\
mismatched shards are refused).";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Resolves each table id to its CSV path: a single table lands exactly at
/// `path`; several get the id spliced in before the extension. Targets
/// that would collide — the same table id twice (`radio-lab e1 e1`), or
/// two user specs sharing an id — are uniquified with a numeric suffix so
/// no table silently clobbers another; the returned flags mark which
/// targets were renamed (the caller warns).
fn csv_targets(path: &str, ids: &[String]) -> Vec<(String, bool)> {
    let mut used: Vec<String> = Vec::new();
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        let natural = if ids.len() == 1 {
            path.to_string()
        } else {
            spliced(path, id)
        };
        let mut target = natural.clone();
        let mut k = 2u32;
        while used.contains(&target) {
            target = spliced(path, &format!("{id}_{k}"));
            k += 1;
        }
        let renamed = target != natural;
        used.push(target.clone());
        out.push((target, renamed));
    }
    out
}

/// `path` with `id` spliced in before the extension.
fn spliced(path: &str, id: &str) -> String {
    let p = std::path::Path::new(path);
    let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("tables");
    let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("csv");
    p.with_file_name(format!("{stem}_{id}.{ext}"))
        .to_string_lossy()
        .into_owned()
}

/// Flags that take a value; each may appear at most once (a silently
/// swallowed duplicate is how `--out a.json --out b.json` used to write
/// only `a.json`).
const VALUE_FLAGS: [&str; 7] = [
    "--out",
    "--csv",
    "--records",
    "--chunk",
    "--threads",
    "--checkpoint",
    "--shard",
];

/// Warns beside the table when a log-log slope was fitted on a subset
/// (non-positive points dropped — the caption carries the count).
fn warn_if_subset_fit(table: &Table) {
    if table
        .caption
        .contains(radio_bench::aggregate::DROPPED_POINTS_MARKER)
    {
        eprintln!(
            "warning: {}: log-log exponent fitted on a subset — non-positive points were \
             dropped (count in the caption)",
            table.id
        );
    }
}

/// Prints a rendered table to stdout, as markdown or one-line JSON.
fn emit_table(table: &Table, json_tables: bool) {
    if json_tables {
        println!(
            "{}",
            serde_json::to_string(table).expect("table serializes")
        );
    } else {
        println!("{}", table.render());
    }
    warn_if_subset_fit(table);
}

fn write_report(report: &LabReport, out_path: &str) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(out_path, json).unwrap_or_else(|e| {
        fail(&format!("cannot write {out_path}: {e}"));
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The serve family (serve/work/status) owns its own flag grammar —
    // dispatch on the first positional before the classic parser runs.
    if let Some(code) = radio_bench::serve::cli::dispatch(&args) {
        std::process::exit(code);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    // Duplicate value-taking flags used to silently keep the first value
    // and swallow the second as a positional — refuse them instead.
    for flag in VALUE_FLAGS {
        let positions: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == flag)
            .map(|(i, _)| i)
            .collect();
        if positions.len() > 1 {
            fail(&format!(
                "{flag} given {} times — each value-taking flag may appear at most once",
                positions.len()
            ));
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_tables = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    let stream = args.iter().any(|a| a == "--stream");
    let no_records = args.iter().any(|a| a == "--no-records");
    let resume = args.iter().any(|a| a == "--resume");
    // A value-taking flag's argument must exist and not itself be a flag —
    // `--csv --json` silently writing a file named "--json" is worse than
    // exiting.
    let flag_value = |flag: &str| -> Option<&str> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v),
            _ => {
                eprintln!("{flag} requires a value");
                usage();
            }
        }
    };
    let out_path = flag_value("--out")
        .unwrap_or("LAB_results.json")
        .to_string();
    let csv_path = flag_value("--csv").map(str::to_string);
    let records_path = flag_value("--records").map(str::to_string);
    let checkpoint_path = flag_value("--checkpoint").map(str::to_string);
    let shard = flag_value("--shard").map(|v| {
        ShardRef::parse(v).unwrap_or_else(|e| {
            fail(&format!("--shard: {e}"));
        })
    });
    let chunk = flag_value("--chunk").map_or(256u64, |v| match v.parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--chunk requires a positive integer, got {v}");
            usage();
        }
    });
    // A scoped pool for this run: nothing process-global changes, so
    // concurrent labs (or a test harness running labs in parallel) each
    // keep their own width.
    let pool = flag_value("--threads").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 1 => ThreadPool::new(n),
        _ => {
            eprintln!("--threads requires a positive integer, got {v}");
            usage();
        }
    });
    let mut skip_next = false;
    let mut inputs: Vec<String> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            if !matches!(
                a.as_str(),
                "--quick"
                    | "--full"
                    | "--json"
                    | "--all"
                    | "--stream"
                    | "--no-records"
                    | "--resume"
            ) {
                eprintln!("unknown flag {a}");
                usage();
            }
            continue;
        }
        inputs.push(a.clone());
    }

    // `radio-lab merge a.partial b.partial …` — fold shard partials.
    if inputs.first().is_some_and(|a| a == "merge") {
        if stream
            || resume
            || shard.is_some()
            || checkpoint_path.is_some()
            || all
            || quick
            || no_records
            || pool.is_some()
            || args.iter().any(|a| a == "--chunk")
        {
            fail("merge takes only partial files plus --out/--csv/--records/--json");
        }
        run_merge(
            &inputs[1..],
            &out_path,
            csv_path.as_deref(),
            records_path.as_deref(),
            json_tables,
        );
        return;
    }

    if !stream && (records_path.is_some() || args.iter().any(|a| a == "--chunk")) {
        eprintln!("--records/--chunk only apply to --stream runs");
        usage();
    }
    if !stream && (checkpoint_path.is_some() || shard.is_some() || resume) {
        eprintln!("--checkpoint/--resume/--shard only apply to --stream runs");
        usage();
    }
    if resume && checkpoint_path.is_none() {
        eprintln!("--resume requires --checkpoint PATH (the file to continue from)");
        usage();
    }
    if all {
        inputs.extend(registry::ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    if inputs.is_empty() {
        usage();
    }

    // Resolve every input to specs before running anything, so a typo
    // fails fast instead of after a long sweep.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for input in &inputs {
        if let Some(built_in) = registry::specs(&input.to_lowercase(), quick) {
            specs.extend(built_in);
            continue;
        }
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                fail(&format!(
                    "{input}: not a registry id (e1..e11) and unreadable as a file: {e}"
                ));
            }
        };
        match serde_json::from_str::<ScenarioSpec>(&text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                fail(&format!("{input}: invalid ScenarioSpec JSON: {e}"));
            }
        }
    }

    // Checkpointed / sharded sweeps run one scenario through the durable
    // pipeline and return.
    if checkpoint_path.is_some() || shard.is_some() {
        let [spec] = &specs[..] else {
            fail("--checkpoint/--shard apply to exactly one scenario per invocation");
        };
        run_checkpointed(
            spec,
            chunk,
            pool.as_ref(),
            shard,
            checkpoint_path.as_deref(),
            resume,
            records_path.as_deref(),
            &out_path,
            csv_path.as_deref(),
            json_tables,
            quick,
        );
        return;
    }

    // One JSONL log across every scenario of the run, written as records
    // arrive (unit order within each scenario, scenarios in CLI order).
    let mut jsonl = records_path.as_ref().map(|path| {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        JsonlWriter::new(BufWriter::new(file))
    });

    let mut report = LabReport {
        schema: radio_bench::schemas::RESULTS_SCHEMA.to_string(),
        quick,
        streamed: stream,
        wall_s_total: 0.0,
        scenarios: Vec::new(),
    };
    let mut csv_tables: Vec<(String, String)> = Vec::new();
    for spec in specs {
        eprintln!(
            "running {} ({} units{}{})...",
            spec.id,
            spec.grid_size(),
            if quick { ", quick" } else { "" },
            if stream {
                format!(", streaming in chunks of {chunk}")
            } else {
                String::new()
            }
        );
        let (table, units, records, wall_s, run) = if stream {
            stream_fallback_notice(&spec);
            let mut agg = StreamAggregate::for_spec(&spec);
            let stats = {
                let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
                if let Some(w) = jsonl.as_mut() {
                    sinks.push(w);
                }
                let result = match &pool {
                    Some(p) => p.install(|| run_spec_streaming(&spec, chunk, &mut sinks)),
                    None => run_spec_streaming(&spec, chunk, &mut sinks),
                };
                result.unwrap_or_else(|e| {
                    eprintln!("{}: streaming sink error: {e}", spec.id);
                    std::process::exit(1);
                })
            };
            let table = agg.table(&spec);
            (table, stats.units, stats.records, stats.wall_s, None)
        } else {
            let run = match &pool {
                Some(p) => p.install(|| run_spec(&spec)),
                None => run_spec(&spec),
            };
            let table = render(&spec, &run);
            let units = run.units.len() as u64;
            let records = run.records.iter().map(|r| r.len() as u64).sum();
            let wall_s = run.wall_s;
            let kept = (!no_records).then_some(run);
            (table, units, records, wall_s, kept)
        };
        if csv_path.is_some() {
            csv_tables.push((table.id.clone(), table.to_csv()));
        }
        emit_table(&table, json_tables);
        eprintln!("{}: {:.3}s", spec.id, wall_s);
        report.wall_s_total += wall_s;
        report.scenarios.push(LabScenario {
            spec,
            tables: vec![table],
            units,
            records,
            wall_s,
            run,
        });
    }
    if let Some(w) = jsonl {
        w.finish().unwrap_or_else(|e| {
            eprintln!(
                "cannot flush {}: {e}",
                records_path.as_deref().unwrap_or("records")
            );
            std::process::exit(1);
        });
        eprintln!("wrote {}", records_path.as_deref().unwrap_or("records"));
    }
    write_report(&report, &out_path);
    if let Some(path) = &csv_path {
        // One table → exactly the requested path; several tables get the
        // table id spliced in before the extension (one well-formed CSV
        // per file — concatenating tables with different headers would
        // parse as a ragged mess). Duplicate ids uniquify instead of
        // clobbering.
        let ids: Vec<String> = csv_tables.iter().map(|(id, _)| id.clone()).collect();
        for ((target, renamed), (id, csv)) in csv_targets(path, &ids).iter().zip(&csv_tables) {
            if *renamed {
                eprintln!(
                    "warning: CSV target for table {id} collides with an earlier table; \
                     writing {target} instead"
                );
            }
            std::fs::write(target, csv).unwrap_or_else(|e| {
                eprintln!("cannot write {target}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {target}");
        }
    }
    eprintln!(
        "wrote {out_path} ({} scenarios, {:.3}s total)",
        report.scenarios.len(),
        report.wall_s_total
    );
}

/// The stderr notice for specs that don't stream natively (their layouts
/// need materialized records, so `--stream` renders the aggregate fold).
fn stream_fallback_notice(spec: &ScenarioSpec) {
    let streams_natively = matches!(spec.render, RenderKind::Aggregate)
        || (matches!(spec.render, RenderKind::Generic) && spec.aggregate.is_some());
    if !streams_natively {
        eprintln!(
            "{}: --stream renders the {} instead of the {:?} layout (it needs \
             materialized records)",
            spec.id,
            if spec.aggregate.is_some() {
                "spec's aggregate block"
            } else {
                "default aggregate summary"
            },
            spec.render
        );
    }
}

/// Runs one scenario through the durable streaming pipeline: chunked
/// execution with per-chunk checkpoints (`--checkpoint`), optional resume
/// from the last durable chunk (`--resume`), and optional restriction to
/// one contiguous shard of the grid (`--shard i/m`, writing a partial
/// artifact instead of a results report).
#[allow(clippy::too_many_arguments)] // CLI surface, one call site
fn run_checkpointed(
    spec: &ScenarioSpec,
    chunk: u64,
    pool: Option<&ThreadPool>,
    shard: Option<ShardRef>,
    checkpoint_path: Option<&str>,
    resume: bool,
    records_path: Option<&str>,
    out_path: &str,
    csv_path: Option<&str>,
    json_tables: bool,
    quick: bool,
) {
    stream_fallback_notice(spec);
    let total = spec.grid_size() as u64;
    let bounds = shard.map_or(0..total, |s| shard_range(total, s));
    // Testing hook: stop cleanly after N chunks (checkpoint left behind),
    // simulating a kill at an exact chunk boundary.
    let limit_chunks =
        std::env::var("RADIO_LAB_DIE_AFTER_CHUNKS")
            .ok()
            .map(|v| match v.parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => fail(&format!("RADIO_LAB_DIE_AFTER_CHUNKS must be >= 1, got {v}")),
            });

    let (mut agg, mut jsonl, todo_start, base_records, base_wall_s);
    if resume {
        let cp_path = Path::new(checkpoint_path.expect("--resume implies --checkpoint"));
        let cp = SweepCheckpoint::load(cp_path).unwrap_or_else(|e| {
            fail(&format!("cannot resume: {e}"));
        });
        cp.validate(spec, shard, &bounds, records_path.is_some())
            .unwrap_or_else(|e| fail(&format!("cannot resume: {e}")));
        jsonl = match (cp.jsonl_lines, records_path) {
            (Some(lines), Some(path)) => {
                let report = truncate_jsonl_to_lines(Path::new(path), lines)
                    .unwrap_or_else(|e| fail(&format!("cannot resume: {e}")));
                if report.dropped_bytes > 0 {
                    eprintln!(
                        "warning: {path}: dropped {} byte(s) past the checkpoint ({} complete \
                         line(s){}) — the resumed sweep re-emits them",
                        report.dropped_bytes,
                        report.dropped_lines,
                        if report.torn_tail {
                            " plus a torn final line"
                        } else {
                            ""
                        }
                    );
                }
                let file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| fail(&format!("cannot append to {path}: {e}")));
                Some(JsonlWriter::resume(
                    BufWriter::new(SinkFile::new(file)),
                    lines,
                ))
            }
            _ => None,
        };
        agg = StreamAggregate::restore_for_spec(spec, cp.aggregate)
            .unwrap_or_else(|e| fail(&format!("cannot resume: {e}")));
        todo_start = cp.next_index;
        base_records = cp.records;
        base_wall_s = cp.wall_s;
        eprintln!(
            "resuming {} at grid index {} of {}..{} ({} records durable)...",
            spec.id, todo_start, bounds.start, bounds.end, base_records
        );
    } else {
        if let Some(cp) = checkpoint_path {
            if Path::new(cp).exists() {
                fail(&format!(
                    "{cp} already exists — pass --resume to continue it, or remove it to start \
                     fresh"
                ));
            }
        }
        jsonl = records_path.map(|path| {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            JsonlWriter::new(BufWriter::new(SinkFile::new(file)))
        });
        agg = StreamAggregate::for_spec(spec);
        todo_start = bounds.start;
        base_records = 0;
        base_wall_s = 0.0;
        eprintln!(
            "running {} ({} units{}, streaming in chunks of {chunk}{}{})...",
            spec.id,
            bounds.end - bounds.start,
            if quick { ", quick" } else { "" },
            shard.map_or(String::new(), |s| format!(", shard {s}")),
            if checkpoint_path.is_some() {
                ", checkpointed"
            } else {
                ""
            }
        );
    }

    let mut run_slice = || {
        radio_bench::checkpoint::run_slice_checkpointed(
            radio_bench::checkpoint::SliceJob {
                spec,
                chunk,
                todo: todo_start..bounds.end,
                bounds: bounds.clone(),
                shard,
                base_records,
                base_wall_s,
                checkpoint_path: checkpoint_path.map(Path::new),
                limit_chunks,
                on_chunk: None,
            },
            &mut agg,
            jsonl.as_mut(),
        )
    };
    let outcome = match pool {
        Some(p) => p.install(run_slice),
        None => run_slice(),
    }
    .unwrap_or_else(|e| {
        eprintln!("{}: streaming sink error: {e}", spec.id);
        std::process::exit(1);
    });
    if outcome.interrupted {
        eprintln!(
            "{}: stopping at grid index {} after {} chunk(s) (RADIO_LAB_DIE_AFTER_CHUNKS)",
            spec.id,
            outcome.next_index,
            limit_chunks.unwrap_or(0)
        );
        // Mimic a SIGKILL exit so harnesses treat this as the crash it
        // simulates; the checkpoint (if configured) stays behind.
        std::process::exit(137);
    }
    if let Some(w) = jsonl.take() {
        w.finish().unwrap_or_else(|e| {
            eprintln!("cannot flush {}: {e}", records_path.unwrap_or("records"));
            std::process::exit(1);
        });
        eprintln!("wrote {}", records_path.unwrap_or("records"));
    }
    let table = agg.table(spec);
    emit_table(&table, json_tables);
    eprintln!("{}: {:.3}s", spec.id, outcome.wall_s);
    if let Some(path) = csv_path {
        std::fs::write(path, table.to_csv())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(s) = shard {
        let partial = ShardPartial {
            schema: PARTIAL_SCHEMA.to_string(),
            fingerprint: spec_fingerprint(spec),
            shard: s,
            start: bounds.start,
            end: bounds.end,
            records: outcome.records,
            wall_s: outcome.wall_s,
            records_path: records_path.map(str::to_string),
            spec: spec.clone(),
            aggregate: agg.snapshot(),
        };
        partial
            .save(Path::new(out_path))
            .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
        eprintln!(
            "wrote {out_path} (shard {s}, units {}..{}, {:.3}s)",
            bounds.start, bounds.end, outcome.wall_s
        );
    } else {
        let report = LabReport {
            schema: radio_bench::schemas::RESULTS_SCHEMA.to_string(),
            quick,
            streamed: true,
            wall_s_total: outcome.wall_s,
            scenarios: vec![LabScenario {
                spec: spec.clone(),
                tables: vec![table],
                units: bounds.end - bounds.start,
                records: outcome.records,
                wall_s: outcome.wall_s,
                run: None,
            }],
        };
        write_report(&report, out_path);
        eprintln!(
            "wrote {out_path} (1 scenario, {:.3}s total)",
            outcome.wall_s
        );
    }
}

/// `radio-lab merge` — fold shard partials, in shard order, back into the
/// single sweep's table/CSV/JSONL (byte-identical to the single-process
/// `--stream` run).
fn run_merge(
    files: &[String],
    out_path: &str,
    csv_path: Option<&str>,
    records_out: Option<&str>,
    json_tables: bool,
) {
    if files.is_empty() {
        fail("merge needs at least one .partial file");
    }
    let partials: Vec<ShardPartial> = files
        .iter()
        .map(|f| {
            ShardPartial::load(Path::new(f)).unwrap_or_else(|e| fail(&format!("cannot merge: {e}")))
        })
        .collect();
    let merged = merge_partials(partials).unwrap_or_else(|e| fail(&format!("cannot merge: {e}")));
    let table = merged.agg.table(&merged.spec);
    emit_table(&table, json_tables);
    if let Some(path) = csv_path {
        std::fs::write(path, table.to_csv())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = records_out {
        let bytes =
            radio_bench::checkpoint::concat_record_logs(&merged.records_paths, Path::new(path))
                .unwrap_or_else(|e| fail(&format!("cannot assemble {path}: {e}")));
        eprintln!(
            "wrote {path} ({} record logs, {bytes} bytes)",
            merged.records_paths.len()
        );
    }
    let shards = merged.records_paths.len();
    let report = LabReport {
        schema: radio_bench::schemas::RESULTS_SCHEMA.to_string(),
        quick: false,
        streamed: true,
        wall_s_total: merged.wall_s,
        scenarios: vec![LabScenario {
            spec: merged.spec,
            tables: vec![table],
            units: merged.units,
            records: merged.records,
            wall_s: merged.wall_s,
            run: None,
        }],
    };
    write_report(&report, out_path);
    eprintln!(
        "wrote {out_path} (merged {shards} shards, {:.3}s summed shard time)",
        report.wall_s_total
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_table_uses_the_requested_path() {
        assert_eq!(
            csv_targets("out/results.csv", &ids(&["E1"])),
            vec![("out/results.csv".to_string(), false)]
        );
    }

    #[test]
    fn several_tables_splice_ids_before_the_extension() {
        assert_eq!(
            csv_targets("results.csv", &ids(&["E1", "E5a"])),
            vec![
                ("results_E1.csv".to_string(), false),
                ("results_E5a.csv".to_string(), false),
            ]
        );
    }

    #[test]
    fn duplicate_ids_uniquify_instead_of_clobbering() {
        // `radio-lab e1 e1 --csv out.csv` — the second E1 must not
        // overwrite the first.
        assert_eq!(
            csv_targets("out.csv", &ids(&["E1", "E1", "E1"])),
            vec![
                ("out_E1.csv".to_string(), false),
                ("out_E1_2.csv".to_string(), true),
                ("out_E1_3.csv".to_string(), true),
            ]
        );
    }

    #[test]
    fn uniquified_names_dodge_natural_names_too() {
        // A pathological id that matches another table's uniquified name:
        // the suffix search must keep probing.
        assert_eq!(
            csv_targets("t.csv", &ids(&["E1", "E1", "E1_2"])),
            vec![
                ("t_E1.csv".to_string(), false),
                ("t_E1_2.csv".to_string(), true),
                ("t_E1_2_2.csv".to_string(), true),
            ]
        );
    }
}
