//! `radio-lab` — run declarative scenarios from JSON spec files or the
//! built-in experiment registry, and write machine-readable results.
//!
//! Usage:
//!
//! ```text
//! radio-lab my_scenario.json            # run a user-authored ScenarioSpec
//! radio-lab e1 e5 --quick               # registry experiments at smoke scale
//! radio-lab --all --full                # the whole E1–E11 suite
//! radio-lab spec.json --threads 4       # scoped pool for this run only
//! radio-lab spec.json --out results.json
//! radio-lab spec.json --csv results.csv # aggregated/raw tables as CSV
//! radio-lab spec.json --stream --chunk 512 \
//!   --records records.jsonl --no-records  # bounded-memory sweep
//! ```
//!
//! Positional arguments naming registry ids (`e1`..`e11`) expand to the
//! built-in specs; anything else is read as a JSON [`ScenarioSpec`] file.
//! Tables print to stdout; the results file records, per scenario, the
//! spec, the rendered tables, the unit/record counts, the sweep's
//! wall-clock seconds, and (unless `--no-records` or `--stream`) the full
//! `ScenarioRun` with every `RunRecord`.
//!
//! `--threads N` installs a **scoped** [`ThreadPool`] for this run instead
//! of mutating `RAYON_NUM_THREADS`, so concurrent labs in one process (or
//! test harness) size their pools independently. A user spec with
//! `"render": "Aggregate"` (or an `"aggregate"` group-by block) prints a
//! grouped summary table — mean, CI, percentiles — instead of one raw row
//! per record; `--csv` writes whatever tables render as CSV.
//!
//! `--stream` switches execution to the bounded-memory pipeline
//! ([`radio_bench::scenario::run_spec_streaming`]): the grid runs in
//! index-ordered chunks of `--chunk` units (default 256) and every
//! completed unit's records flow to sinks instead of accumulating — an
//! aggregation sink for the table (byte-identical to the materialized
//! fold) and, with `--records PATH.jsonl`, a JSONL writer logging one
//! record per line in unit order. Streamed results JSON never embeds
//! records (counts and wall-clock replace them); specs that don't render
//! through the aggregate fold already — bespoke `E*` layouts, or
//! `Generic` without an `aggregate` block — fall back to the default
//! aggregate grouping under `--stream` with a stderr notice (their
//! layouts need the materialized records).

use radio_bench::scenario::{
    registry, render, run_spec, run_spec_streaming, RenderKind, ScenarioRun, ScenarioSpec,
};
use radio_bench::sink::{JsonlWriter, RecordSink, StreamAggregate};
use radio_bench::{Table, ThreadPool};
use serde::Serialize;
use std::io::BufWriter;

/// One executed scenario in the results file.
#[derive(Serialize)]
struct LabScenario {
    spec: ScenarioSpec,
    tables: Vec<Table>,
    /// Units executed (= the spec's grid product).
    units: u64,
    /// Records produced across all units.
    records: u64,
    /// Wall-clock seconds for the sweep.
    wall_s: f64,
    /// The full materialized run (planned units + every record); absent
    /// under `--stream` / `--no-records`, where counts stand in.
    run: Option<ScenarioRun>,
}

/// The whole results document.
#[derive(Serialize)]
struct LabReport {
    schema: String,
    quick: bool,
    streamed: bool,
    wall_s_total: f64,
    scenarios: Vec<LabScenario>,
}

const USAGE: &str = "usage: radio-lab [SPEC.json | e1..e11 | --all] [--quick|--full] \
[--threads N] [--out PATH] [--csv PATH] [--json] \
[--stream] [--chunk N] [--records PATH.jsonl] [--no-records]\n\
\n\
SPEC.json is a ScenarioSpec; give it \"render\": \"Aggregate\" (or an\n\
\"aggregate\" block with group_by keys and metric reductions) for a\n\
grouped mean/CI/percentile summary instead of one row per record —\n\
see examples/aggregate_mis.json for the end-to-end shape.\n\
--threads N uses a scoped pool for this run only (no global state);\n\
--csv writes each rendered table as CSV (a single table lands at PATH;\n\
several get the table id spliced in before the extension, and\n\
colliding targets — duplicate table ids — are uniquified with a\n\
numeric suffix and a warning instead of clobbering each other).\n\
--stream executes the grid in index-ordered chunks of --chunk units\n\
(default 256), folding records into the aggregate table as they\n\
arrive: peak memory is O(chunk), not O(grid), and the table is\n\
byte-identical to the materialized run. --records PATH.jsonl streams\n\
every RunRecord as one JSON line (unit order) while the sweep runs;\n\
--no-records keeps the per-record dump out of the results JSON (unit\n\
and record counts plus wall-clock are always recorded). Specs that\n\
don't render through the aggregate fold — bespoke E* layouts, or\n\
Generic without an aggregate block — print the default aggregate\n\
summary under --stream (a notice says so).";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Resolves each table id to its CSV path: a single table lands exactly at
/// `path`; several get the id spliced in before the extension. Targets
/// that would collide — the same table id twice (`radio-lab e1 e1`), or
/// two user specs sharing an id — are uniquified with a numeric suffix so
/// no table silently clobbers another; the returned flags mark which
/// targets were renamed (the caller warns).
fn csv_targets(path: &str, ids: &[String]) -> Vec<(String, bool)> {
    let mut used: Vec<String> = Vec::new();
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        let natural = if ids.len() == 1 {
            path.to_string()
        } else {
            spliced(path, id)
        };
        let mut target = natural.clone();
        let mut k = 2u32;
        while used.contains(&target) {
            target = spliced(path, &format!("{id}_{k}"));
            k += 1;
        }
        let renamed = target != natural;
        used.push(target.clone());
        out.push((target, renamed));
    }
    out
}

/// `path` with `id` spliced in before the extension.
fn spliced(path: &str, id: &str) -> String {
    let p = std::path::Path::new(path);
    let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("tables");
    let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("csv");
    p.with_file_name(format!("{stem}_{id}.{ext}"))
        .to_string_lossy()
        .into_owned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_tables = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    let stream = args.iter().any(|a| a == "--stream");
    let no_records = args.iter().any(|a| a == "--no-records");
    // A value-taking flag's argument must exist and not itself be a flag —
    // `--csv --json` silently writing a file named "--json" is worse than
    // exiting.
    let flag_value = |flag: &str| -> Option<&str> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v),
            _ => {
                eprintln!("{flag} requires a value");
                usage();
            }
        }
    };
    let out_path = flag_value("--out")
        .unwrap_or("LAB_results.json")
        .to_string();
    let csv_path = flag_value("--csv").map(str::to_string);
    let records_path = flag_value("--records").map(str::to_string);
    let chunk = flag_value("--chunk").map_or(256u64, |v| match v.parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--chunk requires a positive integer, got {v}");
            usage();
        }
    });
    if !stream && (records_path.is_some() || args.iter().any(|a| a == "--chunk")) {
        eprintln!("--records/--chunk only apply to --stream runs");
        usage();
    }
    // A scoped pool for this run: nothing process-global changes, so
    // concurrent labs (or a test harness running labs in parallel) each
    // keep their own width.
    let pool = flag_value("--threads").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 1 => ThreadPool::new(n),
        _ => {
            eprintln!("--threads requires a positive integer, got {v}");
            usage();
        }
    });
    let mut skip_next = false;
    let mut inputs: Vec<String> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if matches!(
            a.as_str(),
            "--out" | "--threads" | "--csv" | "--records" | "--chunk"
        ) {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            if !matches!(
                a.as_str(),
                "--quick" | "--full" | "--json" | "--all" | "--stream" | "--no-records"
            ) {
                eprintln!("unknown flag {a}");
                usage();
            }
            continue;
        }
        inputs.push(a.clone());
    }
    if all {
        inputs.extend(registry::ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    if inputs.is_empty() {
        usage();
    }

    // Resolve every input to specs before running anything, so a typo
    // fails fast instead of after a long sweep.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for input in &inputs {
        if let Some(built_in) = registry::specs(&input.to_lowercase(), quick) {
            specs.extend(built_in);
            continue;
        }
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{input}: not a registry id (e1..e11) and unreadable as a file: {e}");
                std::process::exit(2);
            }
        };
        match serde_json::from_str::<ScenarioSpec>(&text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("{input}: invalid ScenarioSpec JSON: {e}");
                std::process::exit(2);
            }
        }
    }

    // One JSONL log across every scenario of the run, written as records
    // arrive (unit order within each scenario, scenarios in CLI order).
    let mut jsonl = records_path.as_ref().map(|path| {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        JsonlWriter::new(BufWriter::new(file))
    });

    let mut report = LabReport {
        schema: "radio-lab/v2".to_string(),
        quick,
        streamed: stream,
        wall_s_total: 0.0,
        scenarios: Vec::new(),
    };
    let mut csv_tables: Vec<(String, String)> = Vec::new();
    for spec in specs {
        eprintln!(
            "running {} ({} units{}{})...",
            spec.id,
            spec.grid_size(),
            if quick { ", quick" } else { "" },
            if stream {
                format!(", streaming in chunks of {chunk}")
            } else {
                String::new()
            }
        );
        let (table, units, records, wall_s, run) = if stream {
            // The streamed table only matches the non-streamed one when the
            // spec renders through the aggregate fold already: Aggregate,
            // or Generic with an explicit block. Everything else — bespoke
            // E* layouts *and* raw Generic (one row per record) — falls
            // back to the default aggregate grouping, so say so.
            let streams_natively = matches!(spec.render, RenderKind::Aggregate)
                || (matches!(spec.render, RenderKind::Generic) && spec.aggregate.is_some());
            if !streams_natively {
                // The sink still honors an explicit aggregate block even
                // when the render kind is bespoke — say which grouping
                // actually renders.
                eprintln!(
                    "{}: --stream renders the {} instead of the {:?} layout (it needs \
                     materialized records)",
                    spec.id,
                    if spec.aggregate.is_some() {
                        "spec's aggregate block"
                    } else {
                        "default aggregate summary"
                    },
                    spec.render
                );
            }
            let mut agg = StreamAggregate::for_spec(&spec);
            let stats = {
                let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
                if let Some(w) = jsonl.as_mut() {
                    sinks.push(w);
                }
                let result = match &pool {
                    Some(p) => p.install(|| run_spec_streaming(&spec, chunk, &mut sinks)),
                    None => run_spec_streaming(&spec, chunk, &mut sinks),
                };
                result.unwrap_or_else(|e| {
                    eprintln!("{}: streaming sink error: {e}", spec.id);
                    std::process::exit(1);
                })
            };
            let table = agg.table(&spec);
            (table, stats.units, stats.records, stats.wall_s, None)
        } else {
            let run = match &pool {
                Some(p) => p.install(|| run_spec(&spec)),
                None => run_spec(&spec),
            };
            let table = render(&spec, &run);
            let units = run.units.len() as u64;
            let records = run.records.iter().map(|r| r.len() as u64).sum();
            let wall_s = run.wall_s;
            let kept = (!no_records).then_some(run);
            (table, units, records, wall_s, kept)
        };
        if csv_path.is_some() {
            csv_tables.push((table.id.clone(), table.to_csv()));
        }
        if json_tables {
            println!(
                "{}",
                serde_json::to_string(&table).expect("table serializes")
            );
        } else {
            println!("{}", table.render());
        }
        eprintln!("{}: {:.3}s", spec.id, wall_s);
        report.wall_s_total += wall_s;
        report.scenarios.push(LabScenario {
            spec,
            tables: vec![table],
            units,
            records,
            wall_s,
            run,
        });
    }
    if let Some(w) = jsonl {
        w.finish().unwrap_or_else(|e| {
            eprintln!(
                "cannot flush {}: {e}",
                records_path.as_deref().unwrap_or("records")
            );
            std::process::exit(1);
        });
        eprintln!("wrote {}", records_path.as_deref().unwrap_or("records"));
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &csv_path {
        // One table → exactly the requested path; several tables get the
        // table id spliced in before the extension (one well-formed CSV
        // per file — concatenating tables with different headers would
        // parse as a ragged mess). Duplicate ids uniquify instead of
        // clobbering.
        let ids: Vec<String> = csv_tables.iter().map(|(id, _)| id.clone()).collect();
        for ((target, renamed), (id, csv)) in csv_targets(path, &ids).iter().zip(&csv_tables) {
            if *renamed {
                eprintln!(
                    "warning: CSV target for table {id} collides with an earlier table; \
                     writing {target} instead"
                );
            }
            std::fs::write(target, csv).unwrap_or_else(|e| {
                eprintln!("cannot write {target}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {target}");
        }
    }
    eprintln!(
        "wrote {out_path} ({} scenarios, {:.3}s total)",
        report.scenarios.len(),
        report.wall_s_total
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_table_uses_the_requested_path() {
        assert_eq!(
            csv_targets("out/results.csv", &ids(&["E1"])),
            vec![("out/results.csv".to_string(), false)]
        );
    }

    #[test]
    fn several_tables_splice_ids_before_the_extension() {
        assert_eq!(
            csv_targets("results.csv", &ids(&["E1", "E5a"])),
            vec![
                ("results_E1.csv".to_string(), false),
                ("results_E5a.csv".to_string(), false),
            ]
        );
    }

    #[test]
    fn duplicate_ids_uniquify_instead_of_clobbering() {
        // `radio-lab e1 e1 --csv out.csv` — the second E1 must not
        // overwrite the first.
        assert_eq!(
            csv_targets("out.csv", &ids(&["E1", "E1", "E1"])),
            vec![
                ("out_E1.csv".to_string(), false),
                ("out_E1_2.csv".to_string(), true),
                ("out_E1_3.csv".to_string(), true),
            ]
        );
    }

    #[test]
    fn uniquified_names_dodge_natural_names_too() {
        // A pathological id that matches another table's uniquified name:
        // the suffix search must keep probing.
        assert_eq!(
            csv_targets("t.csv", &ids(&["E1", "E1", "E1_2"])),
            vec![
                ("t_E1.csv".to_string(), false),
                ("t_E1_2.csv".to_string(), true),
                ("t_E1_2_2.csv".to_string(), true),
            ]
        );
    }
}
