//! CLI harness regenerating the experiment tables.
//!
//! Usage:
//!
//! ```text
//! experiments --all            # every experiment, full scale
//! experiments --all --quick    # every experiment, smoke-test scale
//! experiments e1 e5 --json     # selected experiments, JSON output
//! ```

#![forbid(unsafe_code)]

use radio_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    if all || ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id} (expected e1..e11)");
            std::process::exit(2);
        }
    }
    for id in &ids {
        eprintln!("running {id}{}...", if quick { " (quick)" } else { "" });
        let tables = run_experiment(id, quick);
        for t in tables {
            if json {
                println!("{}", serde_json::to_string(&t).expect("serializable table"));
            } else {
                println!("{}", t.render());
            }
        }
    }
}
