//! Engine micro-benchmark workloads and the `BENCH_engine.json` report.
//!
//! The simulator's `Engine::step()` is the hot path under every experiment
//! table, so its throughput is tracked PR-over-PR in a machine-readable
//! artifact. Five canonical topologies cover the engine's regimes:
//!
//! * **clique-64 / clique-256 / clique-1024** — dense reliable layer,
//!   every broadcast reaches everyone (scatter cost is maximal per
//!   broadcaster). Word-packed delivery shines here, and the advantage
//!   grows with `n`: the scalar scatter is `O(B·n)` per round while the
//!   bitset passes are `O(B·n/64)`, against shared per-node decide/receive
//!   costs that are identical across tiers. The 1024 clique carries the
//!   ≥3× bitset/scratch acceptance ratio; the smaller cliques document
//!   where the crossover sits;
//! * **rgg** — the random-geometric dual graph the paper's experiments
//!   use, with a gray zone of unreliable links and a randomized adversary
//!   (the acceptance workload at `n = 256`);
//! * **sparse** — a path with unreliable chords under the adaptive
//!   [`Collider`](radio_sim::adversary::Collider), the cheap-per-round /
//!   adversary-heavy regime.
//!
//! Each workload runs on **all four engine tiers** — the scratch-buffer
//! engine ([`Engine::step`]), the seed implementation kept as
//! [`Engine::step_legacy`], the word-packed [`Engine::step_bitset`], and
//! the struct-of-arrays multi-trial [`BatchedEngine`] stepping
//! [`BATCHED_TRIALS`] independent trials per round over shared bitmask
//! rows — so every generated `BENCH_engine.json` (schema `bench-engine/v3`)
//! records the baseline, the scratch/legacy speedup, the bitset/scratch
//! speedup, and the batched/bitset speedup in the same artifact. The
//! batched column's throughput is **trial-rounds per second** (`B` trials
//! advancing one round counts `B`), so the batched/bitset ratio reads
//! directly as the per-trial amortization factor.
//!
//! [`Engine::step`]: radio_sim::Engine::step
//! [`Engine::step_legacy`]: radio_sim::Engine::step_legacy
//! [`Engine::step_bitset`]: radio_sim::Engine::step_bitset
//! [`BatchedEngine`]: radio_sim::BatchedEngine

use radio_sim::adversary::{Collider, RandomUnreliable};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{
    Action, BatchedEngine, Context, DualGraph, Engine, EngineBuilder, Graph, Process, StepMode,
};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A light randomized chatterer: broadcasts its id with probability `p`
/// each round, never terminates — so measured cost is the engine's, not an
/// algorithm's.
pub struct Chatter {
    /// 53-bit acceptance threshold for the broadcast coin (hoisted out of
    /// the per-round decision so the engine, not float conversion, is what
    /// the benchmark measures).
    threshold: u64,
    heard: u64,
}

impl Chatter {
    /// A chatterer broadcasting with probability `p` per round.
    pub fn new(p: f64) -> Self {
        Chatter {
            threshold: (p * (1u64 << 53) as f64) as u64,
            heard: 0,
        }
    }

    /// Messages received so far (keeps `receive` from being optimized out).
    pub fn heard(&self) -> u64 {
        self.heard
    }
}

impl Process for Chatter {
    type Msg = u32;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        use rand::RngCore;
        if (ctx.rng.next_u64() >> 11) < self.threshold {
            Action::Broadcast(ctx.my_id.get())
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
        if msg.is_some() {
            self.heard += 1;
        }
    }

    fn output(&self) -> Option<bool> {
        None
    }
}

/// Names of the canonical workloads, in report order.
pub const WORKLOADS: [&str; 5] = [
    "clique-64",
    "clique-256",
    "clique-1024",
    "rgg-256",
    "sparse-256",
];

/// Broadcast probability used by every workload's [`Chatter`] processes
/// (MIS-style sparse contention).
pub const CHATTER_P: f64 = 0.05;

/// Trials per batch in the batched-tier measurement (`B`). Large enough
/// to amortize each broadcaster's row fetch across a cache-hot stripe
/// walk, small enough that the whole batch's planes stay resident.
pub const BATCHED_TRIALS: usize = 32;

/// Builds a canonical workload network by name.
///
/// # Panics
///
/// Panics on an unknown name (callers pick from [`WORKLOADS`]).
pub fn workload_net(name: &str) -> DualGraph {
    match name {
        "clique-64" => DualGraph::classic(Graph::complete(64)).expect("clique is connected"),
        "clique-256" => DualGraph::classic(Graph::complete(256)).expect("clique is connected"),
        "clique-1024" => DualGraph::classic(Graph::complete(1024)).expect("clique is connected"),
        "rgg-256" => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
            random_geometric(&RandomGeometricConfig::dense(256), &mut rng)
                .expect("dense configuration connects")
        }
        "sparse-256" => {
            let n = 256;
            let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).expect("path");
            let mut gp = g.clone();
            for i in 0..n - 2 {
                gp.add_edge(i, i + 2);
            }
            DualGraph::new(g, gp).expect("valid dual graph")
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Spawns the workload's engine (Chatter processes + the workload's
/// adversary), same construction for every engine implementation.
pub fn workload_engine(name: &str) -> Engine<Chatter> {
    workload_engine_mode(name, StepMode::Auto)
}

/// [`workload_engine`] with a pinned delivery tier — the bitset
/// measurements force [`StepMode::Bitset`] so the bitmask rows are built
/// at spawn (outside the measured steady state) on every workload,
/// including the sparse ones Auto would route to the scalar tier.
pub fn workload_engine_mode(name: &str, mode: StepMode) -> Engine<Chatter> {
    workload_engine_seeded(name, mode, 7)
}

/// [`workload_engine_mode`] with an explicit engine seed — the batched
/// measurement gives each of its `B` trials a distinct seed (`7 + trial`),
/// matching how a sweep's trial seeds differ.
pub fn workload_engine_seeded(name: &str, mode: StepMode, seed: u64) -> Engine<Chatter> {
    let net = workload_net(name);
    let builder = EngineBuilder::new(net).seed(seed).step_mode(mode);
    let builder = match name {
        "sparse-256" => builder.adversary(Collider),
        _ => builder.adversary(RandomUnreliable::new(0.5, 11)),
    };
    builder
        .spawn(|_| Chatter::new(CHATTER_P))
        .expect("workload engines assemble")
}

/// Builds the batched-tier measurement unit for a workload: a
/// [`BatchedEngine`] of [`BATCHED_TRIALS`] trials with distinct seeds,
/// every trial pinned to the bitset phase semantics over one shared set
/// of bitmask rows.
pub fn workload_batched_engine(name: &str) -> BatchedEngine<Chatter> {
    BatchedEngine::new(
        (0..BATCHED_TRIALS)
            .map(|t| workload_engine_seeded(name, StepMode::Bitset, 7 + t as u64))
            .collect(),
    )
}

/// One measured engine configuration within a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineMeasurement {
    /// `"scratch"` (`step()`), `"legacy"` (seed implementation),
    /// `"bitset"` (word-packed `step_bitset()`), or `"batched"`
    /// ([`BatchedEngine`] lockstep; rounds and rates count trial-rounds).
    pub engine: String,
    /// Rounds executed during measurement (trial-rounds for `"batched"`).
    pub rounds: u64,
    /// Wall time for those rounds, seconds.
    pub wall_s: f64,
    /// Rounds per second.
    pub rounds_per_sec: f64,
    /// Steady-state heap allocations per round (`None` when the harness
    /// has no counting allocator installed).
    pub allocs_per_round: Option<f64>,
    /// Steady-state heap bytes allocated per round.
    pub bytes_per_round: Option<f64>,
}

/// Benchmark results of one workload: every engine tier plus the ratios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Workload name from [`WORKLOADS`].
    pub name: String,
    /// Network size.
    pub n: usize,
    /// Measurements (scratch, then legacy, then bitset, then batched).
    pub engines: Vec<EngineMeasurement>,
    /// `rounds_per_sec(scratch) / rounds_per_sec(legacy)`.
    pub speedup: f64,
    /// `rounds_per_sec(bitset) / rounds_per_sec(scratch)`. `None` in
    /// schema-v1 documents (they predate the bitset tier and parse
    /// unchanged).
    pub bitset_speedup: Option<f64>,
    /// `trial_rounds_per_sec(batched) / rounds_per_sec(bitset)` at `B =`
    /// [`BATCHED_TRIALS`] — the per-trial amortization of the batched
    /// multi-trial tier. `None` in schema-v1/v2 documents (they predate
    /// the batched tier and parse unchanged).
    pub batched_speedup: Option<f64>,
}

/// The whole `BENCH_engine.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Per-workload results.
    pub workloads: Vec<WorkloadReport>,
}

/// Steady-state allocation statistics observed around a measured run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocDelta {
    /// Heap allocations during the measured rounds.
    pub allocs: u64,
    /// Heap bytes requested during the measured rounds.
    pub bytes: u64,
}

/// Measures every engine tier on one workload, **interleaved**: after a
/// warmup on each, scratch, legacy, bitset, and batched execute
/// alternating batches of rounds, so machine-load drift during the
/// measurement hits every tier equally and cancels out of the speedup
/// ratios. `alloc_probe` (when provided) samples a monotone
/// `(allocs, bytes)` counter around each batch; the summed deltas give
/// exact steady-state allocations. The bitset and batched engines are
/// spawned with their rows pre-built, outside the probes. The batched
/// unit steps [`BATCHED_TRIALS`] trials per round and accounts in
/// trial-rounds, so its per-round alloc statistics are per *trial-round*
/// too (zero stays zero either way).
pub fn measure_workload(
    name: &str,
    rounds: u64,
    alloc_probe: Option<&dyn Fn() -> (u64, u64)>,
) -> WorkloadReport {
    const LABELS: [&str; 4] = ["scratch", "legacy", "bitset", "batched"];
    let warmup = (rounds / 10).max(16);
    let batches = 16u64;
    let batch = (rounds / batches).max(1);
    let mut engines_rt = [
        workload_engine(name),
        workload_engine(name),
        workload_engine_mode(name, StepMode::Bitset),
    ];
    let mut batched_rt = workload_batched_engine(name);
    let step_one = |engine: &mut Engine<Chatter>, which: usize| match which {
        0 => engine.step(),
        1 => engine.step_legacy(),
        _ => engine.step_bitset(),
    };
    for _ in 0..warmup {
        for (which, engine) in engines_rt.iter_mut().enumerate() {
            step_one(engine, which);
        }
        batched_rt.step();
    }
    let mut wall = [0.0f64; 4];
    let mut executed = [0u64; 4];
    let mut alloc = [AllocDelta::default(); 4];
    for _ in 0..batches {
        for (which, engine) in engines_rt.iter_mut().enumerate() {
            let before = alloc_probe.map(|p| p());
            let start = Instant::now();
            for _ in 0..batch {
                step_one(engine, which);
            }
            wall[which] += start.elapsed().as_secs_f64();
            executed[which] += batch;
            if let (Some(probe), Some((a0, b0))) = (alloc_probe, before) {
                let (a1, b1) = probe();
                alloc[which].allocs += a1 - a0;
                alloc[which].bytes += b1 - b0;
            }
        }
        let before = alloc_probe.map(|p| p());
        let start = Instant::now();
        for _ in 0..batch {
            batched_rt.step();
        }
        wall[3] += start.elapsed().as_secs_f64();
        executed[3] += batch * BATCHED_TRIALS as u64;
        if let (Some(probe), Some((a0, b0))) = (alloc_probe, before) {
            let (a1, b1) = probe();
            alloc[3].allocs += a1 - a0;
            alloc[3].bytes += b1 - b0;
        }
    }
    // Defeat dead-code elimination of the whole run.
    let heard: u64 = engines_rt
        .iter()
        .chain(batched_rt.engines())
        .flat_map(|e| e.procs())
        .map(Chatter::heard)
        .sum();
    std::hint::black_box(heard);
    let engines: Vec<EngineMeasurement> = LABELS
        .into_iter()
        .enumerate()
        .map(|(which, label)| EngineMeasurement {
            engine: label.to_string(),
            rounds: executed[which],
            wall_s: wall[which],
            rounds_per_sec: executed[which] as f64 / wall[which].max(1e-12),
            allocs_per_round: alloc_probe
                .map(|_| alloc[which].allocs as f64 / executed[which] as f64),
            bytes_per_round: alloc_probe
                .map(|_| alloc[which].bytes as f64 / executed[which] as f64),
        })
        .collect();
    let speedup = engines[0].rounds_per_sec / engines[1].rounds_per_sec.max(1e-12);
    let bitset_speedup = engines[2].rounds_per_sec / engines[0].rounds_per_sec.max(1e-12);
    let batched_speedup = engines[3].rounds_per_sec / engines[2].rounds_per_sec.max(1e-12);
    WorkloadReport {
        name: name.to_string(),
        n: engines_rt[0].net().n(),
        engines,
        speedup,
        bitset_speedup: Some(bitset_speedup),
        batched_speedup: Some(batched_speedup),
    }
}

/// Runs every workload on every engine tier and assembles the report.
pub fn run_engine_bench(
    rounds: u64,
    alloc_probe: Option<&dyn Fn() -> (u64, u64)>,
) -> EngineBenchReport {
    let workloads = WORKLOADS
        .iter()
        .map(|&name| measure_workload(name, rounds, alloc_probe))
        .collect();
    EngineBenchReport {
        schema: crate::schemas::BENCH_ENGINE_SCHEMA.to_string(),
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_assemble_and_step() {
        for name in WORKLOADS {
            let mut e = workload_engine(name);
            e.run_rounds(8);
            assert_eq!(e.round(), 8, "{name}");
            assert!(e.metrics().broadcasts > 0, "{name}: chatters must chat");
        }
    }

    #[test]
    fn report_serializes() {
        let report = run_engine_bench(16, None);
        assert_eq!(report.workloads.len(), WORKLOADS.len());
        assert_eq!(report.schema, "bench-engine/v3");
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: EngineBenchReport = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back.workloads.len(), report.workloads.len());
        assert!(back.workloads.iter().all(|w| w.speedup > 0.0));
        // v3: every workload measures all four tiers and both ratios.
        for w in &back.workloads {
            assert_eq!(w.engines.len(), 4, "{}", w.name);
            assert_eq!(w.engines[2].engine, "bitset");
            assert_eq!(w.engines[3].engine, "batched");
            // Batched accounts in trial-rounds: B trials advance per step.
            assert_eq!(
                w.engines[3].rounds,
                w.engines[2].rounds * BATCHED_TRIALS as u64,
                "{}",
                w.name
            );
            assert!(w.bitset_speedup.expect("v3 carries the ratio") > 0.0);
            assert!(w.batched_speedup.expect("v3 carries the ratio") > 0.0);
        }
    }

    #[test]
    fn v1_workloads_parse_without_the_bitset_column() {
        // Pre-bitset baselines (schema v1) must keep parsing for the
        // regression gate's delta comparison.
        let v1 = r#"{"name":"clique-64","n":64,"engines":[],"speedup":3.0}"#;
        let w: WorkloadReport = serde_json::from_str(v1).expect("v1 row parses");
        assert_eq!(w.bitset_speedup, None);
        assert_eq!(w.batched_speedup, None);
    }

    #[test]
    fn v2_workloads_parse_without_the_batched_column() {
        // Pre-batched baselines (schema v2) must keep parsing so the gate
        // can diff a v3 run against them (batched ratio simply ungated).
        let v2 = r#"{"name":"clique-64","n":64,"engines":[],"speedup":3.0,"bitset_speedup":5.5}"#;
        let w: WorkloadReport = serde_json::from_str(v2).expect("v2 row parses");
        assert_eq!(w.bitset_speedup, Some(5.5));
        assert_eq!(w.batched_speedup, None);
    }

    #[test]
    fn batched_workload_unit_is_bit_identical_to_solo_trials() {
        // The bench's batched unit must measure the same work the solo
        // bitset unit does: trial t of the batch equals a solo engine on
        // seed 7 + t.
        let mut batched = workload_batched_engine("rgg-256");
        batched.run_rounds_each(24);
        for t in 0..BATCHED_TRIALS {
            let mut solo = workload_engine_seeded("rgg-256", StepMode::Bitset, 7 + t as u64);
            solo.run_rounds(24);
            assert_eq!(
                batched.engines()[t].metrics(),
                solo.metrics(),
                "trial {t} diverged from its solo run"
            );
        }
    }
}
