//! The worker process: lease a shard, execute it through the
//! checkpointed driver, publish the partial — repeat until nothing in
//! the spool is active.
//!
//! Workers are deliberately stateless between shards: everything they
//! know comes from the spool ([`super::spool`]), so a worker can crash
//! at any instant and a replacement (or a takeover by a peer) continues
//! from the dead worker's own checkpoint. The executing core is the
//! same [`run_slice_checkpointed`] driver the single-process
//! `--checkpoint` path uses; the service wraps it with a chunk-boundary
//! hook that (in order) fires any scheduled faults, then heartbeats and
//! **fences**: if the shard's claim changed hands, the worker abandons
//! the shard mid-flight rather than publish over the new owner.
//!
//! Outcomes per leased shard:
//!
//! * **published** — the slice finished; its record log was fsynced and
//!   its [`ShardPartial`] landed durably; the claim is released.
//! * **abandoned** — the fence saw a takeover; nothing is written, the
//!   claim (now someone else's) is left alone, and no failure is
//!   counted — the takeover's attempt owns the shard now.
//! * **failed** — a sink/hook error; a durable [`FailNote`] marker
//!   lands (bounded retry: markers count toward `max_retries` and gate
//!   backoff) and the claim is released.

use super::fault::{FaultAction, FaultEvent, FaultPlan};
use super::spool::{
    heartbeat_and_fence, list_specs, release_claim, scan_spec, try_acquire_claim, Claim, FailNote,
    ShardState, SpecDir, SpecPhase, SpoolManifest,
};
use crate::checkpoint::{
    run_slice_checkpointed, shard_range, spec_fingerprint, truncate_jsonl_to_lines, ShardPartial,
    ShardRef, SliceJob, SweepCheckpoint, PARTIAL_SCHEMA,
};
use crate::parallel::ThreadPool;
use crate::scenario::ScenarioSpec;
use crate::sink::{FaultTrip, JsonlWriter, SinkFile, StreamAggregate};
use std::cell::Cell;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::time::{Duration, SystemTime};

/// How a worker runs: where the spool is, who the worker is, how often
/// it polls, and which faults (if any) it injects.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The spool directory shared with the coordinator.
    pub spool: PathBuf,
    /// This worker's id — the `owner` its claims carry.
    pub worker_id: String,
    /// Idle poll interval (nothing leasable right now).
    pub poll_ms: u64,
    /// Scoped thread-pool width for shard execution (`None` = the
    /// process-global pool).
    pub threads: Option<usize>,
    /// The deterministic fault schedule, if chaos is on.
    pub fault_plan: Option<FaultPlan>,
}

/// What a worker did before exiting cleanly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shards published.
    pub published: u64,
    /// Attempts abandoned at a fence (taken over by a peer).
    pub abandoned: u64,
    /// Attempts that failed (left a marker).
    pub failed: u64,
}

/// How one leased shard attempt ended (see the module docs).
enum ShardOutcome {
    Published,
    Abandoned,
    Failed,
}

enum AttemptError {
    /// The fence saw a takeover — not a failure, no marker.
    LeaseLost,
    /// A genuine attempt error — marker, release, bounded retry.
    Fail(io::Error),
}

/// Runs the worker loop until no spec in the spool is active: scan the
/// queue in order, lease the first available shard (open, or expired
/// for takeover), execute it, repeat; sleep `poll_ms` when everything
/// is leased out or backing off. Exits when every spec is terminal.
///
/// # Errors
///
/// Surfaces spool-level I/O failures (the shared directory itself
/// misbehaving) — per-attempt errors are recorded as failure markers
/// instead, and the coordinator's respawn budget covers worker exits.
pub fn run_worker(cfg: &WorkerConfig) -> io::Result<WorkerReport> {
    let pool = cfg.threads.map(ThreadPool::new);
    let mut report = WorkerReport::default();
    loop {
        let specs = list_specs(&cfg.spool)?;
        let mut any_active = false;
        let mut leased: Option<(SpecDir, SpoolManifest, u64, Claim)> = None;
        for sd in &specs {
            let manifest = sd.load_manifest()?;
            let scan = scan_spec(sd, &manifest, SystemTime::now())?;
            if scan.phase != SpecPhase::Active {
                continue;
            }
            any_active = true;
            if let Some((shard, claim)) = try_lease(sd, &scan, &cfg.worker_id)? {
                leased = Some((sd.clone(), manifest, shard, claim));
                break;
            }
        }
        match leased {
            Some((sd, manifest, shard, claim)) => {
                match run_shard(cfg, &sd, &manifest, shard, claim, pool.as_ref())? {
                    ShardOutcome::Published => report.published += 1,
                    ShardOutcome::Abandoned => report.abandoned += 1,
                    ShardOutcome::Failed => report.failed += 1,
                }
            }
            None if any_active => std::thread::sleep(Duration::from_millis(cfg.poll_ms)),
            None => break,
        }
    }
    Ok(report)
}

/// Leases the first available shard of a scanned spec. Open shards are
/// acquired at their next attempt number; an expired lease is taken
/// over by acquiring `attempt + 1`'s claim file. Both paths are the
/// same create-exclusive `hard_link` — exactly one worker ever owns a
/// given attempt, so racing workers can't both run (and stomp) the
/// shard's shared checkpoint and record log. Losing the race is fine:
/// the next scan sees the winner's claim.
fn try_lease(
    sd: &SpecDir,
    scan: &super::spool::SpecScan,
    worker_id: &str,
) -> io::Result<Option<(u64, Claim)>> {
    for view in &scan.shards {
        match &view.state {
            ShardState::Open { next_attempt, .. } => {
                let claim = Claim::new(worker_id, *next_attempt);
                if try_acquire_claim(&sd.claim_path(view.index, *next_attempt), &claim)? {
                    return Ok(Some((view.index, claim)));
                }
            }
            ShardState::Expired { owner, attempt, .. } => {
                let claim = Claim::new(worker_id, attempt + 1);
                if try_acquire_claim(&sd.claim_path(view.index, attempt + 1), &claim)? {
                    eprintln!(
                        "[{worker_id}] taking over shard {} of {} (lease of {owner} attempt \
                         {attempt} expired)",
                        view.index,
                        sd.name()
                    );
                    return Ok(Some((view.index, claim)));
                }
            }
            _ => {}
        }
    }
    Ok(None)
}

/// Runs one leased shard end to end and settles the claim.
fn run_shard(
    cfg: &WorkerConfig,
    sd: &SpecDir,
    manifest: &SpoolManifest,
    shard: u64,
    claim: Claim,
    pool: Option<&ThreadPool>,
) -> io::Result<ShardOutcome> {
    let spec = sd.load_spec()?;
    if spec_fingerprint(&spec) != manifest.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: spec.json fingerprint does not match the manifest — the spool was edited \
                 after submission",
                sd.name()
            ),
        ));
    }
    eprintln!(
        "[{}] leased shard {shard} of {} (attempt {})",
        cfg.worker_id,
        sd.name(),
        claim.attempt
    );
    match execute_attempt(cfg, sd, manifest, &spec, shard, &claim, pool) {
        Ok(()) => {
            release_claim(&sd.claim_path(shard, claim.attempt))?;
            eprintln!(
                "[{}] published shard {shard} of {}",
                cfg.worker_id,
                sd.name()
            );
            Ok(ShardOutcome::Published)
        }
        Err(AttemptError::LeaseLost) => {
            // Our attempt's claim file is ours alone — releasing it just
            // tidies the ledger; the takeover's higher-numbered claim is
            // untouched and stays the live one.
            release_claim(&sd.claim_path(shard, claim.attempt))?;
            eprintln!(
                "[{}] abandoning shard {shard} of {} (lease taken over)",
                cfg.worker_id,
                sd.name()
            );
            Ok(ShardOutcome::Abandoned)
        }
        Err(AttemptError::Fail(e)) => {
            eprintln!(
                "[{}] shard {shard} of {} attempt {} failed: {e}",
                cfg.worker_id,
                sd.name(),
                claim.attempt
            );
            let note = FailNote {
                worker: cfg.worker_id.clone(),
                attempt: claim.attempt,
                error: e.to_string(),
            };
            let json = crate::checkpoint::json_pretty(&note)?;
            crate::checkpoint::write_durable_atomic(
                &sd.fail_path(shard, claim.attempt),
                json.as_bytes(),
            )?;
            release_claim(&sd.claim_path(shard, claim.attempt))?;
            Ok(ShardOutcome::Failed)
        }
    }
}

/// One attempt at a leased shard: resume from the shard's checkpoint if
/// one exists (truncating a torn record-log tail), execute the
/// remaining slice with the heartbeat/fence/fault hook at every chunk
/// boundary, fsync the log, and publish the partial.
fn execute_attempt(
    cfg: &WorkerConfig,
    sd: &SpecDir,
    manifest: &SpoolManifest,
    spec: &ScenarioSpec,
    shard: u64,
    claim: &Claim,
    pool: Option<&ThreadPool>,
) -> Result<(), AttemptError> {
    let sref = ShardRef {
        index: shard,
        count: manifest.shards,
    };
    let total = spec.grid_size() as u64;
    let bounds = shard_range(total, sref);
    let ckpt_path = sd.checkpoint_path(shard);
    let jsonl_path = sd.jsonl_path(shard);
    let fail = AttemptError::Fail;

    // A checkpoint left by a crashed attempt resumes; a corrupt one is
    // discarded (the attempt restarts the slice from scratch — correct,
    // just slower); a mismatched one is a real error.
    let cp = match SweepCheckpoint::load(&ckpt_path) {
        Ok(cp) => {
            cp.validate(spec, Some(sref), &bounds, manifest.records)
                .map_err(|e| fail(io::Error::new(io::ErrorKind::InvalidData, e)))?;
            Some(cp)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!(
                "[{}] discarding unreadable checkpoint {}: {e}",
                cfg.worker_id,
                ckpt_path.display()
            );
            let _ = std::fs::remove_file(&ckpt_path);
            None
        }
    };

    let trip = FaultTrip::new();
    let faults: Vec<&FaultEvent> = cfg.fault_plan.as_ref().map_or_else(Vec::new, |p| {
        p.events_for(&cfg.worker_id, &spec.id, shard, claim.attempt)
    });
    // at_chunk == 0 fires before the attempt's first chunk.
    fire_faults(cfg, &faults, 0, &jsonl_path, &trip, manifest.records);

    let (mut agg, mut jsonl, todo_start, base_records, base_wall_s);
    match cp {
        Some(cp) => {
            jsonl = match (cp.jsonl_lines, manifest.records) {
                (Some(lines), true) => {
                    let report = truncate_jsonl_to_lines(&jsonl_path, lines).map_err(fail)?;
                    if report.dropped_bytes > 0 {
                        eprintln!(
                            "[{}] {}: dropped {} byte(s) past the checkpoint ({} complete \
                             line(s){}) — this attempt re-emits them",
                            cfg.worker_id,
                            jsonl_path.display(),
                            report.dropped_bytes,
                            report.dropped_lines,
                            if report.torn_tail {
                                " plus a torn final line"
                            } else {
                                ""
                            }
                        );
                    }
                    let file = std::fs::OpenOptions::new()
                        .append(true)
                        .open(&jsonl_path)
                        .map_err(fail)?;
                    Some(JsonlWriter::resume(
                        BufWriter::new(SinkFile::with_trip(file, trip.clone())),
                        lines,
                    ))
                }
                _ => None,
            };
            agg = StreamAggregate::restore_for_spec(spec, cp.aggregate)
                .map_err(|e| fail(io::Error::new(io::ErrorKind::InvalidData, e)))?;
            todo_start = cp.next_index;
            base_records = cp.records;
            base_wall_s = cp.wall_s;
            eprintln!(
                "[{}] resuming shard {shard} at grid index {todo_start} of {}..{} ({} records \
                 durable)",
                cfg.worker_id, bounds.start, bounds.end, base_records
            );
        }
        None => {
            jsonl = if manifest.records {
                let file = std::fs::File::create(&jsonl_path).map_err(fail)?;
                Some(JsonlWriter::new(BufWriter::new(SinkFile::with_trip(
                    file,
                    trip.clone(),
                ))))
            } else {
                None
            };
            agg = StreamAggregate::for_spec(spec);
            todo_start = bounds.start;
            base_records = 0;
            base_wall_s = 0.0;
        }
    }

    let lease_lost = Cell::new(false);
    let mut beat = claim.beat;
    let mut hook = |_next_index: u64, chunks_done: u64| -> io::Result<()> {
        fire_faults(
            cfg,
            &faults,
            chunks_done,
            &jsonl_path,
            &trip,
            manifest.records,
        );
        beat += 1;
        let mine = Claim {
            schema: claim.schema.clone(),
            owner: claim.owner.clone(),
            attempt: claim.attempt,
            beat,
        };
        if heartbeat_and_fence(sd, shard, &mine)? {
            Ok(())
        } else {
            lease_lost.set(true);
            Err(io::Error::other("lease lost at fence"))
        }
    };

    let job = SliceJob {
        spec,
        chunk: manifest.chunk,
        todo: todo_start..bounds.end,
        bounds: bounds.clone(),
        shard: Some(sref),
        base_records,
        base_wall_s,
        checkpoint_path: Some(&ckpt_path),
        limit_chunks: None,
        on_chunk: Some(&mut hook),
    };
    let run_slice = || run_slice_checkpointed(job, &mut agg, jsonl.as_mut());
    let run = match pool {
        Some(p) => p.install(run_slice),
        None => run_slice(),
    }
    .map_err(|e| {
        if lease_lost.get() {
            AttemptError::LeaseLost
        } else {
            AttemptError::Fail(e)
        }
    })?;

    // The partial must never reference record-log lines that could
    // vanish in a power loss: flush + fsync before publishing.
    let records_path = match jsonl {
        Some(mut log) => {
            log.sync_data().map_err(fail)?;
            Some(jsonl_path.to_string_lossy().into_owned())
        }
        None => None,
    };
    let partial = ShardPartial {
        schema: PARTIAL_SCHEMA.to_string(),
        fingerprint: manifest.fingerprint.clone(),
        shard: sref,
        start: bounds.start,
        end: bounds.end,
        records: run.records,
        wall_s: run.wall_s,
        records_path,
        spec: spec.clone(),
        aggregate: agg.snapshot(),
    };
    partial.save(&sd.partial_path(shard)).map_err(fail)?;
    Ok(())
}

/// Fires every fault scheduled for this boundary, in plan order. Kills
/// never return.
fn fire_faults(
    cfg: &WorkerConfig,
    faults: &[&FaultEvent],
    chunks_done: u64,
    jsonl_path: &std::path::Path,
    trip: &FaultTrip,
    records: bool,
) {
    for ev in faults.iter().filter(|e| e.at_chunk == chunks_done) {
        match &ev.action {
            FaultAction::Kill { tear_jsonl } => {
                if *tear_jsonl && records {
                    // Simulate a crash mid-write: an unterminated JSON
                    // fragment after the last durable line. The buffer
                    // was flushed at this boundary, so the fragment
                    // lands past everything the checkpoint counts.
                    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(jsonl_path) {
                        let _ = f.write_all(b"{\"torn\":");
                        let _ = f.sync_data();
                    }
                }
                eprintln!(
                    "[{}] fault: kill at chunk {chunks_done}{}",
                    cfg.worker_id,
                    if *tear_jsonl {
                        " (tearing record log)"
                    } else {
                        ""
                    }
                );
                std::process::exit(137);
            }
            FaultAction::StallHeartbeat { stall_ms } => {
                eprintln!(
                    "[{}] fault: stalling heartbeat {stall_ms}ms at chunk {chunks_done}",
                    cfg.worker_id
                );
                std::thread::sleep(Duration::from_millis(*stall_ms));
            }
            FaultAction::SinkError => {
                eprintln!(
                    "[{}] fault: arming sink error at chunk {chunks_done}",
                    cfg.worker_id
                );
                trip.arm();
            }
        }
    }
}
