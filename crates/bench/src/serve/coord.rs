//! The coordinator: submit, supervise, merge.
//!
//! `radio-lab serve` owns a sweep end to end: it submits every spec to
//! a fresh spool ([`super::spool::submit_spec`]), spawns the worker
//! fleet (each worker is a `radio-lab work` child process — real
//! process isolation, so a SIGKILL in a chaos test is a *real* kill,
//! not a simulation), and then supervises: every poll tick it reaps
//! exited children, respawns crashed workers while the respawn budget
//! lasts, and rewrites each spec's advisory `status.json`.
//!
//! The coordinator never computes: when every spec is terminal it folds
//! the published partials with the same [`merge_partials`] the
//! `radio-lab merge` command uses, so the final table/CSV/JSONL is
//! byte-identical to the uninterrupted single-process `--stream` run —
//! that identity is the service's whole contract, and the chaos tests
//! `cmp` it. A spec whose shard exhausted its retries degrades instead:
//! its preview table (caption marked
//! [`super::spool::INCOMPLETE_MARKER`]) is reported, no CSV/JSONL
//! artifacts are written for it, and the serve exit code becomes 3.

use super::fault::FAULT_PLAN_ENV;
use super::spool::{
    list_specs, load_partials, merged_preview, scan_spec, spec_status, submit_spec, write_status,
    SpecDir, SpecPhase, SubmitConfig,
};
use crate::checkpoint::merge_partials;
use crate::scenario::ScenarioSpec;
use crate::table::Table;
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, SystemTime};

/// How a serve run is shaped: the spool, the fleet, and the per-spec
/// run parameters every submission fixes.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The spool directory (created; must not already hold a queue).
    pub spool: PathBuf,
    /// Worker processes to spawn.
    pub workers: u64,
    /// Shards per spec.
    pub shards: u64,
    /// Chunk size per shard.
    pub chunk: u64,
    /// Lease deadline in milliseconds.
    pub lease_ms: u64,
    /// Supervision poll interval in milliseconds.
    pub poll_ms: u64,
    /// Failures allowed per shard before it exhausts.
    pub max_retries: u64,
    /// Retry backoff base in milliseconds.
    pub backoff_ms: u64,
    /// Thread-pool width each worker uses (workers are processes, so
    /// the default of 1 keeps an m-worker fleet at m cores).
    pub worker_threads: usize,
    /// Crashed-worker respawns allowed across the whole run.
    pub max_respawns: u64,
    /// Fault-plan file forwarded to workers via [`FAULT_PLAN_ENV`].
    pub fault_plan_path: Option<String>,
    /// Whether shards write record logs (for a merged `--records`).
    pub records: bool,
}

impl ServeConfig {
    /// A config with this module's defaults (2 workers, 1 shard per
    /// worker, chunk 256, 5 s lease, 25 ms poll, 3 retries, 100 ms
    /// backoff base, 1 thread per worker, 4 respawns, no faults, no
    /// record logs).
    pub fn new(spool: PathBuf) -> ServeConfig {
        ServeConfig {
            spool,
            workers: 2,
            shards: 2,
            chunk: 256,
            lease_ms: 5_000,
            poll_ms: 25,
            max_retries: 3,
            backoff_ms: 100,
            worker_threads: 1,
            max_respawns: 4,
            fault_plan_path: None,
            records: false,
        }
    }
}

/// One spec's final standing after the fleet drained the queue.
pub struct SpecOutcome {
    /// The spec, as submitted.
    pub spec: ScenarioSpec,
    /// `Complete` or `Degraded` (never `Active` — the run only ends
    /// when every spec is terminal).
    pub phase: SpecPhase,
    /// The final table (`Complete`: byte-identical to the uninterrupted
    /// run) or the preview (`Degraded`: caption carries the INCOMPLETE
    /// marker). `None` only for a degraded spec with no partials at
    /// all.
    pub table: Option<Table>,
    /// Shard record-log paths in shard order — `Some` only when the
    /// spec completed with record logs enabled (the caller concatenates
    /// them into the merged JSONL).
    pub records_paths: Option<Vec<Option<String>>>,
    /// Grid units covered by the published partials.
    pub units: u64,
    /// Records across the published partials.
    pub records: u64,
    /// Summed shard wall-clock seconds (shards ran concurrently).
    pub wall_s: f64,
    /// Shards published.
    pub shards_done: u64,
    /// Shard count.
    pub shards_total: u64,
}

/// What a serve run produced.
pub struct ServeOutcome {
    /// Per-spec outcomes, in queue order.
    pub specs: Vec<SpecOutcome>,
    /// Whether any spec degraded (the CLI exits 3).
    pub degraded: bool,
    /// Crashed-worker respawns used.
    pub respawns: u64,
}

/// Spawns one worker child. Workers inherit stderr (their progress
/// interleaves with the coordinator's) but write nothing to stdout —
/// stdout is reserved for the final tables, which must stay
/// byte-comparable to the single-process run.
fn spawn_worker(cfg: &ServeConfig, id: &str) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg("work")
        .arg("--spool")
        .arg(&cfg.spool)
        .arg("--worker-id")
        .arg(id)
        .arg("--poll-ms")
        .arg(cfg.poll_ms.to_string())
        .arg("--threads")
        .arg(cfg.worker_threads.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if let Some(plan) = &cfg.fault_plan_path {
        cmd.env(FAULT_PLAN_ENV, plan);
    }
    cmd.spawn()
}

/// Runs a full serve: submit `specs`, spawn the fleet, supervise until
/// every spec is terminal, then merge. See the module docs for the
/// degradation and byte-identity contracts.
///
/// # Errors
///
/// Surfaces spool I/O errors, a non-empty pre-existing spool, and the
/// fleet dying entirely with work remaining and no respawn budget left
/// (otherwise the run would hang forever).
pub fn run_serve(cfg: &ServeConfig, specs: &[ScenarioSpec]) -> io::Result<ServeOutcome> {
    std::fs::create_dir_all(&cfg.spool)?;
    if !list_specs(&cfg.spool)?.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "{}: spool already holds a queue — point --spool at a fresh directory",
                cfg.spool.display()
            ),
        ));
    }
    let submit = SubmitConfig {
        shards: cfg.shards,
        chunk: cfg.chunk,
        lease_ms: cfg.lease_ms,
        max_retries: cfg.max_retries,
        backoff_ms: cfg.backoff_ms,
        records: cfg.records,
    };
    let dirs: Vec<SpecDir> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| submit_spec(&cfg.spool, i as u64, spec, &submit))
        .collect::<io::Result<_>>()?;
    eprintln!(
        "serve: {} spec(s) submitted to {} ({} shards each, chunk {}, lease {}ms)",
        dirs.len(),
        cfg.spool.display(),
        cfg.shards,
        cfg.chunk,
        cfg.lease_ms
    );

    let mut children: Vec<(String, Child)> = Vec::new();
    for k in 0..cfg.workers {
        let id = format!("w{k}");
        children.push((id.clone(), spawn_worker(cfg, &id)?));
    }
    eprintln!("serve: {} worker(s) spawned", children.len());

    let mut next_worker = cfg.workers;
    let mut respawns_left = cfg.max_respawns;
    let mut respawns_used = 0u64;
    let mut last_done: Vec<u64> = vec![u64::MAX; dirs.len()];
    loop {
        // Reap exits. A worker exits cleanly only when every spec is
        // terminal, so any exit while work remains was a crash.
        let mut alive = Vec::new();
        for (id, mut child) in children {
            match child.try_wait()? {
                Some(status) if status.success() => {
                    eprintln!("serve: worker {id} finished");
                }
                Some(status) => {
                    eprintln!("serve: worker {id} died ({status})");
                }
                None => alive.push((id, child)),
            }
        }
        children = alive;

        // Scan, publish status, report shard completions.
        let mut all_terminal = true;
        for (k, sd) in dirs.iter().enumerate() {
            let manifest = sd.load_manifest()?;
            let scan = scan_spec(sd, &manifest, SystemTime::now())?;
            write_status(sd, &spec_status(&manifest, &scan))?;
            let done = scan.done();
            if done != last_done[k] {
                eprintln!(
                    "serve: {}: {done}/{} shard(s) done",
                    manifest.spec_id, manifest.shards
                );
                last_done[k] = done;
            }
            if scan.phase == SpecPhase::Active {
                all_terminal = false;
            }
        }
        if all_terminal {
            break;
        }

        // Keep the fleet at strength while the respawn budget lasts;
        // a fully-dead fleet with no budget would hang forever, so it
        // errors instead.
        while (children.len() as u64) < cfg.workers && respawns_left > 0 {
            let id = format!("w{next_worker}");
            next_worker += 1;
            respawns_left -= 1;
            respawns_used += 1;
            eprintln!("serve: respawning as worker {id} ({respawns_left} respawn(s) left)");
            children.push((id.clone(), spawn_worker(cfg, &id)?));
        }
        if children.is_empty() {
            return Err(io::Error::other(format!(
                "all workers exited with work remaining and the respawn budget ({}) spent — \
                 giving up; the spool at {} keeps all progress",
                cfg.max_respawns,
                cfg.spool.display()
            )));
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }

    // Every spec is terminal: the remaining workers see that and exit
    // on their own within one poll interval.
    for (id, mut child) in children {
        let status = child.wait()?;
        if !status.success() {
            eprintln!("serve: worker {id} died at the finish line ({status})");
        }
    }

    // Merge. Complete specs use the strict merge (byte-identity);
    // degraded specs get the clearly-marked preview.
    let mut outcomes = Vec::with_capacity(dirs.len());
    let mut degraded = false;
    for sd in &dirs {
        let manifest = sd.load_manifest()?;
        let scan = scan_spec(sd, &manifest, SystemTime::now())?;
        write_status(sd, &spec_status(&manifest, &scan))?;
        let spec = sd.load_spec()?;
        let partials = load_partials(sd, &manifest)?;
        let units: u64 = partials.iter().map(|p| p.end - p.start).sum();
        let records: u64 = partials.iter().map(|p| p.records).sum();
        let wall_s: f64 = partials.iter().map(|p| p.wall_s).sum();
        let shards_done = partials.len() as u64;
        let outcome = match scan.phase {
            SpecPhase::Complete => {
                let merged = merge_partials(partials)?;
                let table = merged.agg.table(&merged.spec);
                SpecOutcome {
                    spec,
                    phase: SpecPhase::Complete,
                    table: Some(table),
                    records_paths: manifest.records.then_some(merged.records_paths),
                    units,
                    records,
                    wall_s,
                    shards_done,
                    shards_total: manifest.shards,
                }
            }
            SpecPhase::Degraded => {
                degraded = true;
                eprintln!(
                    "serve: {}: DEGRADED — {shards_done}/{} shard(s) published; the table below \
                     is partial",
                    manifest.spec_id, manifest.shards
                );
                let table = merged_preview(&spec, &partials, manifest.shards)?;
                SpecOutcome {
                    spec,
                    phase: SpecPhase::Degraded,
                    table,
                    records_paths: None,
                    units,
                    records,
                    wall_s,
                    shards_done,
                    shards_total: manifest.shards,
                }
            }
            SpecPhase::Active => unreachable!("the supervision loop only ends on terminal scans"),
        };
        outcomes.push(outcome);
    }
    Ok(ServeOutcome {
        specs: outcomes,
        degraded,
        respawns: respawns_used,
    })
}
