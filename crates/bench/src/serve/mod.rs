//! Fault-tolerant multi-process sweep service.
//!
//! `radio-lab serve` turns the checkpointed sweep driver
//! ([`crate::checkpoint::run_slice_checkpointed`]) into a supervised
//! single-machine service: a coordinator submits specs to a **spool
//! directory**, a fleet of worker *processes* lease shards from it
//! (lease = an atomically-created claim file whose mtime is the
//! heartbeat), and published shard partials are merged in shard order
//! into output byte-identical to the uninterrupted single-process
//! `--stream` run.
//!
//! The layers, bottom up:
//!
//! * [`spool`] — the on-disk coordination protocol: spec queue,
//!   manifests, claims (acquire / heartbeat / fenced takeover), failure
//!   markers, shard state scans, and the advisory `status.json`. Every
//!   cross-process interaction goes through this module, so swapping
//!   the directory for a TCP transport later only replaces this layer.
//! * [`fault`] — the deterministic fault-injection plan (kills, torn
//!   record-log tails, heartbeat stalls, sink I/O errors) workers load
//!   from [`fault::FAULT_PLAN_ENV`].
//! * [`worker`] — the worker loop: scan, lease, run a shard attempt
//!   through the checkpointed driver (heartbeating and checking the
//!   fence at every chunk boundary), publish the partial.
//! * [`coord`] — the coordinator: submit, spawn/supervise/respawn the
//!   fleet, merge (strict byte-identity when complete, clearly-marked
//!   partial preview when degraded).
//! * [`cli`] — the `serve` / `work` / `status` subcommands.

pub mod cli;
pub mod coord;
pub mod fault;
pub mod spool;
pub mod worker;

pub use coord::{run_serve, ServeConfig, ServeOutcome, SpecOutcome};
pub use fault::{FaultAction, FaultEvent, FaultPlan, FAULT_PLAN_ENV};
pub use spool::{SpecPhase, INCOMPLETE_MARKER};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
