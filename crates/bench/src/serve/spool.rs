//! The spool directory: the sweep service's shared-filesystem transport.
//!
//! A spool is a plain directory the coordinator and every worker agree
//! on — the whole coordination protocol is files and atomic renames, so
//! swapping the transport for TCP later only means replacing this
//! module's primitives, not the lease/retry/merge logic above them.
//!
//! # Layout
//!
//! ```text
//! spool/
//!   q0000-E1/                 one submitted spec, in queue order
//!     spec.json               the ScenarioSpec, verbatim
//!     manifest.json           SpoolManifest: fingerprint + run parameters
//!     status.json             SpecStatus: advisory snapshot for pollers
//!     shards/
//!       s0.claim0             attempt 0's lease: Claim JSON, mtime =
//!                             last heartbeat (one claim file per attempt)
//!       s0.ckpt               SweepCheckpoint (radio-lab/checkpoint/v1)
//!       s0.jsonl              the shard's record log (when enabled)
//!       s0.partial            ShardPartial (radio-lab/partial/v1) = done
//!       s0.fail0.json         FailNote: attempt 0 failed (bounded retry)
//! ```
//!
//! # Lease state machine
//!
//! A shard is in exactly one of these states, decided from the files
//! alone (no shared memory, no coordinator round-trip):
//!
//! ```text
//!            acquire (hard-link)          publish s<i>.partial
//!   Open ───────────────────────▶ Leased ─────────────────────▶ Done
//!    ▲  ▲                          │   │
//!    │  │ backoff elapsed          │   │ heartbeat stops ≥ lease_ms
//!    │  │                          │   ▼
//!    │ Backoff ◀── attempt fails   │  Expired ─ takeover (hard-link) ─▶ Leased
//!    │              (FailNote)     │              (claim<attempt+1>)
//!    └─────────────────────────────┘
//!   failures ≥ max_retries ──▶ Exhausted        (terminal, degraded)
//! ```
//!
//! * **Every claim is its own file**, named for its attempt
//!   (`s0.claim0`, `s0.claim1`, …), and every acquisition — a fresh
//!   lease *and* a takeover alike — creates that file with `hard_link`
//!   from a synced temp sibling. The link either creates the entry (we
//!   own the attempt) or fails with `AlreadyExists` (someone else does),
//!   so there is exactly **one winner per attempt number**, with no
//!   locks and no read-check-write window. The highest-numbered claim
//!   is the live one; lower-numbered leftovers are inert.
//! * **Heartbeat** rewrites the worker's own claim file (temp + fsync +
//!   rename): the renamed file's fresh mtime *is* the heartbeat. Workers
//!   refresh at every chunk boundary and **fence** first — if any
//!   higher-attempt claim or failure marker exists, or the partial was
//!   published, the shard was taken over and the worker abandons it
//!   instead of publishing ([`heartbeat_and_fence`]).
//! * **Takeover** is just acquisition of `claim<attempt+1>` once the
//!   highest claim's heartbeat is ≥ `lease_ms` stale. The new owner
//!   resumes from the dead worker's checkpoint and truncates any torn
//!   record-log tail. A not-quite-dead previous owner discovers the new
//!   claim file at its next fence and stands down *before touching the
//!   shared checkpoint or record log again*; because execution is
//!   deterministic, even the worst-case overlap produces identical
//!   bytes. The one requirement: `lease_ms` must exceed the worst-case
//!   chunk wall time, so a live worker is never mistaken for dead.
//! * **Failure** (a sink/hook error, not a crash) writes a durable
//!   `FailNote` marker and releases the claim. Markers both count
//!   failures (≥ `max_retries` ⇒ `Exhausted`) and gate retry by
//!   exponential backoff (`backoff_ms · 2^(failures-1)` since the last
//!   marker). Crashes leave no marker: crash recovery is unbounded (the
//!   coordinator's respawn budget bounds it globally), while *errors*
//!   are bounded per shard.
//!
//! A spec is **Complete** when every shard is `Done`, **Degraded** when
//! every shard is terminal but some are `Exhausted`, and **Active**
//! otherwise. Pollers ([`merged_preview`]) get a table folded from the
//! partials published so far, its caption marked
//! [`INCOMPLETE_MARKER`] until the spec completes.

use crate::checkpoint::{
    spec_fingerprint, sync_parent_dir, write_durable_atomic, ShardPartial, SweepCheckpoint,
};
use crate::scenario::ScenarioSpec;
use crate::sink::StreamAggregate;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Schema id of [`SpoolManifest`] files.
pub use crate::schemas::MANIFEST_SCHEMA;

/// Schema id of [`Claim`] files.
pub use crate::schemas::CLAIM_SCHEMA;

/// Schema id of [`SpecStatus`] documents.
pub use crate::schemas::STATUS_SCHEMA;

/// The marker spliced into a preview table's caption while shards are
/// still missing — "clearly marked incomplete" is part of the
/// degradation contract, so tests match on this literal.
pub const INCOMPLETE_MARKER: &str = "INCOMPLETE";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Atomic (temp + rename) but *not* fsynced — for advisory files
/// rewritten every poll tick, where durability is not worth an fsync
/// storm. Everything load-bearing goes through
/// [`crate::checkpoint::write_durable_atomic`] instead.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    let tmp = path.with_file_name(format!(".{name}.tmp{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// A submitted spec's run parameters — everything a worker needs beyond
/// the spec itself, fixed at submission so the whole fleet agrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpoolManifest {
    /// The literal [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// The spec's id (display only; `spec.json` is authoritative).
    pub spec_id: String,
    /// [`spec_fingerprint`] of `spec.json` — workers refuse a mismatch.
    pub fingerprint: String,
    /// How many contiguous shards the grid splits into.
    pub shards: u64,
    /// Chunk size (units per durable window) for every shard.
    pub chunk: u64,
    /// Heartbeat deadline: a claim untouched this long is up for
    /// takeover. Must exceed the worst-case chunk wall time.
    pub lease_ms: u64,
    /// Failures (not crashes) allowed per shard before it is `Exhausted`.
    pub max_retries: u64,
    /// Base of the exponential retry backoff (`backoff_ms · 2^(f-1)`).
    pub backoff_ms: u64,
    /// Whether shards write per-shard JSONL record logs.
    pub records: bool,
}

impl SpoolManifest {
    /// Reads a manifest back, verifying the schema id.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem errors; malformed JSON or an unknown schema
    /// yield [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<SpoolManifest> {
        let text = std::fs::read_to_string(path)?;
        let m: SpoolManifest = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: not a spool manifest: {e}", path.display())))?;
        if m.schema != MANIFEST_SCHEMA {
            return Err(invalid(format!(
                "{}: unknown manifest schema {:?} (expected {MANIFEST_SCHEMA:?})",
                path.display(),
                m.schema
            )));
        }
        Ok(m)
    }
}

/// A shard lease: whoever's id is in the claim file owns the shard until
/// the file's mtime goes stale. `attempt` fences stale owners: a worker
/// whose claim was taken over sees a different `(owner, attempt)` at its
/// next refresh and abandons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// The literal [`CLAIM_SCHEMA`].
    pub schema: String,
    /// The owning worker's id.
    pub owner: String,
    /// Monotonic per-shard attempt number (fresh acquires and takeovers
    /// both advance it).
    pub attempt: u64,
    /// Heartbeat counter (informational; the file mtime is the deadline
    /// clock).
    pub beat: u64,
}

impl Claim {
    /// A fresh claim for `owner`'s `attempt` on a shard.
    pub fn new(owner: &str, attempt: u64) -> Claim {
        Claim {
            schema: CLAIM_SCHEMA.to_string(),
            owner: owner.to_string(),
            attempt,
            beat: 0,
        }
    }
}

/// The durable marker a failed attempt leaves behind (`s<i>.fail<a>.json`):
/// evidence for bounded retry (count ≥ `max_retries` ⇒ `Exhausted`) and
/// the backoff clock (the file's mtime).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailNote {
    /// The worker that failed.
    pub worker: String,
    /// The attempt that failed.
    pub attempt: u64,
    /// The error, as text.
    pub error: String,
}

/// Path helpers for one submitted spec's directory inside the spool.
#[derive(Debug, Clone)]
pub struct SpecDir {
    dir: PathBuf,
}

impl SpecDir {
    /// Wraps an existing queue-entry directory.
    pub fn new(dir: PathBuf) -> SpecDir {
        SpecDir { dir }
    }

    /// The directory itself.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The queue-entry name (e.g. `q0000-E1`).
    pub fn name(&self) -> String {
        self.dir.file_name().map_or_else(
            || self.dir.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        )
    }

    /// `spec.json` — the submitted [`ScenarioSpec`].
    pub fn spec_path(&self) -> PathBuf {
        self.dir.join("spec.json")
    }

    /// `manifest.json` — the [`SpoolManifest`].
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// `status.json` — the advisory [`SpecStatus`] snapshot.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join("status.json")
    }

    /// The `shards/` ledger directory.
    pub fn shards_dir(&self) -> PathBuf {
        self.dir.join("shards")
    }

    /// Shard `i`'s lease file for `attempt` — one claim file per
    /// attempt, so every acquisition (fresh or takeover) is a
    /// create-exclusive `hard_link` with exactly one winner.
    pub fn claim_path(&self, i: u64, attempt: u64) -> PathBuf {
        self.shards_dir().join(format!("s{i}.claim{attempt}"))
    }

    /// Shard `i`'s checkpoint file.
    pub fn checkpoint_path(&self, i: u64) -> PathBuf {
        self.shards_dir().join(format!("s{i}.ckpt"))
    }

    /// Shard `i`'s record log.
    pub fn jsonl_path(&self, i: u64) -> PathBuf {
        self.shards_dir().join(format!("s{i}.jsonl"))
    }

    /// Shard `i`'s published partial (existence = `Done`).
    pub fn partial_path(&self, i: u64) -> PathBuf {
        self.shards_dir().join(format!("s{i}.partial"))
    }

    /// Shard `i`'s failure marker for `attempt`.
    pub fn fail_path(&self, i: u64, attempt: u64) -> PathBuf {
        self.shards_dir().join(format!("s{i}.fail{attempt}.json"))
    }

    /// Reads the submitted spec back.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem errors; malformed JSON yields
    /// [`io::ErrorKind::InvalidData`].
    pub fn load_spec(&self) -> io::Result<ScenarioSpec> {
        let path = self.spec_path();
        let text = std::fs::read_to_string(&path)?;
        serde_json::from_str(&text).map_err(|e| {
            invalid(format!(
                "{}: invalid ScenarioSpec JSON: {e}",
                path.display()
            ))
        })
    }

    /// Reads the manifest back.
    ///
    /// # Errors
    ///
    /// See [`SpoolManifest::load`].
    pub fn load_manifest(&self) -> io::Result<SpoolManifest> {
        SpoolManifest::load(&self.manifest_path())
    }
}

/// The run parameters a submission fixes for the fleet (see the
/// same-named [`SpoolManifest`] fields).
#[derive(Debug, Clone, Copy)]
pub struct SubmitConfig {
    /// Shard count.
    pub shards: u64,
    /// Chunk size.
    pub chunk: u64,
    /// Lease deadline in milliseconds.
    pub lease_ms: u64,
    /// Failures allowed per shard.
    pub max_retries: u64,
    /// Backoff base in milliseconds.
    pub backoff_ms: u64,
    /// Whether shards write record logs.
    pub records: bool,
}

/// Submits a spec to the spool: creates `q<seq>-<id>/` with the spec,
/// the manifest, and an empty shard ledger, all durably. Queue order is
/// the lexicographic directory order, so `seq` should count up.
///
/// # Errors
///
/// Surfaces filesystem errors; refuses to overwrite an existing entry.
pub fn submit_spec(
    spool: &Path,
    seq: u64,
    spec: &ScenarioSpec,
    cfg: &SubmitConfig,
) -> io::Result<SpecDir> {
    let sanitized: String = spec
        .id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = spool.join(format!("q{seq:04}-{sanitized}"));
    if dir.exists() {
        return Err(invalid(format!(
            "{}: queue entry already exists — refusing to overwrite",
            dir.display()
        )));
    }
    let sd = SpecDir::new(dir);
    std::fs::create_dir_all(sd.shards_dir())?;
    let spec_json = serde_json::to_string_pretty(spec)
        .map_err(|e| invalid(format!("spec does not serialize: {e}")))?;
    write_durable_atomic(&sd.spec_path(), spec_json.as_bytes())?;
    let manifest = SpoolManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        spec_id: spec.id.clone(),
        fingerprint: spec_fingerprint(spec),
        shards: cfg.shards,
        chunk: cfg.chunk,
        lease_ms: cfg.lease_ms,
        max_retries: cfg.max_retries,
        backoff_ms: cfg.backoff_ms,
        records: cfg.records,
    };
    let manifest_json = crate::checkpoint::json_pretty(&manifest)?;
    write_durable_atomic(&sd.manifest_path(), manifest_json.as_bytes())?;
    // The queue entry itself must survive power loss too.
    sync_parent_dir(sd.dir())?;
    Ok(sd)
}

/// Lists the spool's queue entries in queue (lexicographic) order. An
/// entry without a manifest — a submission caught mid-write — is
/// skipped; the coordinator submits everything before spawning workers,
/// so in practice the queue is complete by the time anyone lists it.
///
/// # Errors
///
/// Surfaces the directory-read error.
pub fn list_specs(spool: &Path) -> io::Result<Vec<SpecDir>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(spool)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() && name.starts_with('q') && path.join("manifest.json").is_file() {
            out.push(SpecDir::new(path));
        }
    }
    out.sort_by_key(SpecDir::name);
    Ok(out)
}

/// Reads a claim back, verifying the schema id.
///
/// # Errors
///
/// Surfaces filesystem errors; malformed JSON or an unknown schema
/// yield [`io::ErrorKind::InvalidData`].
pub fn load_claim(path: &Path) -> io::Result<Claim> {
    let text = std::fs::read_to_string(path)?;
    let c: Claim = serde_json::from_str(&text)
        .map_err(|e| invalid(format!("{}: not a claim: {e}", path.display())))?;
    if c.schema != CLAIM_SCHEMA {
        return Err(invalid(format!(
            "{}: unknown claim schema {:?} (expected {CLAIM_SCHEMA:?})",
            path.display(),
            c.schema
        )));
    }
    Ok(c)
}

/// Tries to create the claim file — the race-free lease acquisition.
/// The claim is written to a synced temp sibling and `hard_link`ed to
/// the claim path: the link either creates the entry (we own the lease)
/// or fails with `AlreadyExists` (someone else does). Returns whether
/// we won.
///
/// # Errors
///
/// Surfaces filesystem errors other than the losing race.
pub fn try_acquire_claim(path: &Path, claim: &Claim) -> io::Result<bool> {
    let json = crate::checkpoint::json_pretty(claim)?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("claim");
    let tmp = path.with_file_name(format!(".{name}.acq{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    let linked = std::fs::hard_link(&tmp, path);
    let _ = std::fs::remove_file(&tmp);
    match linked {
        Ok(()) => {
            sync_parent_dir(path)?;
            Ok(true)
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    }
}

/// Whether a later attempt has superseded `attempt` on this shard: the
/// partial was published, or a claim file or failure marker from a
/// higher attempt exists. Any of those means the lease was taken over —
/// the holder of `attempt` must abandon without touching the shared
/// checkpoint or record log again.
///
/// # Errors
///
/// Surfaces the directory-read error.
pub fn attempt_superseded(sd: &SpecDir, index: u64, attempt: u64) -> io::Result<bool> {
    if sd.partial_path(index).is_file() {
        return Ok(true);
    }
    let claim_prefix = format!("s{index}.claim");
    let fail_prefix = format!("s{index}.fail");
    for entry in std::fs::read_dir(sd.shards_dir())? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let newer = name
            .strip_prefix(&claim_prefix)
            .and_then(|r| r.parse::<u64>().ok())
            .or_else(|| {
                name.strip_prefix(&fail_prefix)
                    .and_then(|r| r.strip_suffix(".json"))
                    .and_then(|r| r.parse::<u64>().ok())
            });
        if newer.is_some_and(|a| a > attempt) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Heartbeat + fence in one step: if no later attempt has superseded
/// ours ([`attempt_superseded`]) and our own claim file is still in
/// place, rewrite it (temp + fsync + rename — the fresh mtime restarts
/// the deadline clock) and return `true`. Otherwise return `false`: the
/// shard is someone else's now and the caller must abandon it without
/// publishing.
///
/// # Errors
///
/// Surfaces filesystem errors other than the claim being gone.
pub fn heartbeat_and_fence(sd: &SpecDir, index: u64, ours: &Claim) -> io::Result<bool> {
    if attempt_superseded(sd, index, ours.attempt)? {
        return Ok(false);
    }
    let path = sd.claim_path(index, ours.attempt);
    match load_claim(&path) {
        Ok(c) if c.owner == ours.owner && c.attempt == ours.attempt => {
            let json = crate::checkpoint::json_pretty(ours)?;
            write_durable_atomic(&path, json.as_bytes())?;
            Ok(true)
        }
        Ok(_) => Ok(false),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// Removes a claim (publish or failure both release the lease). Missing
/// is fine — an expired claim may have been taken over and re-released.
///
/// # Errors
///
/// Surfaces filesystem errors.
pub fn release_claim(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => sync_parent_dir(path),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Where a shard stands, decided from its files alone (see the module
/// docs' state machine).
#[derive(Debug, Clone, PartialEq)]
pub enum ShardState {
    /// The partial is published.
    Done,
    /// `failures ≥ max_retries` — terminal; the spec degrades.
    Exhausted {
        /// Failure count.
        failures: u64,
    },
    /// A live claim (mtime within the lease).
    Leased {
        /// The claim's owner.
        owner: String,
        /// The claim's attempt.
        attempt: u64,
        /// Milliseconds since the last heartbeat.
        age_ms: u64,
    },
    /// A claim whose heartbeat stopped ≥ `lease_ms` ago — up for
    /// takeover.
    Expired {
        /// The stale claim's owner.
        owner: String,
        /// The stale claim's attempt.
        attempt: u64,
        /// Milliseconds since the last heartbeat.
        age_ms: u64,
    },
    /// Failed recently; retry gated by exponential backoff.
    Backoff {
        /// Failure count so far.
        failures: u64,
        /// Milliseconds until the next attempt may start.
        remaining_ms: u64,
    },
    /// Free to lease.
    Open {
        /// The attempt number the next acquire should use.
        next_attempt: u64,
        /// Failure count so far.
        failures: u64,
    },
}

impl ShardState {
    /// Terminal states need no further work.
    pub fn is_terminal(&self) -> bool {
        matches!(self, ShardState::Done | ShardState::Exhausted { .. })
    }
}

/// One shard's scanned state plus its checkpoint progress, if visible.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Shard index.
    pub index: u64,
    /// The scanned state.
    pub state: ShardState,
    /// The checkpoint's `next_index`, when a readable checkpoint exists
    /// (progress display only — never load-bearing).
    pub next_index: Option<u64>,
}

/// The exponential backoff deadline after `failures` failures.
fn backoff_ms(base_ms: u64, failures: u64) -> u64 {
    let shift = (failures.saturating_sub(1)).min(16) as u32;
    base_ms.saturating_mul(1u64 << shift)
}

fn age_since(now: SystemTime, then: SystemTime) -> u64 {
    now.duration_since(then)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Scans one shard's files into a [`ShardView`] (see the module docs'
/// state machine for the decision order).
///
/// # Errors
///
/// Surfaces filesystem errors; a claim that vanishes mid-scan (a racing
/// release) is retried once as open.
pub fn scan_shard(
    sd: &SpecDir,
    manifest: &SpoolManifest,
    index: u64,
    now: SystemTime,
) -> io::Result<ShardView> {
    let next_index = SweepCheckpoint::load(&sd.checkpoint_path(index))
        .ok()
        .map(|cp| cp.next_index);
    let view = |state| ShardView {
        index,
        state,
        next_index,
    };
    if sd.partial_path(index).is_file() {
        return Ok(view(ShardState::Done));
    }
    // One directory pass: failure markers (count, latest attempt,
    // latest mtime) and per-attempt claims (highest attempt + mtime).
    let fail_prefix = format!("s{index}.fail");
    let claim_prefix = format!("s{index}.claim");
    let mut failures = 0u64;
    let mut max_fail: Option<u64> = None;
    let mut latest_fail: Option<SystemTime> = None;
    let mut top_claim: Option<(u64, SystemTime)> = None;
    for entry in std::fs::read_dir(sd.shards_dir())? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(attempt) = name
            .strip_prefix(&fail_prefix)
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            failures += 1;
            max_fail = Some(max_fail.map_or(attempt, |m| m.max(attempt)));
            if let Ok(mtime) = entry.metadata().and_then(|m| m.modified()) {
                latest_fail = Some(latest_fail.map_or(mtime, |m| m.max(mtime)));
            }
        } else if let Some(attempt) = name
            .strip_prefix(&claim_prefix)
            .and_then(|r| r.parse::<u64>().ok())
        {
            if top_claim.is_none_or(|(top, _)| attempt > top) {
                if let Ok(mtime) = entry.metadata().and_then(|m| m.modified()) {
                    top_claim = Some((attempt, mtime));
                }
            }
        }
    }
    if failures >= manifest.max_retries {
        return Ok(view(ShardState::Exhausted { failures }));
    }
    // The highest-numbered claim is the live attempt — unless a failure
    // marker at or above its number shows that attempt already concluded
    // (then the claim file is an inert leftover of a failed release).
    if let Some((attempt, mtime)) = top_claim {
        if max_fail.is_none_or(|m| m < attempt) {
            let age = age_since(now, mtime);
            match load_claim(&sd.claim_path(index, attempt)) {
                Ok(c) if age < manifest.lease_ms => {
                    return Ok(view(ShardState::Leased {
                        owner: c.owner,
                        attempt,
                        age_ms: age,
                    }));
                }
                Ok(c) => {
                    return Ok(view(ShardState::Expired {
                        owner: c.owner,
                        attempt,
                        age_ms: age,
                    }));
                }
                // Released between readdir and read (published or
                // failed just now) — fall through as concluded.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }
    if failures > 0 {
        let wait = backoff_ms(manifest.backoff_ms, failures);
        let elapsed = latest_fail.map_or(u64::MAX, |t| age_since(now, t));
        if elapsed < wait {
            return Ok(view(ShardState::Backoff {
                failures,
                remaining_ms: wait - elapsed,
            }));
        }
    }
    // The next acquire targets one past every attempt ever started —
    // claim files and failure markers both witness started attempts.
    let seen = match (max_fail, top_claim) {
        (Some(f), Some((c, _))) => Some(f.max(c)),
        (Some(f), None) => Some(f),
        (None, Some((c, _))) => Some(c),
        (None, None) => None,
    };
    Ok(view(ShardState::Open {
        next_attempt: seen.map_or(0, |m| m + 1),
        failures,
    }))
}

/// A spec's overall phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecPhase {
    /// Work remains (or is in flight).
    Active,
    /// Every shard published — the merge is byte-identical to the
    /// single-process run.
    Complete,
    /// Every shard terminal, at least one exhausted — only a partial
    /// (clearly marked) table is available.
    Degraded,
}

impl SpecPhase {
    /// The phase's lowercase wire name (status documents).
    pub fn as_str(self) -> &'static str {
        match self {
            SpecPhase::Active => "active",
            SpecPhase::Complete => "complete",
            SpecPhase::Degraded => "degraded",
        }
    }
}

/// A whole spec's scanned state.
#[derive(Debug, Clone)]
pub struct SpecScan {
    /// The overall phase.
    pub phase: SpecPhase,
    /// Every shard's view, in shard order.
    pub shards: Vec<ShardView>,
}

impl SpecScan {
    /// Shards already `Done`.
    pub fn done(&self) -> u64 {
        self.shards
            .iter()
            .filter(|v| matches!(v.state, ShardState::Done))
            .count() as u64
    }
}

/// Scans every shard of a spec and classifies the phase.
///
/// # Errors
///
/// Surfaces filesystem errors.
pub fn scan_spec(sd: &SpecDir, manifest: &SpoolManifest, now: SystemTime) -> io::Result<SpecScan> {
    let shards: Vec<ShardView> = (0..manifest.shards)
        .map(|i| scan_shard(sd, manifest, i, now))
        .collect::<io::Result<_>>()?;
    let all_terminal = shards.iter().all(|v| v.state.is_terminal());
    let all_done = shards.iter().all(|v| matches!(v.state, ShardState::Done));
    let phase = if all_done {
        SpecPhase::Complete
    } else if all_terminal {
        SpecPhase::Degraded
    } else {
        SpecPhase::Active
    };
    Ok(SpecScan { phase, shards })
}

/// Loads every published partial of a spec, in shard order (gaps where
/// shards haven't finished).
///
/// # Errors
///
/// Surfaces filesystem and schema errors for partials that exist.
pub fn load_partials(sd: &SpecDir, manifest: &SpoolManifest) -> io::Result<Vec<ShardPartial>> {
    let mut out = Vec::new();
    for i in 0..manifest.shards {
        let path = sd.partial_path(i);
        if path.is_file() {
            out.push(ShardPartial::load(&path)?);
        }
    }
    Ok(out)
}

/// Folds the partials published so far into a preview table — the
/// graceful-degradation surface. Partials merge in shard (= index)
/// order; with shards missing the fold is over a subset of the grid, so
/// the caption gets an unmissable `[INCOMPLETE: k/m shards merged]`
/// marker. A complete set produces exactly the final table. `None`
/// until the first partial lands.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when partials disagree on the
/// aggregation shape (they can't, unless the spool was tampered with).
pub fn merged_preview(
    spec: &ScenarioSpec,
    partials: &[ShardPartial],
    total_shards: u64,
) -> io::Result<Option<Table>> {
    if partials.is_empty() {
        return Ok(None);
    }
    let mut parts: Vec<&ShardPartial> = partials.iter().collect();
    parts.sort_by_key(|p| p.shard.index);
    let mut iter = parts.into_iter();
    let Some(first) = iter.next() else {
        return Ok(None);
    };
    let mut agg = StreamAggregate::restore_for_spec(spec, first.aggregate.clone())
        .map_err(|e| invalid(format!("shard {}: {e}", first.shard)))?;
    for p in iter {
        agg.merge_snapshot(&p.aggregate)
            .map_err(|e| invalid(format!("shard {}: {e}", p.shard)))?;
    }
    let mut table = agg.table(spec);
    if (partials.len() as u64) < total_shards {
        table.caption = format!(
            "{} [{INCOMPLETE_MARKER}: {}/{} shards merged]",
            table.caption,
            partials.len(),
            total_shards
        );
    }
    Ok(Some(table))
}

/// One shard's line in a [`SpecStatus`] document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub index: u64,
    /// State name: `done`, `exhausted`, `leased`, `expired`, `backoff`,
    /// or `open`.
    pub state: String,
    /// Human-readable detail (owner, ages, counts).
    pub detail: String,
    /// Checkpoint progress, when visible.
    pub next_index: Option<u64>,
}

/// The advisory status snapshot the coordinator rewrites every poll —
/// what `radio-lab status` and any other poller reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecStatus {
    /// The literal [`STATUS_SCHEMA`].
    pub schema: String,
    /// The spec's id.
    pub spec_id: String,
    /// The spec's fingerprint.
    pub fingerprint: String,
    /// `active`, `complete`, or `degraded`.
    pub phase: String,
    /// Shards published.
    pub shards_done: u64,
    /// Shard count.
    pub shards_total: u64,
    /// Per-shard lines, in shard order.
    pub shards: Vec<ShardStatus>,
}

/// Renders a scan into the status document shape.
pub fn spec_status(manifest: &SpoolManifest, scan: &SpecScan) -> SpecStatus {
    let shards = scan
        .shards
        .iter()
        .map(|v| {
            let (state, detail) = match &v.state {
                ShardState::Done => ("done".to_string(), String::new()),
                ShardState::Exhausted { failures } => (
                    "exhausted".to_string(),
                    format!("{failures} failure(s), retries exhausted"),
                ),
                ShardState::Leased {
                    owner,
                    attempt,
                    age_ms,
                } => (
                    "leased".to_string(),
                    format!("{owner} attempt {attempt}, heartbeat {age_ms}ms ago"),
                ),
                ShardState::Expired {
                    owner,
                    attempt,
                    age_ms,
                } => (
                    "expired".to_string(),
                    format!("{owner} attempt {attempt}, heartbeat {age_ms}ms ago"),
                ),
                ShardState::Backoff {
                    failures,
                    remaining_ms,
                } => (
                    "backoff".to_string(),
                    format!("{failures} failure(s), retry in {remaining_ms}ms"),
                ),
                ShardState::Open {
                    next_attempt,
                    failures,
                } => (
                    "open".to_string(),
                    format!("next attempt {next_attempt}, {failures} failure(s)"),
                ),
            };
            ShardStatus {
                index: v.index,
                state,
                detail,
                next_index: v.next_index,
            }
        })
        .collect();
    SpecStatus {
        schema: STATUS_SCHEMA.to_string(),
        spec_id: manifest.spec_id.clone(),
        fingerprint: manifest.fingerprint.clone(),
        phase: scan.phase.as_str().to_string(),
        shards_done: scan.done(),
        shards_total: manifest.shards,
        shards,
    }
}

/// Writes the advisory status snapshot (atomic, not fsynced — see
/// [`write_atomic`]).
///
/// # Errors
///
/// Surfaces filesystem errors.
pub fn write_status(sd: &SpecDir, status: &SpecStatus) -> io::Result<()> {
    let json = crate::checkpoint::json_pretty(status)?;
    write_atomic(&sd.status_path(), json.as_bytes())
}

/// Reads the advisory status snapshot back.
///
/// # Errors
///
/// Surfaces filesystem errors; malformed JSON or an unknown schema
/// yield [`io::ErrorKind::InvalidData`].
pub fn load_status(sd: &SpecDir) -> io::Result<SpecStatus> {
    let path = sd.status_path();
    let text = std::fs::read_to_string(&path)?;
    let s: SpecStatus = serde_json::from_str(&text)
        .map_err(|e| invalid(format!("{}: not a status document: {e}", path.display())))?;
    if s.schema != STATUS_SCHEMA {
        return Err(invalid(format!(
            "{}: unknown status schema {:?} (expected {STATUS_SCHEMA:?})",
            path.display(),
            s.schema
        )));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        NestOrder, RenderKind, ScenarioSpec, SeedPolicy, StopCondition, TopologyEntry,
        WorkloadEntry,
    };
    use radio_sim::spec::{AdversaryKind, TopologyKind};
    use radio_structures::runner::AlgoKind;
    use std::time::Duration;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            id: "SPOOL".to_string(),
            caption: "spool unit test".to_string(),
            render: RenderKind::Aggregate,
            topologies: vec![TopologyEntry::new(TopologyKind::Clique { n: 5 })],
            adversaries: vec![AdversaryKind::ReliableOnly],
            workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
            trials: 4,
            nest: NestOrder::TopologyMajor,
            seeds: SeedPolicy {
                net_base: 7,
                run_base: 2,
            },
            stop: StopCondition::Default,
            aggregate: None,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("radio_spool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn cfg() -> SubmitConfig {
        SubmitConfig {
            shards: 2,
            chunk: 2,
            lease_ms: 200,
            max_retries: 3,
            backoff_ms: 50,
            records: false,
        }
    }

    #[test]
    fn submit_then_list_roundtrips() {
        let spool = scratch("submit");
        let sd = submit_spec(&spool, 0, &spec(), &cfg()).expect("submits");
        assert!(sd.name().starts_with("q0000-"));
        let listed = list_specs(&spool).expect("lists");
        assert_eq!(listed.len(), 1);
        let manifest = listed[0].load_manifest().expect("manifest loads");
        assert_eq!(manifest.spec_id, "SPOOL");
        assert_eq!(manifest.fingerprint, spec_fingerprint(&spec()));
        assert_eq!(listed[0].load_spec().expect("spec loads"), spec());
        // Double submission refused.
        assert!(submit_spec(&spool, 0, &spec(), &cfg()).is_err());
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn acquire_is_exclusive_and_heartbeat_fences() {
        let spool = scratch("claims");
        let sd = submit_spec(&spool, 0, &spec(), &cfg()).expect("submits");
        let path0 = sd.claim_path(0, 0);
        let a = Claim::new("wA", 0);
        let b = Claim::new("wB", 0);
        assert!(try_acquire_claim(&path0, &a).expect("acquires"));
        assert!(
            !try_acquire_claim(&path0, &b).expect("loses race"),
            "second acquire of the same attempt must lose"
        );
        // Owner heartbeats fine until a takeover claims the next attempt —
        // takeover is itself an exclusive acquisition, so racers get one winner.
        assert!(heartbeat_and_fence(&sd, 0, &a).expect("heartbeats"));
        let takeover = Claim::new("wB", 1);
        let path1 = sd.claim_path(0, 1);
        assert!(try_acquire_claim(&path1, &takeover).expect("takes over"));
        assert!(
            !try_acquire_claim(&path1, &Claim::new("wC", 1)).expect("loses takeover race"),
            "takeover race must have one winner"
        );
        assert!(!heartbeat_and_fence(&sd, 0, &a).expect("fenced"));
        assert!(heartbeat_and_fence(&sd, 0, &takeover).expect("new owner heartbeats"));
        // A published partial fences everyone.
        std::fs::write(sd.partial_path(0), "placeholder").expect("writes");
        assert!(!heartbeat_and_fence(&sd, 0, &takeover).expect("done = fenced"));
        std::fs::remove_file(sd.partial_path(0)).expect("removes");
        release_claim(&path1).expect("releases");
        assert!(!heartbeat_and_fence(&sd, 0, &takeover).expect("gone = fenced"));
        release_claim(&path1).expect("double release is fine");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn shard_states_walk_the_machine() {
        let spool = scratch("states");
        let sd = submit_spec(&spool, 0, &spec(), &cfg()).expect("submits");
        let manifest = sd.load_manifest().expect("manifest");
        let now = SystemTime::now();
        // Fresh: open at attempt 0.
        let v = scan_shard(&sd, &manifest, 0, now).expect("scans");
        assert!(matches!(
            v.state,
            ShardState::Open {
                next_attempt: 0,
                failures: 0
            }
        ));
        // Leased while fresh, expired once the heartbeat is stale.
        let claim = Claim::new("w0", 0);
        assert!(try_acquire_claim(&sd.claim_path(0, 0), &claim).expect("acquires"));
        let v = scan_shard(&sd, &manifest, 0, now).expect("scans");
        assert!(
            matches!(v.state, ShardState::Leased { .. }),
            "{:?}",
            v.state
        );
        let stale = now + Duration::from_millis(manifest.lease_ms + 50);
        let v = scan_shard(&sd, &manifest, 0, stale).expect("scans");
        match v.state {
            ShardState::Expired { owner, attempt, .. } => {
                assert_eq!(owner, "w0");
                assert_eq!(attempt, 0);
            }
            other => panic!("expected expired, got {other:?}"),
        }
        // A takeover claims the next attempt; the highest claim is the live
        // lease even while the dead owner's file lingers.
        let takeover = Claim::new("w1", 1);
        assert!(try_acquire_claim(&sd.claim_path(0, 1), &takeover).expect("takes over"));
        let v = scan_shard(&sd, &manifest, 0, SystemTime::now()).expect("scans");
        match v.state {
            ShardState::Leased {
                ref owner, attempt, ..
            } => {
                assert_eq!(owner, "w1");
                assert_eq!(attempt, 1);
            }
            other => panic!("expected leased by takeover, got {other:?}"),
        }
        release_claim(&sd.claim_path(0, 1)).expect("releases takeover");
        release_claim(&sd.claim_path(0, 0)).expect("releases original");
        // One failure: backoff first, open (at the next attempt) after.
        let note = FailNote {
            worker: "w0".to_string(),
            attempt: 0,
            error: "boom".to_string(),
        };
        std::fs::write(
            sd.fail_path(0, 0),
            serde_json::to_string(&note).expect("serializes"),
        )
        .expect("writes");
        let v = scan_shard(&sd, &manifest, 0, SystemTime::now()).expect("scans");
        assert!(matches!(v.state, ShardState::Backoff { failures: 1, .. }));
        let later = SystemTime::now() + Duration::from_millis(manifest.backoff_ms * 4);
        let v = scan_shard(&sd, &manifest, 0, later).expect("scans");
        assert!(matches!(
            v.state,
            ShardState::Open {
                next_attempt: 1,
                failures: 1
            }
        ));
        // max_retries failures: exhausted, and the spec scan degrades
        // once the other shard is done.
        for a in 1..manifest.max_retries {
            std::fs::write(
                sd.fail_path(0, a),
                serde_json::to_string(&note).expect("serializes"),
            )
            .expect("writes");
        }
        let v = scan_shard(&sd, &manifest, 0, SystemTime::now()).expect("scans");
        assert!(matches!(v.state, ShardState::Exhausted { failures: 3 }));
        std::fs::write(sd.partial_path(1), "placeholder").expect("writes");
        let v = scan_shard(&sd, &manifest, 1, SystemTime::now()).expect("scans");
        assert!(matches!(v.state, ShardState::Done));
        let scan = scan_spec(&sd, &manifest, SystemTime::now()).expect("scans");
        assert_eq!(scan.phase, SpecPhase::Degraded);
        assert_eq!(scan.done(), 1);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        assert_eq!(backoff_ms(100, 1), 100);
        assert_eq!(backoff_ms(100, 2), 200);
        assert_eq!(backoff_ms(100, 5), 1600);
        // Deep failure counts clamp instead of overflowing.
        assert_eq!(backoff_ms(u64::MAX, 50), u64::MAX);
    }

    #[test]
    fn status_document_roundtrips() {
        let spool = scratch("status");
        let sd = submit_spec(&spool, 0, &spec(), &cfg()).expect("submits");
        let manifest = sd.load_manifest().expect("manifest");
        let scan = scan_spec(&sd, &manifest, SystemTime::now()).expect("scans");
        let status = spec_status(&manifest, &scan);
        assert_eq!(status.phase, "active");
        assert_eq!(status.shards.len(), 2);
        write_status(&sd, &status).expect("writes");
        assert_eq!(load_status(&sd).expect("loads"), status);
        let _ = std::fs::remove_dir_all(&spool);
    }
}
