//! Deterministic fault injection for the sweep service.
//!
//! Chaos testing is only useful when a failing run can be replayed
//! exactly, so faults here are **data, not randomness**: a [`FaultPlan`]
//! is a JSON document listing events, each pinned to a coordinate
//! `(worker, spec, shard, attempt, chunk)` — any component left `null`
//! matches everything. Workers load the plan from the
//! [`FAULT_PLAN_ENV`] environment variable (the coordinator forwards its
//! `--fault-plan` path to every worker it spawns) and consult it at each
//! chunk boundary, where the sweep state is well-defined: the chunk's
//! sinks have flushed and its checkpoint has landed.
//!
//! Three faults cover the failure modes the service must survive:
//!
//! * [`FaultAction::Kill`] — `exit(137)` at the boundary, the
//!   moral equivalent of a SIGKILL between chunks; with `tear_jsonl`
//!   it first appends an unterminated JSON fragment to the shard's
//!   record log, simulating a crash mid-write (the resume path must
//!   truncate the torn tail away).
//! * [`FaultAction::StallHeartbeat`] — sleep `stall_ms` before
//!   heartbeating, so a stall longer than the lease makes another worker
//!   take the shard over; the stalled worker's next fence check sees the
//!   new owner and abandons.
//! * [`FaultAction::SinkError`] — arm the shard's
//!   [`crate::sink::FaultTrip`], so the next record-log write fails with
//!   [`crate::sink::INJECTED_SINK_ERROR`]; `at_chunk: 0` arms it before
//!   the first chunk. This is the bounded-retry / degradation path: the
//!   failure counts against the shard's `max_retries`.
//!
//! Chunk numbering: `at_chunk` is matched against the attempt's 1-based
//! completed-chunk count, except `0`, which fires before the attempt's
//! first chunk (only meaningful for `SinkError`).

use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Environment variable naming the fault-plan JSON file workers load.
/// Unset (the production case) means no faults.
pub const FAULT_PLAN_ENV: &str = "RADIO_LAB_FAULT_PLAN";

/// Schema id of fault-plan files.
pub use crate::schemas::FAULT_PLAN_SCHEMA;

/// What an armed fault does at its chunk boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Exit the worker process with status 137 (the SIGKILL convention);
    /// `tear_jsonl` first appends an unterminated line to the shard's
    /// record log, simulating a crash mid-write.
    Kill {
        /// Append a torn (unterminated) fragment to the record log
        /// before dying.
        tear_jsonl: bool,
    },
    /// Sleep this long before refreshing the heartbeat — a stall longer
    /// than the lease hands the shard to another worker.
    StallHeartbeat {
        /// Milliseconds to stall.
        stall_ms: u64,
    },
    /// Arm the shard's sink fault trip: the next record-log write fails,
    /// surfacing as the attempt's error (bounded retry, then
    /// degradation).
    SinkError,
}

/// One fault, pinned to a coordinate in the fleet × sweep space. `None`
/// components match anything, so a plan can say "whoever runs shard 2's
/// attempt 0" or "worker w1, wherever it is".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Worker id to match (`None` = any worker).
    pub worker: Option<String>,
    /// Spec id to match (`None` = any spec).
    pub spec: Option<String>,
    /// Shard index to match (`None` = any shard).
    pub shard: Option<u64>,
    /// Attempt number to match (`None` = any attempt).
    pub attempt: Option<u64>,
    /// Chunk boundary to fire at: 1-based completed-chunk count within
    /// the attempt; `0` fires before the first chunk (sink-error arming
    /// only).
    pub at_chunk: u64,
    /// What happens.
    pub action: FaultAction,
}

impl FaultEvent {
    /// Whether this event applies to the given shard attempt (chunk is
    /// matched separately, per boundary).
    pub fn applies_to(&self, worker: &str, spec: &str, shard: u64, attempt: u64) -> bool {
        self.worker.as_deref().is_none_or(|w| w == worker)
            && self.spec.as_deref().is_none_or(|s| s == spec)
            && self.shard.is_none_or(|s| s == shard)
            && self.attempt.is_none_or(|a| a == attempt)
    }
}

/// A reproducible chaos schedule: the list of [`FaultEvent`]s a run
/// injects. Loaded by workers from [`FAULT_PLAN_ENV`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The literal [`FAULT_PLAN_SCHEMA`].
    pub schema: String,
    /// The faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults), carrying the current schema id.
    pub fn new() -> Self {
        FaultPlan {
            schema: FAULT_PLAN_SCHEMA.to_string(),
            events: Vec::new(),
        }
    }

    /// Reads a plan from a JSON file, verifying the schema id.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem errors; malformed JSON or an unknown schema
    /// yield [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<FaultPlan> {
        let text = std::fs::read_to_string(path)?;
        let plan: FaultPlan = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a fault plan: {e}", path.display()),
            )
        })?;
        if plan.schema != FAULT_PLAN_SCHEMA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: unknown fault-plan schema {:?} (expected {FAULT_PLAN_SCHEMA:?})",
                    path.display(),
                    plan.schema
                ),
            ));
        }
        Ok(plan)
    }

    /// Loads the plan named by [`FAULT_PLAN_ENV`], or `None` when the
    /// variable is unset (no faults).
    ///
    /// # Errors
    ///
    /// A set-but-unloadable plan is an error — silently running a chaos
    /// test without its faults would report vacuous success.
    pub fn from_env() -> io::Result<Option<FaultPlan>> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(path) if !path.is_empty() => Ok(Some(FaultPlan::load(Path::new(&path))?)),
            _ => Ok(None),
        }
    }

    /// The events that apply to one shard attempt (the caller matches
    /// `at_chunk` per boundary).
    pub fn events_for(
        &self,
        worker: &str,
        spec: &str,
        shard: u64,
        attempt: u64,
    ) -> Vec<&FaultEvent> {
        self.events
            .iter()
            .filter(|e| e.applies_to(worker, spec, shard, attempt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(worker: Option<&str>, shard: Option<u64>, at_chunk: u64) -> FaultEvent {
        FaultEvent {
            worker: worker.map(str::to_string),
            spec: None,
            shard,
            attempt: None,
            at_chunk,
            action: FaultAction::SinkError,
        }
    }

    #[test]
    fn wildcards_match_and_pins_filter() {
        let plan = FaultPlan {
            schema: FAULT_PLAN_SCHEMA.to_string(),
            events: vec![
                event(Some("w0"), None, 2),
                event(None, Some(1), 3),
                event(None, None, 1),
            ],
        };
        assert_eq!(plan.events_for("w0", "E1", 0, 0).len(), 2);
        assert_eq!(plan.events_for("w1", "E1", 0, 0).len(), 1);
        assert_eq!(plan.events_for("w1", "E1", 1, 5).len(), 2);
        let pinned = FaultEvent {
            attempt: Some(1),
            ..event(None, None, 1)
        };
        assert!(pinned.applies_to("w9", "X", 7, 1));
        assert!(!pinned.applies_to("w9", "X", 7, 0));
    }

    #[test]
    fn plan_roundtrips_through_json_and_refuses_bad_schema() {
        let dir = std::env::temp_dir().join(format!("radio_fault_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let plan = FaultPlan {
            schema: FAULT_PLAN_SCHEMA.to_string(),
            events: vec![
                FaultEvent {
                    worker: Some("w0".to_string()),
                    spec: Some("E1".to_string()),
                    shard: Some(0),
                    attempt: Some(0),
                    at_chunk: 2,
                    action: FaultAction::Kill { tear_jsonl: true },
                },
                FaultEvent {
                    worker: None,
                    spec: None,
                    shard: None,
                    attempt: None,
                    at_chunk: 1,
                    action: FaultAction::StallHeartbeat { stall_ms: 50 },
                },
            ],
        };
        let path = dir.join("plan.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&plan).expect("serializes"),
        )
        .expect("writes");
        let back = FaultPlan::load(&path).expect("loads");
        assert_eq!(back, plan);
        let mut bad = plan.clone();
        bad.schema = "radio-lab/fault-plan/v0".to_string();
        std::fs::write(&path, serde_json::to_string(&bad).expect("serializes")).expect("writes");
        assert!(FaultPlan::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
