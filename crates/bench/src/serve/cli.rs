//! The `radio-lab serve` / `work` / `status` command surface.
//!
//! `serve` is the user-facing entry point: submit specs, run the fleet,
//! print the merged tables (stdout carries *only* tables, so the output
//! stays byte-comparable to `radio-lab SPEC --stream`), and write the
//! serve report / CSV / merged JSONL artifacts. `work` is the worker
//! process `serve` spawns — it can also be launched by hand against any
//! spool, which is how the lease protocol will survive the planned
//! move to a TCP transport: the worker only speaks
//! [`super::spool`] primitives. `status` is the polling client:
//! it prints each submitted spec's phase, shard table, and the
//! merged-so-far preview (clearly marked INCOMPLETE while shards are
//! missing).
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error, `3`
//! every shard terminal but some exhausted — the run **degraded** and
//! only partial results exist.

use super::coord::{run_serve, ServeConfig};
use super::fault::FaultPlan;
use super::spool::{list_specs, load_partials, merged_preview, scan_spec, spec_status, SpecPhase};
use super::worker::{run_worker, WorkerConfig};
use crate::checkpoint::concat_record_logs;
use crate::scenario::{registry, ScenarioSpec};
use crate::table::Table;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// The serve-family usage text (printed on `--help` or a usage error).
pub const SERVE_USAGE: &str = "usage:
  radio-lab serve SPEC.json|e1..e11 ... --spool DIR [--workers N] [--shards M]
            [--chunk N] [--lease-ms MS] [--poll-ms MS] [--max-retries N]
            [--backoff-ms MS] [--worker-threads N] [--max-respawns N]
            [--fault-plan PLAN.json] [--quick|--full]
            [--out PATH] [--csv PATH] [--records PATH.jsonl] [--json]
  radio-lab work --spool DIR [--worker-id ID] [--poll-ms MS] [--threads N]
  radio-lab status --spool DIR [--json]

serve submits each spec to a fresh spool directory, spawns N worker
processes, supervises them (crashed workers are respawned while the
--max-respawns budget lasts), and merges the published shard partials
in shard order: the stdout table, --csv, and --records output are
byte-identical to the uninterrupted single-process --stream run. A
shard that fails --max-retries times (crashes don't count — they
recover via lease takeover) degrades the spec: serve prints the
partial table clearly marked INCOMPLETE, skips its CSV/JSONL
artifacts, and exits 3. --fault-plan injects deterministic faults
(kills, heartbeat stalls, torn record-log tails, sink I/O errors) for
reproducible chaos testing. --csv/--records accept exactly one spec.

work runs one worker against an existing spool until every submitted
spec is terminal; serve spawns these for you.

status polls a spool: per-spec phase, per-shard lease states, and the
merged-so-far preview table (marked INCOMPLETE until every shard has
published).";

fn fail_usage(msg: &str) -> i32 {
    eprintln!("{msg}");
    eprintln!("{SERVE_USAGE}");
    2
}

/// Parsed flags: values, switches, and positionals, with duplicates and
/// unknown flags rejected up front.
struct Parsed {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

impl Parsed {
    fn value(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }

    fn u64_or(&self, flag: &str, default: u64, min: u64) -> Result<u64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => match v.parse::<u64>() {
                Ok(n) if n >= min => Ok(n),
                _ => Err(format!("{flag} requires an integer >= {min}, got {v}")),
            },
        }
    }
}

fn parse_args(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        values: Vec::new(),
        switches: Vec::new(),
        positionals: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if value_flags.contains(&a.as_str()) {
            if parsed.values.iter().any(|(f, _)| f == a) {
                return Err(format!(
                    "{a} given more than once — each value-taking flag may appear at most once"
                ));
            }
            match iter.next() {
                Some(v) if !v.starts_with("--") => parsed.values.push((a.clone(), v.clone())),
                _ => return Err(format!("{a} requires a value")),
            }
        } else if switch_flags.contains(&a.as_str()) {
            parsed.switches.push(a.clone());
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a}"));
        } else {
            parsed.positionals.push(a.clone());
        }
    }
    Ok(parsed)
}

/// Resolves inputs to specs exactly like the main lab path: registry
/// ids expand to built-ins, anything else reads as a ScenarioSpec JSON
/// file. Everything resolves before anything runs.
fn resolve_specs(inputs: &[String], quick: bool) -> Result<Vec<ScenarioSpec>, String> {
    let mut specs = Vec::new();
    for input in inputs {
        if let Some(built_in) = registry::specs(&input.to_lowercase(), quick) {
            specs.extend(built_in);
            continue;
        }
        let text = std::fs::read_to_string(input).map_err(|e| {
            format!("{input}: not a registry id (e1..e11) and unreadable as a file: {e}")
        })?;
        let spec: ScenarioSpec = serde_json::from_str(&text)
            .map_err(|e| format!("{input}: invalid ScenarioSpec JSON: {e}"))?;
        specs.push(spec);
    }
    Ok(specs)
}

/// Prints a table exactly like the main lab does (markdown, or one-line
/// JSON under `--json`) — stdout byte-compatibility with `--stream` is
/// load-bearing.
fn emit_table(table: &Table, json_tables: bool) {
    if json_tables {
        match crate::checkpoint::json_compact(table) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("cannot serialize table: {e}"),
        }
    } else {
        println!("{}", table.render());
    }
}

/// One scenario in the serve report.
#[derive(Serialize)]
struct ServeScenario {
    spec: ScenarioSpec,
    phase: String,
    tables: Vec<Table>,
    units: u64,
    records: u64,
    wall_s: f64,
    shards_done: u64,
    shards_total: u64,
}

/// The serve results document (`radio-lab/serve/v1`).
#[derive(Serialize)]
struct ServeReport {
    schema: String,
    workers: u64,
    shards: u64,
    degraded: bool,
    respawns: u64,
    scenarios: Vec<ServeScenario>,
}

/// Routes `serve` / `work` / `status` invocations; `None` means the
/// first positional is not a serve-family subcommand and the caller
/// should fall through to the classic CLI.
pub fn dispatch(args: &[String]) -> Option<i32> {
    let (cmd, rest) = args.split_first()?;
    let code = match cmd.as_str() {
        "serve" => serve_main(rest),
        "work" => work_main(rest),
        "status" => status_main(rest),
        _ => return None,
    };
    Some(code)
}

fn serve_main(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return 0;
    }
    let parsed = match parse_args(
        args,
        &[
            "--spool",
            "--workers",
            "--shards",
            "--chunk",
            "--lease-ms",
            "--poll-ms",
            "--max-retries",
            "--backoff-ms",
            "--worker-threads",
            "--max-respawns",
            "--fault-plan",
            "--out",
            "--csv",
            "--records",
        ],
        &["--quick", "--full", "--json"],
    ) {
        Ok(p) => p,
        Err(e) => return fail_usage(&e),
    };
    let Some(spool) = parsed.value("--spool") else {
        return fail_usage("serve requires --spool DIR (the coordination directory)");
    };
    if parsed.positionals.is_empty() {
        return fail_usage("serve needs at least one SPEC.json or registry id");
    }
    let quick = parsed.has("--quick");
    let json_tables = parsed.has("--json");
    let specs = match resolve_specs(&parsed.positionals, quick) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let csv_path = parsed.value("--csv").map(str::to_string);
    let records_path = parsed.value("--records").map(str::to_string);
    if specs.len() > 1 && (csv_path.is_some() || records_path.is_some()) {
        return fail_usage("--csv/--records accept exactly one spec per serve");
    }
    let out_path = parsed
        .value("--out")
        .unwrap_or("LAB_serve.json")
        .to_string();

    let mut cfg = ServeConfig::new(PathBuf::from(spool));
    let numbers: [(&str, &mut u64, u64, u64); 8] = [
        ("--workers", &mut cfg.workers, 2, 1),
        ("--shards", &mut cfg.shards, 0, 1),
        ("--chunk", &mut cfg.chunk, 256, 1),
        ("--lease-ms", &mut cfg.lease_ms, 5_000, 1),
        ("--poll-ms", &mut cfg.poll_ms, 25, 1),
        ("--max-retries", &mut cfg.max_retries, 3, 1),
        ("--backoff-ms", &mut cfg.backoff_ms, 100, 0),
        ("--max-respawns", &mut cfg.max_respawns, 4, 0),
    ];
    for (flag, slot, default, min) in numbers {
        match parsed.u64_or(flag, default, min) {
            Ok(v) => *slot = v,
            Err(e) => return fail_usage(&e),
        }
    }
    if parsed.value("--shards").is_none() {
        // Default: one shard per worker.
        cfg.shards = cfg.workers;
    }
    match parsed.u64_or("--worker-threads", 1, 1) {
        Ok(v) => cfg.worker_threads = v as usize,
        Err(e) => return fail_usage(&e),
    }
    cfg.fault_plan_path = parsed.value("--fault-plan").map(str::to_string);
    if let Some(plan) = &cfg.fault_plan_path {
        // Fail fast on an unloadable plan instead of spawning a fleet
        // that dies one worker at a time.
        if let Err(e) = FaultPlan::load(Path::new(plan)) {
            eprintln!("--fault-plan: {e}");
            return 2;
        }
    }
    cfg.records = records_path.is_some();

    let outcome = match run_serve(&cfg, &specs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve: {e}");
            return 1;
        }
    };

    let mut report = ServeReport {
        schema: crate::schemas::SERVE_REPORT_SCHEMA.to_string(),
        workers: cfg.workers,
        shards: cfg.shards,
        degraded: outcome.degraded,
        respawns: outcome.respawns,
        scenarios: Vec::new(),
    };
    for so in &outcome.specs {
        if let Some(table) = &so.table {
            emit_table(table, json_tables);
        } else {
            eprintln!(
                "serve: {}: degraded with no partials published — no table to show",
                so.spec.id
            );
        }
        if so.phase == SpecPhase::Complete {
            if let (Some(path), Some(table)) = (&csv_path, &so.table) {
                if let Err(e) = std::fs::write(path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            if let (Some(path), Some(paths)) = (&records_path, &so.records_paths) {
                match concat_record_logs(paths, Path::new(path)) {
                    Ok(bytes) => {
                        eprintln!("wrote {path} ({} record logs, {bytes} bytes)", paths.len());
                    }
                    Err(e) => {
                        eprintln!("cannot assemble {path}: {e}");
                        return 1;
                    }
                }
            }
        } else if csv_path.is_some() || records_path.is_some() {
            eprintln!(
                "serve: {}: degraded — skipping CSV/JSONL artifacts (partial data would be \
                 silently wrong)",
                so.spec.id
            );
        }
        report.scenarios.push(ServeScenario {
            spec: so.spec.clone(),
            phase: so.phase.as_str().to_string(),
            tables: so.table.iter().cloned().collect(),
            units: so.units,
            records: so.records,
            wall_s: so.wall_s,
            shards_done: so.shards_done,
            shards_total: so.shards_total,
        });
    }
    let json = match crate::checkpoint::json_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            return 1;
        }
    };
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }
    eprintln!(
        "wrote {out_path} ({} scenario(s){})",
        report.scenarios.len(),
        if outcome.degraded { ", DEGRADED" } else { "" }
    );
    if outcome.degraded {
        3
    } else {
        0
    }
}

fn work_main(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return 0;
    }
    let parsed = match parse_args(
        args,
        &["--spool", "--worker-id", "--poll-ms", "--threads"],
        &[],
    ) {
        Ok(p) => p,
        Err(e) => return fail_usage(&e),
    };
    if !parsed.positionals.is_empty() {
        return fail_usage("work takes no positional arguments");
    }
    let Some(spool) = parsed.value("--spool") else {
        return fail_usage("work requires --spool DIR");
    };
    let worker_id = parsed
        .value("--worker-id")
        .map_or_else(|| format!("w{}", std::process::id()), str::to_string);
    let poll_ms = match parsed.u64_or("--poll-ms", 25, 1) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let threads = match parsed.value("--threads") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return fail_usage(&format!("--threads requires an integer >= 1, got {v}")),
        },
    };
    let fault_plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[{worker_id}] fault plan: {e}");
            return 1;
        }
    };
    let cfg = WorkerConfig {
        spool: PathBuf::from(spool),
        worker_id: worker_id.clone(),
        poll_ms,
        threads,
        fault_plan,
    };
    match run_worker(&cfg) {
        Ok(report) => {
            eprintln!(
                "[{worker_id}] done: {} published, {} abandoned, {} failed",
                report.published, report.abandoned, report.failed
            );
            0
        }
        Err(e) => {
            eprintln!("[{worker_id}] worker error: {e}");
            1
        }
    }
}

fn status_main(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return 0;
    }
    let parsed = match parse_args(args, &["--spool"], &["--json"]) {
        Ok(p) => p,
        Err(e) => return fail_usage(&e),
    };
    if !parsed.positionals.is_empty() {
        return fail_usage("status takes no positional arguments");
    }
    let Some(spool) = parsed.value("--spool") else {
        return fail_usage("status requires --spool DIR");
    };
    let json = parsed.has("--json");
    let dirs = match list_specs(Path::new(spool)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("status: {spool}: {e}");
            return 1;
        }
    };
    if dirs.is_empty() {
        eprintln!("status: {spool}: no specs submitted");
        return 0;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for sd in &dirs {
        let result = (|| -> std::io::Result<()> {
            let manifest = sd.load_manifest()?;
            let scan = scan_spec(sd, &manifest, SystemTime::now())?;
            let status = spec_status(&manifest, &scan);
            if json {
                writeln!(out, "{}", crate::checkpoint::json_compact(&status)?)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} ({}/{} shards done)",
                status.spec_id, status.phase, status.shards_done, status.shards_total
            )?;
            for s in &status.shards {
                let progress = s
                    .next_index
                    .map_or(String::new(), |n| format!(" [next index {n}]"));
                if s.detail.is_empty() {
                    writeln!(out, "  shard {}: {}{progress}", s.index, s.state)?;
                } else {
                    writeln!(
                        out,
                        "  shard {}: {} — {}{progress}",
                        s.index, s.state, s.detail
                    )?;
                }
            }
            let spec = sd.load_spec()?;
            let partials = load_partials(sd, &manifest)?;
            if let Some(table) = merged_preview(&spec, &partials, manifest.shards)? {
                writeln!(out, "{}", table.render())?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("status: {}: {e}", sd.name());
            return 1;
        }
    }
    0
}
