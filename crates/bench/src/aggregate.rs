//! Declarative aggregation: group-by statistics over scenario runs.
//!
//! Every claim this repository reproduces is a *statistic over trials* —
//! the dual-graph model separates reliable structure from adversarial
//! noise, so a single run proves nothing. An [`AggregateSpec`] describes,
//! as plain serde data, how a [`ScenarioRun`]'s records fold into an
//! E1-style summary table: which axes group rows ([`GroupKey`]), which
//! record fields become columns ([`MetricSource`]), and which reductions
//! summarize them ([`Reduction`] — mean, stddev, min/max, median, p90/p99,
//! 95% CI — all computed by the single-pass accumulators in
//! [`crate::stats`]). An optional [`SlopeSpec`] appends the measured
//! log-log scaling exponent across groups to the caption, the way the
//! bespoke E1/E7 renderers report theirs.
//!
//! Wired into [`ScenarioSpec::aggregate`]: a user JSON spec with
//! `"render": "Aggregate"` (or `"Generic"` plus an `aggregate` block)
//! gets a grouped mean±CI table — and a CSV via `radio-lab --csv` — with
//! no custom renderer and no Rust changes.
//!
//! Records fold in unit (= trial-index) order, so aggregated tables are
//! bit-identical between serial and parallel sweeps, like everything else
//! downstream of [`crate::parallel::run_trials`].

use crate::scenario::{ScenarioRun, ScenarioSpec, TrialUnit};
pub use crate::stats::DROPPED_POINTS_MARKER;
use crate::stats::{dropped_points_note, loglog_exponent_counting, StreamingSummary};
use crate::table::{f1, f3, Table, ABSENT};
use radio_structures::params::ceil_log2;
use radio_structures::runner::RunRecord;
use serde::{Deserialize, Serialize};

/// One axis of the group-by key: records agreeing on every listed key
/// aggregate into one table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupKey {
    /// The topology entry's label (e.g. `rgg-64`).
    Topology,
    /// The adversary's name.
    Adversary,
    /// The workload's name.
    Workload,
    /// The record's algorithm name (differs from [`GroupKey::Workload`]
    /// for multi-record workloads like the backbone comparison).
    Algo,
    /// The record's network size `n`.
    N,
}

impl GroupKey {
    /// Column header for this key.
    fn header(self) -> &'static str {
        match self {
            GroupKey::Topology => "topology",
            GroupKey::Adversary => "adversary",
            GroupKey::Workload => "workload",
            GroupKey::Algo => "algo",
            GroupKey::N => "n",
        }
    }

    /// The key's rendered value for one record.
    fn value(
        self,
        spec: &ScenarioSpec,
        topo: usize,
        adv: usize,
        work: usize,
        rec: &RunRecord,
    ) -> String {
        match self {
            GroupKey::Topology => spec.topologies[topo].kind.label(),
            GroupKey::Adversary => spec.adversaries[adv].name().to_string(),
            GroupKey::Workload => spec.workloads[work].kind.name().to_string(),
            GroupKey::Algo => rec.algo.clone(),
            GroupKey::N => rec.n.to_string(),
        }
    }
}

/// Which scalar of a [`RunRecord`] a metric reads. Sources that a record
/// may not carry (`ScheduleTotal`, channel counters, `Extra`) simply skip
/// that record — the per-metric count reflects actual observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricSource {
    /// Round the run's goal was reached. Records that never reached it —
    /// timed-out runs, failed builds — are **excluded** from the
    /// reduction by default, so a cap never masquerades as a measurement;
    /// [`MetricSpec::include_invalid`] opts back into the historical E1
    /// convention of substituting the rounds executed (the budget).
    SolveRound,
    /// Rounds the engine executed.
    RoundsExecuted,
    /// Total schedule length (fixed-schedule algorithms only).
    ScheduleTotal,
    /// Whether verification passed, as 0/1 (combine with
    /// [`Reduction::Frac`] for a `valid/trials` column or
    /// [`Reduction::Mean`] for a rate).
    Valid,
    /// Maximum reliable degree Δ of the record's network.
    MaxDegree,
    /// Channel collisions (records with engine metrics only).
    Collisions,
    /// Message deliveries (records with engine metrics only).
    Deliveries,
    /// Winners in the final structure (τ-CCDS records only).
    Winners,
    /// MIS nodes in the final structure (CCDS records only).
    MisSize,
    /// Maximum explorations by any MIS node (CCDS records only).
    MaxExplorations,
    /// A named scalar from the record's `extras`.
    Extra {
        /// The extra's key, e.g. `"max_latency"`.
        key: String,
    },
}

impl MetricSource {
    /// The metric's value for one record (`None` = record doesn't carry
    /// this source). `include_invalid` controls whether an unsolved
    /// record contributes its round budget to [`MetricSource::SolveRound`]
    /// (the pre-PR-4 behavior) or is skipped.
    fn value(&self, rec: &RunRecord, include_invalid: bool) -> Option<f64> {
        match self {
            MetricSource::SolveRound => match rec.solve_round {
                Some(r) => Some(r as f64),
                None if include_invalid => Some(rec.rounds_executed as f64),
                None => None,
            },
            MetricSource::RoundsExecuted => Some(rec.rounds_executed as f64),
            MetricSource::ScheduleTotal => rec.schedule_total.map(|v| v as f64),
            MetricSource::Valid => Some(f64::from(rec.valid)),
            MetricSource::MaxDegree => Some(rec.max_degree as f64),
            MetricSource::Collisions => rec.metrics.map(|m| m.collisions as f64),
            MetricSource::Deliveries => rec.metrics.map(|m| m.deliveries as f64),
            MetricSource::Winners => rec.winners.map(|v| v as f64),
            MetricSource::MisSize => rec.mis_size.map(|v| v as f64),
            MetricSource::MaxExplorations => rec.max_explorations.map(|v| v as f64),
            MetricSource::Extra { key } => rec.extra(key),
        }
    }

    /// Default column-label stem.
    fn label(&self) -> String {
        match self {
            MetricSource::SolveRound => "solve rounds".to_string(),
            MetricSource::RoundsExecuted => "rounds".to_string(),
            MetricSource::ScheduleTotal => "schedule rounds".to_string(),
            MetricSource::Valid => "valid".to_string(),
            MetricSource::MaxDegree => "Delta".to_string(),
            MetricSource::Collisions => "collisions".to_string(),
            MetricSource::Deliveries => "deliveries".to_string(),
            MetricSource::Winners => "winners".to_string(),
            MetricSource::MisSize => "mis size".to_string(),
            MetricSource::MaxExplorations => "max explorations".to_string(),
            MetricSource::Extra { key } => key.clone(),
        }
    }
}

/// How a metric's observations reduce to one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reduction {
    /// Number of observations (records carrying the source).
    Count,
    /// Arithmetic mean.
    Mean,
    /// Sample standard deviation (n−1).
    Stddev,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median (exact up to [`crate::stats::EXACT_QUANTILE_CAP`] samples).
    Median,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// `mean ± half-width` of the normal-approximation 95% confidence
    /// interval.
    Ci95,
    /// Integer sum over count, rendered `sum/count` — the `valid/trials`
    /// column shape for 0/1 sources.
    Frac,
}

impl Reduction {
    /// Default column-label prefix composed with the source stem.
    fn label(self, source: &MetricSource) -> String {
        let stem = source.label();
        match self {
            Reduction::Count => "trials".to_string(),
            Reduction::Mean => format!("mean {stem}"),
            Reduction::Stddev => format!("sd {stem}"),
            Reduction::Min => format!("min {stem}"),
            Reduction::Max => format!("max {stem}"),
            Reduction::Median => format!("median {stem}"),
            Reduction::P90 => format!("p90 {stem}"),
            Reduction::P99 => format!("p99 {stem}"),
            Reduction::Ci95 => format!("{stem} (mean ± 95% CI)"),
            Reduction::Frac => stem,
        }
    }
}

/// Denominator applied to a metric's *reduced* value, keyed by the group's
/// network size `n` — the paper's scaling yardsticks. Meaningful when the
/// grouping includes [`GroupKey::N`] (mixed-`n` groups divide by the
/// group's largest `n`). Normalized cells render with 3 decimals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Normalizer {
    /// `⌈log₂ n⌉³` — the recurring round-complexity bound.
    Log3N,
    /// `⌈log₂ n⌉`.
    Log2N,
    /// `n`.
    N,
}

impl Normalizer {
    fn divisor(self, n: usize) -> f64 {
        let l = f64::from(ceil_log2(n));
        match self {
            Normalizer::Log3N => l * l * l,
            Normalizer::Log2N => l,
            Normalizer::N => n as f64,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Normalizer::Log3N => "/log^3 n",
            Normalizer::Log2N => "/log2 n",
            Normalizer::N => "/n",
        }
    }
}

/// One metric: a source, the reductions to print (one column each), an
/// optional normalizer, and an optional column-label override (applied
/// verbatim when a single reduction is requested, as a prefix otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSpec {
    /// The record field to read.
    pub source: MetricSource,
    /// The reductions to print, one column per entry.
    pub reductions: Vec<Reduction>,
    /// Optional denominator in the group's `n`.
    pub per: Option<Normalizer>,
    /// Optional column-label override.
    pub label: Option<String>,
    /// Whether records without a real observation still contribute a
    /// substitute value — today that is [`MetricSource::SolveRound`]
    /// falling back to the round budget for unsolved runs. Default
    /// (`None`/`Some(false)`): excluded, so timed-out and failed-build
    /// records cannot drag a mean toward the cap. Absent in older spec
    /// files — they parse unchanged.
    pub include_invalid: Option<bool>,
}

impl MetricSpec {
    /// A metric with default labels and no normalizer.
    pub fn new(source: MetricSource, reductions: Vec<Reduction>) -> Self {
        MetricSpec {
            source,
            reductions,
            per: None,
            label: None,
            include_invalid: None,
        }
    }

    /// [`MetricSpec::new`] with a column-label override.
    pub fn labeled(source: MetricSource, reductions: Vec<Reduction>, label: &str) -> Self {
        MetricSpec {
            source,
            reductions,
            per: None,
            label: Some(label.to_string()),
            include_invalid: None,
        }
    }

    /// The effective invalid-record policy (absent = exclude).
    fn include_invalid(&self) -> bool {
        self.include_invalid.unwrap_or(false)
    }
}

/// The x axis of a [`SlopeSpec`] fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlopeAxis {
    /// The group's network size `n` — the fitted exponent is `p` in
    /// `y ≈ c·n^p`.
    N,
    /// `⌈log₂ n⌉` — the fitted exponent is the *polylog* degree, the shape
    /// the paper's `O(log³ n)` bounds predict.
    Log2N,
}

/// A measured scaling exponent appended to the table caption: the log-log
/// slope (via [`loglog_exponent`]) of a metric's per-group **mean**
/// (pre-normalizer) against the group's `n` axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlopeSpec {
    /// The fit's x axis.
    pub x: SlopeAxis,
    /// Index into [`AggregateSpec::metrics`] of the fitted metric.
    pub metric: usize,
    /// Caption suffix; every `{p}` is replaced by the exponent formatted
    /// to two decimals.
    pub caption: String,
}

/// The declarative aggregation: group-by keys, metric columns, optional
/// scaling fit. Lives in [`ScenarioSpec::aggregate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Group-by keys, outermost first (empty = one global row).
    pub group_by: Vec<GroupKey>,
    /// Metric columns.
    pub metrics: Vec<MetricSpec>,
    /// Optional measured-exponent caption suffix.
    pub slope: Option<SlopeSpec>,
}

impl Default for AggregateSpec {
    /// The house style for user specs with no explicit aggregation: one
    /// row per grid cell (topology × adversary × workload) with trial
    /// count, valid fraction, and solve-round statistics. The count
    /// column opts into `include_invalid` so "trials" really counts every
    /// record; the spread statistics keep the default exclusion, so
    /// unsolved runs never drag them toward the round budget.
    fn default() -> Self {
        AggregateSpec {
            group_by: vec![GroupKey::Topology, GroupKey::Adversary, GroupKey::Workload],
            metrics: vec![
                MetricSpec {
                    source: MetricSource::SolveRound,
                    reductions: vec![Reduction::Count],
                    per: None,
                    label: None,
                    include_invalid: Some(true),
                },
                MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac]),
                MetricSpec::new(
                    MetricSource::SolveRound,
                    vec![
                        Reduction::Ci95,
                        Reduction::Median,
                        Reduction::Min,
                        Reduction::Max,
                    ],
                ),
            ],
            slope: None,
        }
    }
}

/// One group's accumulated state.
struct Group {
    /// Rendered key values, in `group_by` order.
    key: Vec<String>,
    /// Largest `n` among the group's records (normalizer/slope input).
    n_max: usize,
    /// One accumulator per metric.
    accs: Vec<StreamingSummary>,
}

/// One group of an [`AggregateSnapshot`]: the rendered key, the group's
/// `n`, and one lossless accumulator per metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSnapshot {
    /// Rendered key values, in `group_by` order.
    pub key: Vec<String>,
    /// Largest `n` among the group's records.
    pub n_max: usize,
    /// One accumulator per metric, in [`AggregateSpec::metrics`] order.
    pub accs: Vec<StreamingSummary>,
}

/// A serializable, **lossless** image of an [`AggregateState`]: groups in
/// first-encounter (row) order, each with its accumulators. Floats persist
/// as bit patterns (see [`crate::stats`]), so
/// [`AggregateState::restore`]d state is indistinguishable from the
/// original — a checkpointed sweep resumes, and a shard's partial merges,
/// with **byte-identical** rendered output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSnapshot {
    /// The groups, in first-encounter (= row) order.
    pub groups: Vec<GroupSnapshot>,
}

/// The incremental group-by fold behind [`render_aggregate`]: records push
/// in one at a time (in unit order) and the grouped table renders at any
/// point. Memory is O(groups), not O(records) — the accumulators are the
/// bounded [`StreamingSummary`]s — which is what lets the streaming sink
/// ([`crate::sink::StreamAggregate`]) aggregate a grid that never
/// materializes.
///
/// Feeding the same records in the same order as the materialized fold
/// produces a **byte-identical** table: both paths are this exact state
/// machine (the golden streaming test pins it).
pub struct AggregateState {
    agg: AggregateSpec,
    groups: Vec<Group>,
    /// Group index by rendered key — O(1) lookup per record, so folding a
    /// grid of millions of records over thousands of groups stays linear.
    /// The `groups` vector still owns first-encounter (row) order.
    by_key: std::collections::HashMap<Vec<String>, usize>,
}

impl AggregateState {
    /// An empty fold for `agg`.
    pub fn new(agg: AggregateSpec) -> Self {
        AggregateState {
            agg,
            groups: Vec::new(),
            by_key: std::collections::HashMap::new(),
        }
    }

    /// Folds one record in. Groups appear in first-encounter order, which
    /// is the planner's unit order — so the row order is deterministic and
    /// serial/parallel identical.
    pub fn push(&mut self, spec: &ScenarioSpec, unit: &TrialUnit, rec: &RunRecord) {
        let key: Vec<String> = self
            .agg
            .group_by
            .iter()
            .map(|k| k.value(spec, unit.topo, unit.adv, unit.work, rec))
            .collect();
        let group = match self.by_key.get(&key) {
            Some(&i) => &mut self.groups[i],
            None => {
                self.by_key.insert(key.clone(), self.groups.len());
                self.groups.push(Group {
                    key,
                    n_max: 0,
                    accs: vec![StreamingSummary::new(); self.agg.metrics.len()],
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        group.n_max = group.n_max.max(rec.n);
        for (metric, acc) in self.agg.metrics.iter().zip(&mut group.accs) {
            if let Some(v) = metric.source.value(rec, metric.include_invalid()) {
                acc.push(v);
            }
        }
    }

    /// A lossless serializable image of the fold (see
    /// [`AggregateSnapshot`]).
    pub fn snapshot(&self) -> AggregateSnapshot {
        AggregateSnapshot {
            groups: self
                .groups
                .iter()
                .map(|g| GroupSnapshot {
                    key: g.key.clone(),
                    n_max: g.n_max,
                    accs: g.accs.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds the fold from a snapshot taken under the same `agg` spec.
    /// The restored state is indistinguishable from the original: pushing
    /// the remaining records produces exactly the table the uninterrupted
    /// fold would have.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose shape disagrees with `agg` (wrong
    /// accumulator or key count) — the symptom of restoring against a
    /// different aggregation than the one that saved.
    pub fn restore(agg: AggregateSpec, snap: AggregateSnapshot) -> Result<Self, String> {
        let mut state = AggregateState::new(agg);
        for (i, g) in snap.groups.into_iter().enumerate() {
            if g.accs.len() != state.agg.metrics.len() {
                return Err(format!(
                    "group {i}: {} accumulators for {} metrics — snapshot from a different \
                     aggregate spec",
                    g.accs.len(),
                    state.agg.metrics.len()
                ));
            }
            if g.key.len() != state.agg.group_by.len() {
                return Err(format!(
                    "group {i}: {} key parts for {} group-by keys — snapshot from a different \
                     aggregate spec",
                    g.key.len(),
                    state.agg.group_by.len()
                ));
            }
            if state.by_key.contains_key(&g.key) {
                return Err(format!("group {i}: duplicate key {:?}", g.key));
            }
            state.by_key.insert(g.key.clone(), state.groups.len());
            state.groups.push(Group {
                key: g.key,
                n_max: g.n_max,
                accs: g.accs,
            });
        }
        Ok(state)
    }

    /// Folds a later slice's snapshot into this state. Merging shard
    /// partials **in shard (= index) order** replays each group's raw
    /// samples, so the combined state — and therefore the rendered table —
    /// is bit-for-bit the single-process fold (while per-shard groups stay
    /// below [`crate::stats::EXACT_QUANTILE_CAP`] observations; see
    /// [`StreamingSummary::merge`]). Groups keep first-encounter order
    /// across the concatenation, so row order is preserved too.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose shape disagrees with this state's spec.
    pub fn merge(&mut self, snap: &AggregateSnapshot) -> Result<(), String> {
        for (i, g) in snap.groups.iter().enumerate() {
            if g.accs.len() != self.agg.metrics.len() || g.key.len() != self.agg.group_by.len() {
                return Err(format!(
                    "group {i}: snapshot shape disagrees with the aggregate spec"
                ));
            }
            let group = match self.by_key.get(&g.key) {
                Some(&at) => &mut self.groups[at],
                None => {
                    self.by_key.insert(g.key.clone(), self.groups.len());
                    self.groups.push(Group {
                        key: g.key.clone(),
                        n_max: 0,
                        accs: vec![StreamingSummary::new(); self.agg.metrics.len()],
                    });
                    self.groups.last_mut().expect("just pushed")
                }
            };
            group.n_max = group.n_max.max(g.n_max);
            for (acc, theirs) in group.accs.iter_mut().zip(&g.accs) {
                acc.merge(theirs);
            }
        }
        Ok(())
    }

    /// Renders the fold's current state as the grouped table.
    pub fn table(&self, spec: &ScenarioSpec) -> Table {
        let agg = &self.agg;
        let mut header: Vec<String> = agg
            .group_by
            .iter()
            .map(|k| k.header().to_string())
            .collect();
        for metric in &agg.metrics {
            for &red in &metric.reductions {
                header.push(column_label(metric, red));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&spec.id, &spec.caption, &header_refs);
        for group in &self.groups {
            let mut row = group.key.clone();
            for (metric, acc) in agg.metrics.iter().zip(&group.accs) {
                let div = metric.per.map_or(1.0, |p| p.divisor(group.n_max.max(1)));
                for &red in &metric.reductions {
                    row.push(cell(red, acc, div, metric.per.is_some()));
                }
            }
            table.push(row);
        }
        if let Some(slope) = &agg.slope {
            let (fit, dropped) = slope_exponent(slope, &self.groups);
            if let Some(fit) = fit {
                table
                    .caption
                    .push_str(&slope.caption.replace("{p}", &format!("{fit:.2}")));
            }
            if dropped > 0 {
                table.caption.push_str(&dropped_points_note(dropped));
            }
        }
        table
    }
}

/// Folds the run's records into the grouped table — the materialized
/// wrapper over [`AggregateState`] (one `push` per record in unit order,
/// then render).
pub fn render_aggregate(spec: &ScenarioSpec, run: &ScenarioRun, agg: &AggregateSpec) -> Table {
    let mut state = AggregateState::new(agg.clone());
    for (unit, recs) in run.units.iter().zip(&run.records) {
        for rec in recs {
            state.push(spec, unit, rec);
        }
    }
    state.table(spec)
}

/// The fitted log-log exponent across groups (`None` when the fit is
/// degenerate — fewer than two usable groups, metric index out of range)
/// plus the number of points the positivity filter dropped. A non-zero
/// count means the exponent was fitted on a subset — the caption says so
/// rather than presenting it as a fit over every group.
fn slope_exponent(slope: &SlopeSpec, groups: &[Group]) -> (Option<f64>, usize) {
    let points: Vec<(f64, f64)> = groups
        .iter()
        .filter(|g| g.n_max > 0)
        .filter_map(|g| {
            let acc = g.accs.get(slope.metric)?;
            let x = match slope.x {
                SlopeAxis::N => g.n_max as f64,
                SlopeAxis::Log2N => f64::from(ceil_log2(g.n_max)),
            };
            Some((x, acc.mean()))
        })
        .collect();
    loglog_exponent_counting(&points)
}

/// A metric column's header: the label override verbatim (prefixed per
/// reduction when several are requested), or the generated
/// `reduction + source` stem with the normalizer's suffix.
fn column_label(metric: &MetricSpec, red: Reduction) -> String {
    match (&metric.label, metric.reductions.len()) {
        (Some(label), 1) => label.clone(),
        (Some(label), _) => format!("{label} {}", red.label(&metric.source)),
        (None, _) => {
            let base = red.label(&metric.source);
            match metric.per {
                Some(per) if red != Reduction::Count && red != Reduction::Frac => {
                    format!("{base}{}", per.suffix())
                }
                _ => base,
            }
        }
    }
}

/// One reduced cell. Unnormalized values print with 1 decimal (integral
/// min/max as integers); normalized values with 3, matching the bespoke
/// renderers' ratio columns. Spread statistics (stddev, 95% CI) need at
/// least two observations — below that they render as [`ABSENT`] (and the
/// CSV export omits the field) instead of leaking a NaN or presenting a
/// single sample as a spread.
fn cell(red: Reduction, acc: &StreamingSummary, div: f64, normalized: bool) -> String {
    let fmt = |v: f64| if normalized { f3(v) } else { f1(v) };
    let int_or = |v: f64| {
        if !normalized && v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
            format!("{}", v as i64)
        } else {
            fmt(v)
        }
    };
    match red {
        Reduction::Count => acc.count().to_string(),
        Reduction::Mean => fmt(acc.mean() / div),
        Reduction::Stddev => {
            if acc.count() < 2 {
                ABSENT.to_string()
            } else {
                fmt(acc.stddev() / div)
            }
        }
        Reduction::Min => int_or(acc.min() / div),
        Reduction::Max => int_or(acc.max() / div),
        Reduction::Median => fmt(acc.median() / div),
        Reduction::P90 => fmt(acc.p90() / div),
        Reduction::P99 => fmt(acc.p99() / div),
        Reduction::Ci95 => {
            if acc.count() < 2 {
                ABSENT.to_string()
            } else {
                format!("{} ± {}", fmt(acc.mean() / div), fmt(acc.ci95_half() / div))
            }
        }
        // `sum()` is `mean·count`, which for 0/1 streams can land a hair
        // below the true integer (e.g. one success in ten → 0.9999…);
        // round instead of truncating.
        Reduction::Frac => format!("{}/{}", acc.sum().round() as u64, acc.count()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        run_spec, NestOrder, RenderKind, ScenarioSpec, SeedPolicy, StopCondition, TopologyEntry,
        WorkloadEntry,
    };
    use radio_sim::spec::{AdversaryKind, TopologyKind};
    use radio_structures::runner::AlgoKind;

    fn mis_spec(trials: u64) -> ScenarioSpec {
        ScenarioSpec {
            id: "AGG".to_string(),
            caption: "aggregate unit test".to_string(),
            render: RenderKind::Aggregate,
            topologies: vec![
                TopologyEntry::new(TopologyKind::Clique { n: 6 }),
                TopologyEntry::new(TopologyKind::GeometricDense { n: 16 }),
            ],
            adversaries: vec![
                AdversaryKind::ReliableOnly,
                AdversaryKind::Random { p: 0.5 },
            ],
            workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
            trials,
            nest: NestOrder::TopologyMajor,
            seeds: SeedPolicy {
                net_base: 500,
                run_base: 9,
            },
            stop: StopCondition::Default,
            aggregate: None,
        }
    }

    #[test]
    fn default_aggregate_groups_by_grid_cell() {
        let spec = mis_spec(3);
        let run = run_spec(&spec);
        let table = render_aggregate(&spec, &run, &AggregateSpec::default());
        // 2 topologies × 2 adversaries × 1 workload = 4 rows, trials folded.
        assert_eq!(table.rows.len(), 4);
        assert!(table.header.starts_with(&[
            "topology".to_string(),
            "adversary".to_string(),
            "workload".to_string()
        ]));
        // Count column reports the 3 trials per cell.
        let count_col = table.header.iter().position(|h| h == "trials").unwrap();
        assert!(table.rows.iter().all(|r| r[count_col] == "3"));
        // Frac column is k/3.
        let valid_col = table.header.iter().position(|h| h == "valid").unwrap();
        assert!(table.rows.iter().all(|r| r[valid_col].ends_with("/3")));
    }

    #[test]
    fn group_by_n_with_normalizer_and_slope() {
        let mut spec = mis_spec(2);
        spec.aggregate = Some(AggregateSpec {
            group_by: vec![GroupKey::N],
            metrics: vec![
                MetricSpec::new(MetricSource::SolveRound, vec![Reduction::Count]),
                MetricSpec {
                    source: MetricSource::SolveRound,
                    reductions: vec![Reduction::Mean],
                    per: Some(Normalizer::Log3N),
                    label: None,
                    include_invalid: None,
                },
            ],
            slope: Some(SlopeSpec {
                x: SlopeAxis::Log2N,
                metric: 1,
                caption: " [p = {p}]".to_string(),
            }),
        });
        let run = run_spec(&spec);
        let table = crate::scenario::render(&spec, &run);
        // Two distinct n values → two rows; both adversaries fold in.
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.header[0], "n");
        assert_eq!(table.header[2], "mean solve rounds/log^3 n");
        assert!(table.rows.iter().all(|r| r[1] == "4"), "2 advs × 2 trials");
        assert!(table.caption.contains("[p = "));
    }

    #[test]
    fn generic_render_honors_aggregate_block() {
        let mut spec = mis_spec(2);
        spec.render = RenderKind::Generic;
        spec.aggregate = Some(AggregateSpec::default());
        let run = run_spec(&spec);
        let table = crate::scenario::render(&spec, &run);
        assert_eq!(table.rows.len(), 4, "aggregated, not one row per record");
        spec.aggregate = None;
        let raw = crate::scenario::render(&spec, &run);
        assert_eq!(raw.rows.len(), 8, "raw generic rows without the block");
    }

    #[test]
    fn aggregate_spec_roundtrips_serde() {
        let agg = AggregateSpec {
            group_by: vec![GroupKey::N, GroupKey::Adversary],
            metrics: vec![
                MetricSpec::labeled(MetricSource::MaxDegree, vec![Reduction::Max], "Delta"),
                MetricSpec {
                    source: MetricSource::Extra {
                        key: "max_latency".to_string(),
                    },
                    reductions: vec![Reduction::Mean, Reduction::P90, Reduction::Ci95],
                    per: Some(Normalizer::Log3N),
                    label: None,
                    include_invalid: Some(true),
                },
            ],
            slope: Some(SlopeSpec {
                x: SlopeAxis::N,
                metric: 1,
                caption: " [{p}]".to_string(),
            }),
        };
        let json = serde_json::to_string_pretty(&agg).expect("serializes");
        let back: AggregateSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, agg);
    }

    #[test]
    fn frac_rounds_the_reconstructed_sum() {
        // One success in ten: the Welford mean is 0.9999999999999999·1/10ths
        // shy of exact, so a truncating cast would render "0/10".
        let mut acc = StreamingSummary::new();
        for i in 0..10 {
            acc.push(f64::from(u8::from(i == 5)));
        }
        assert_eq!(cell(Reduction::Frac, &acc, 1.0, false), "1/10");
    }

    /// A synthetic run: one unit per record, records supplied directly.
    fn synthetic_run(
        _spec: &ScenarioSpec,
        records: Vec<RunRecord>,
    ) -> crate::scenario::ScenarioRun {
        crate::scenario::ScenarioRun {
            units: records
                .iter()
                .enumerate()
                .map(|(i, _)| crate::scenario::TrialUnit {
                    topo: 0,
                    adv: 0,
                    work: 0,
                    trial: i as u64,
                    net_seed: i as u64,
                    run_seed: i as u64,
                    det_seed: None,
                })
                .collect(),
            records: records.into_iter().map(|r| vec![r]).collect(),
            wall_s: 0.0,
        }
    }

    fn solve_record(n: usize, solve_round: Option<u64>, rounds_executed: u64) -> RunRecord {
        let mut rec = RunRecord::blank("mis", n, 3);
        rec.valid = solve_round.is_some();
        rec.solve_round = solve_round;
        rec.rounds_executed = rounds_executed;
        rec
    }

    #[test]
    fn unsolved_records_are_excluded_from_solve_round_by_default() {
        // Two solved runs (10, 20 rounds) and one that timed out at the
        // 100-round cap: the pre-fix fold substituted the cap, dragging
        // the mean from 15.0 to 43.3.
        let spec = mis_spec(3);
        let run = synthetic_run(
            &spec,
            vec![
                solve_record(6, Some(10), 10),
                solve_record(6, Some(20), 20),
                solve_record(6, None, 100),
            ],
        );
        let agg = AggregateSpec {
            group_by: vec![],
            metrics: vec![MetricSpec::new(
                MetricSource::SolveRound,
                vec![Reduction::Count, Reduction::Mean],
            )],
            slope: None,
        };
        let table = render_aggregate(&spec, &run, &agg);
        assert_eq!(table.rows[0][0], "2", "the timed-out record is excluded");
        assert_eq!(table.rows[0][1], "15.0", "mean over real solves only");

        // The explicit opt-in restores the historical budget-substitution.
        let mut legacy = agg.clone();
        legacy.metrics[0].include_invalid = Some(true);
        let table = render_aggregate(&spec, &run, &legacy);
        assert_eq!(table.rows[0][0], "3");
        assert_eq!(table.rows[0][1], "43.3");
    }

    #[test]
    fn cap_forced_unsolved_runs_do_not_report_the_budget_as_a_mean() {
        // End-to-end: a 1-round cap no MIS run can meet. The pre-fix
        // default rendered "1.0" — the cap, not a measurement.
        let mut spec = mis_spec(2);
        spec.stop = crate::scenario::StopCondition::Rounds { max: 1 };
        spec.aggregate = Some(AggregateSpec {
            group_by: vec![GroupKey::Topology],
            metrics: vec![MetricSpec::new(
                MetricSource::SolveRound,
                vec![Reduction::Count, Reduction::Mean],
            )],
            slope: None,
        });
        let run = run_spec(&spec);
        assert!(
            run.records.iter().flatten().all(|r| !r.solved()),
            "the 1-round cap must leave every run unsolved"
        );
        let table = crate::scenario::render(&spec, &run);
        for row in &table.rows {
            assert_eq!(row[1], "0", "no solve-round observations");
            assert_eq!(row[2], ABSENT, "no mean, rather than the cap");
        }
        // Opting in reports the budget explicitly.
        spec.aggregate.as_mut().expect("set above").metrics[0].include_invalid = Some(true);
        let table = crate::scenario::render(&spec, &run);
        for row in &table.rows {
            assert_eq!(row[1], "4", "2 adversaries × 2 trials");
            assert_eq!(row[2], "1.0", "the cap, now labeled by opt-in");
        }
    }

    #[test]
    fn single_observation_groups_dash_spread_cells() {
        // One record per group: stddev and the 95% CI need two
        // observations, so both cells must be absent — not NaN, not a
        // single sample presented as a spread.
        let spec = mis_spec(1);
        let run = synthetic_run(&spec, vec![solve_record(6, Some(12), 12)]);
        let agg = AggregateSpec {
            group_by: vec![],
            metrics: vec![MetricSpec::new(
                MetricSource::SolveRound,
                vec![Reduction::Mean, Reduction::Stddev, Reduction::Ci95],
            )],
            slope: None,
        };
        let table = render_aggregate(&spec, &run, &agg);
        assert_eq!(table.rows[0], vec!["12.0", ABSENT, ABSENT]);
        // The CSV omits the absent cells entirely (empty fields), so
        // spreadsheets see missing values instead of dash strings.
        assert_eq!(
            table.to_csv(),
            "mean solve rounds,sd solve rounds,solve rounds (mean ± 95% CI)\n12.0,,\n"
        );
        // Two observations bring both statistics back.
        let run = synthetic_run(
            &spec,
            vec![solve_record(6, Some(10), 10), solve_record(6, Some(14), 14)],
        );
        let table = render_aggregate(&spec, &run, &agg);
        assert_eq!(table.rows[0][0], "12.0");
        assert_ne!(table.rows[0][1], ABSENT);
        assert!(table.rows[0][2].contains(" ± "));
    }

    #[test]
    fn snapshot_restore_continues_the_fold_byte_identically() {
        let spec = mis_spec(4);
        let run = run_spec(&spec);
        let agg = AggregateSpec::default();
        // Uninterrupted fold.
        let whole = render_aggregate(&spec, &run, &agg);
        // Interrupt after every prefix of the unit stream: snapshot,
        // round-trip through JSON, restore, fold the rest.
        let pairs: Vec<_> = run.units.iter().zip(&run.records).collect();
        for cut in 0..=pairs.len() {
            let mut state = AggregateState::new(agg.clone());
            for (unit, recs) in &pairs[..cut] {
                recs.iter().for_each(|r| state.push(&spec, unit, r));
            }
            let json = serde_json::to_string(&state.snapshot()).expect("snapshot serializes");
            let snap: AggregateSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            let mut resumed = AggregateState::restore(agg.clone(), snap).expect("shape matches");
            for (unit, recs) in &pairs[cut..] {
                recs.iter().for_each(|r| resumed.push(&spec, unit, r));
            }
            assert_eq!(
                resumed.table(&spec).render(),
                whole.render(),
                "resume at unit {cut} drifted"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let spec = mis_spec(2);
        let run = run_spec(&spec);
        let mut state = AggregateState::new(AggregateSpec::default());
        for (unit, recs) in run.units.iter().zip(&run.records) {
            recs.iter().for_each(|r| state.push(&spec, unit, r));
        }
        let snap = state.snapshot();
        // Default spec has 3 metrics; a single-metric spec must refuse it.
        let skinny = AggregateSpec {
            group_by: vec![GroupKey::Topology, GroupKey::Adversary, GroupKey::Workload],
            metrics: vec![MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac])],
            slope: None,
        };
        assert!(AggregateState::restore(skinny.clone(), snap.clone()).is_err());
        let mut restored = AggregateState::restore(AggregateSpec::default(), snap.clone())
            .expect("matching shape restores");
        assert!(restored.merge(&snap).is_ok());
        let mut mismatched = AggregateState::new(skinny);
        assert!(mismatched.merge(&snap).is_err());
    }

    #[test]
    fn shard_merge_in_order_equals_single_fold() {
        let spec = mis_spec(3);
        let run = run_spec(&spec);
        let agg = AggregateSpec::default();
        let whole = render_aggregate(&spec, &run, &agg);
        let pairs: Vec<_> = run.units.iter().zip(&run.records).collect();
        for shards in [1usize, 2, 3, 5, pairs.len()] {
            // Contiguous shard ranges in index order.
            let mut snaps = Vec::new();
            for s in 0..shards {
                let (lo, hi) = (s * pairs.len() / shards, (s + 1) * pairs.len() / shards);
                let mut state = AggregateState::new(agg.clone());
                for (unit, recs) in &pairs[lo..hi] {
                    recs.iter().for_each(|r| state.push(&spec, unit, r));
                }
                snaps.push(state.snapshot());
            }
            let mut folded = AggregateState::new(agg.clone());
            for snap in &snaps {
                folded.merge(snap).expect("shapes match");
            }
            assert_eq!(
                folded.table(&spec).render(),
                whole.render(),
                "{shards}-shard merge drifted"
            );
        }
    }

    #[test]
    fn slope_caption_reports_dropped_nonpositive_points() {
        // Three groups (n = 2, 4, 8); the n = 8 group's metric mean is 0,
        // so the log-log fit silently ran on two points before the fix.
        let spec = mis_spec(1);
        let mut records = Vec::new();
        for (n, v) in [(2usize, 4.0), (4, 16.0), (8, 0.0)] {
            let mut rec = RunRecord::blank("mis", n, 1);
            rec.valid = true;
            rec.push_extra("m", v);
            records.push(rec);
        }
        let run = synthetic_run(&spec, records);
        let mut agg = AggregateSpec {
            group_by: vec![GroupKey::N],
            metrics: vec![MetricSpec::new(
                MetricSource::Extra { key: "m".into() },
                vec![Reduction::Mean],
            )],
            slope: Some(SlopeSpec {
                x: SlopeAxis::N,
                metric: 0,
                caption: " [p = {p}]".to_string(),
            }),
        };
        let table = render_aggregate(&spec, &run, &agg);
        assert!(table.caption.contains("[p = "), "{}", table.caption);
        assert!(
            table.caption.contains(DROPPED_POINTS_MARKER)
                && table.caption.contains("1 non-positive point "),
            "no dropped-point note in: {}",
            table.caption
        );
        // All points positive: no note.
        agg.slope = Some(SlopeSpec {
            x: SlopeAxis::N,
            metric: 0,
            caption: " [p = {p}]".to_string(),
        });
        let run = synthetic_run(
            &spec,
            [(2usize, 4.0), (4, 16.0), (8, 64.0)]
                .into_iter()
                .map(|(n, v)| {
                    let mut rec = RunRecord::blank("mis", n, 1);
                    rec.valid = true;
                    rec.push_extra("m", v);
                    rec
                })
                .collect(),
        );
        let table = render_aggregate(&spec, &run, &agg);
        assert!(!table.caption.contains(DROPPED_POINTS_MARKER));
    }

    #[test]
    fn missing_sources_are_skipped_not_zeroed() {
        let spec = mis_spec(2);
        let run = run_spec(&spec);
        let agg = AggregateSpec {
            group_by: vec![GroupKey::Topology],
            metrics: vec![
                // MIS records carry no schedule_total: count must be 0.
                MetricSpec::new(MetricSource::ScheduleTotal, vec![Reduction::Count]),
                MetricSpec::new(MetricSource::SolveRound, vec![Reduction::Count]),
            ],
            slope: None,
        };
        let table = render_aggregate(&spec, &run, &agg);
        for row in &table.rows {
            assert_eq!(row[1], "0");
            assert_eq!(row[2], "4");
        }
    }
}
