//! Data-parallel trial execution with serial-identical results.
//!
//! Experiments are embarrassingly parallel across trials: every trial
//! derives its own seeds (network seed, engine seed, adversary seed) from
//! the trial index, so trials share no mutable state. [`run_trials`] fans
//! them out over rayon and returns results **in trial order**, which makes
//! parallel sweeps bit-identical to the serial `for s in 0..trials` loop
//! they replace — a property the determinism regression test pins down.
//!
//! Parallelism is sized by the ambient [`rayon::ThreadPool`] when one is
//! installed (see [`run_trials_in`]), falling back to `RAYON_NUM_THREADS`
//! and then the machine's parallelism. Prefer a scoped pool over the env
//! var: pools are per-run values, so concurrent sweeps in one process
//! don't race on global state. `RAYON_NUM_THREADS=1` still forces serial
//! execution when no pool is installed (e.g. when profiling a trial).

use rayon::prelude::*;
pub use rayon::ThreadPool;

/// Runs `trials` independent trials of `f` in parallel, returning
/// `[f(0), f(1), …]` exactly as the serial loop would.
///
/// `f` must derive all randomness from its trial index; it is executed
/// once per index, in unspecified temporal order, with results reassembled
/// by index.
///
/// # Examples
///
/// ```
/// let parallel = radio_bench::parallel::run_trials(16, |t| t * t);
/// let serial: Vec<u64> = (0..16).map(|t| t * t).collect();
/// assert_eq!(parallel, serial);
/// ```
pub fn run_trials<R, F>(trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    (0..trials).into_par_iter().map(f).collect()
}

/// [`run_trials`] on an explicit scoped pool: the fan-out uses the pool's
/// worker count instead of the ambient/global configuration. Results are
/// identical to [`run_trials`] (and to the serial loop) — only the degree
/// of parallelism changes.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_in, ThreadPool};
/// let pool = ThreadPool::new(2);
/// assert_eq!(run_trials_in(&pool, 8, |t| t + 1), run_trials(8, |t| t + 1));
/// ```
pub fn run_trials_in<R, F>(pool: &ThreadPool, trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    pool.install(|| run_trials(trials, f))
}

/// [`run_trials`] in index-ordered chunks: executes `[0, trials)` as
/// consecutive windows of at most `chunk` indices, running each window in
/// parallel and handing its results — still in index order — to `consume`
/// before the next window starts. Peak memory is **O(chunk)**, not
/// O(trials), while the concatenation of all windows is bit-identical to
/// `run_trials(trials, f)` (and therefore to the serial loop): the same
/// `f(i)` runs for the same `i`, only the collection is windowed.
///
/// `consume` receives `(start_index, results)` per window and may fail
/// (e.g. an I/O sink); the first error stops the sweep and is returned.
/// Windows are never reordered, so a consumer that folds in arrival order
/// observes exactly the serial record stream.
///
/// # Panics
///
/// Panics if `chunk` is zero.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_chunked};
/// let mut streamed = Vec::new();
/// run_trials_chunked(10, 3, |t| t * t, |start, results| {
///     assert_eq!(start, streamed.len() as u64);
///     streamed.extend(results);
///     Ok::<(), std::convert::Infallible>(())
/// })
/// .unwrap();
/// assert_eq!(streamed, run_trials(10, |t| t * t));
/// ```
pub fn run_trials_chunked<R, E, F, S>(trials: u64, chunk: u64, f: F, consume: S) -> Result<(), E>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    run_trials_chunked_range(0..trials, chunk, f, consume)
}

/// [`run_trials_chunked`] over an arbitrary index slice `range` of a larger
/// grid: windows cover `[range.start, range.end)` in index order, so the
/// concatenation of the windows of consecutive ranges is exactly the
/// windows of the whole — the primitive behind resumable (`--resume`
/// continues at the checkpointed index) and sharded (`--shard i/m` runs
/// one contiguous slice) sweeps. `consume` still receives each window's
/// absolute start index.
///
/// # Panics
///
/// Panics if `chunk` is zero or the range is inverted.
pub fn run_trials_chunked_range<R, E, F, S>(
    range: std::ops::Range<u64>,
    chunk: u64,
    f: F,
    mut consume: S,
) -> Result<(), E>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert!(range.start <= range.end, "inverted index range");
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start.saturating_add(chunk));
        let results: Vec<R> = (start..end).into_par_iter().map(&f).collect();
        consume(start, results)?;
        start = end;
    }
    Ok(())
}

/// [`run_trials`] with shared per-batch context: consecutive indices whose
/// `key_of` values are equal (and `Some`) form a *batch*; `build` runs once
/// per batch — on the batch's first index — and every trial in the batch
/// receives a shared reference to the result. Trials whose key is `None`
/// never share (their context is `None`).
///
/// This is the struct-of-arrays primitive behind scenario sweeps: units
/// that differ only in their trial index freeze the same topology, so the
/// adjacency/bitmask rows are built once and read by the whole batch
/// instead of being rebuilt per trial.
///
/// The contract mirrors [`run_trials`]: results come back in index order,
/// and for any `key_of`/`build`, `f(ctx, i)` must equal what the unbatched
/// closure would produce for `i` — batching is a caching layer, never a
/// semantic one. Keys are computed serially (they must be cheap); contexts
/// are built in parallel across batches; trials then fan out in parallel
/// across the *whole* window, so one giant batch still uses every core.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_batched};
/// // Key: t / 4 (batches of 4); context: the key squared, built once.
/// let batched = run_trials_batched(
///     16,
///     |t| Some(t / 4),
///     |t| (t / 4) * (t / 4),
///     |ctx, t| ctx.copied().unwrap() + t,
/// );
/// assert_eq!(batched, run_trials(16, |t| (t / 4) * (t / 4) + t));
/// ```
pub fn run_trials_batched<K, C, R, KF, BF, F>(trials: u64, key_of: KF, build: BF, f: F) -> Vec<R>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
{
    batched_window(0..trials, &key_of, &build, &f)
}

/// [`run_trials_chunked_range`] with [`run_trials_batched`]'s shared-batch
/// execution inside each window. Batches are formed within a window only:
/// a run of equal keys spanning a window boundary rebuilds its context in
/// the next window, which costs one extra `build` but keeps windows
/// self-contained — so the record stream is bit-identical at any chunk
/// size, and resumable/sharded sweeps compose exactly as before.
///
/// # Panics
///
/// Panics if `chunk` is zero or the range is inverted.
pub fn run_trials_batched_chunked_range<K, C, R, E, KF, BF, F, S>(
    range: std::ops::Range<u64>,
    chunk: u64,
    key_of: KF,
    build: BF,
    f: F,
    mut consume: S,
) -> Result<(), E>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert!(range.start <= range.end, "inverted index range");
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start.saturating_add(chunk));
        let results = batched_window(start..end, &key_of, &build, &f);
        consume(start, results)?;
        start = end;
    }
    Ok(())
}

/// [`run_trials_batched`] with a *fused* fast path inside each shared
/// batch: for every run of ≥ 2 consecutive equal-keyed trials, `fuse(ctx,
/// start..end)` is offered the whole span first. Returning
/// `Some(results)` (exactly one result per index, in index order) replaces
/// the per-trial calls for that span — this is how scenario sweeps hand a
/// run of same-topology trials to the batched multi-trial engine, which
/// steps them in lockstep over shared bitmask rows. Returning `None`
/// declines, and every trial in the span runs through `f` as before.
///
/// The contract extends the batching one: for any span, `fuse` must
/// produce exactly what the per-trial `f` calls would — fusion is an
/// execution strategy, never a semantic change. Singleton and keyless
/// trials never consult `fuse`.
pub fn run_trials_batched_fused<K, C, R, KF, BF, FF, F>(
    trials: u64,
    key_of: KF,
    build: BF,
    fuse: FF,
    f: F,
) -> Vec<R>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    FF: Fn(&C, std::ops::Range<u64>) -> Option<Vec<R>> + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
{
    fused_window(0..trials, &key_of, &build, &fuse, &f)
}

/// [`run_trials_batched_chunked_range`] with [`run_trials_batched_fused`]'s
/// fused fast path inside each window. Fusion spans are windowed exactly
/// like batches (a run crossing a window boundary fuses per window), so
/// the record stream stays bit-identical at any chunk size and
/// resumable/sharded sweeps compose exactly as before.
///
/// # Panics
///
/// Panics if `chunk` is zero or the range is inverted.
#[allow(clippy::too_many_arguments)] // the chunked/batched/fused knob union
pub fn run_trials_batched_fused_chunked_range<K, C, R, E, KF, BF, FF, F, S>(
    range: std::ops::Range<u64>,
    chunk: u64,
    key_of: KF,
    build: BF,
    fuse: FF,
    f: F,
    mut consume: S,
) -> Result<(), E>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    FF: Fn(&C, std::ops::Range<u64>) -> Option<Vec<R>> + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert!(range.start <= range.end, "inverted index range");
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start.saturating_add(chunk));
        let results = fused_window(start..end, &key_of, &build, &fuse, &f);
        consume(start, results)?;
        start = end;
    }
    Ok(())
}

/// One batched window: group, build contexts, fan out (no fusion).
fn batched_window<K, C, R, KF, BF, F>(
    window: std::ops::Range<u64>,
    key_of: &KF,
    build: &BF,
    f: &F,
) -> Vec<R>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
{
    fused_window(window, key_of, build, &|_: &C, _| None, f)
}

/// One batched window with the fused fast path: group, build contexts,
/// offer each multi-trial shared run to `fuse`, fan the rest out.
fn fused_window<K, C, R, KF, BF, FF, F>(
    window: std::ops::Range<u64>,
    key_of: &KF,
    build: &BF,
    fuse: &FF,
    f: &F,
) -> Vec<R>
where
    K: PartialEq,
    C: Send + Sync,
    R: Send,
    KF: Fn(u64) -> Option<K>,
    BF: Fn(u64) -> C + Sync,
    FF: Fn(&C, std::ops::Range<u64>) -> Option<Vec<R>> + Sync,
    F: Fn(Option<&C>, u64) -> R + Sync,
{
    // Pass 1 (serial): split the window into maximal runs of equal Some
    // keys. `None`-keyed trials are their own context-less run.
    let mut runs: Vec<(u64, u64, bool)> = Vec::new(); // (start, end, shared)
    let mut prev: Option<K> = None;
    for i in window {
        let key = key_of(i);
        let extends = key.is_some() && key == prev;
        match runs.last_mut() {
            Some(run) if extends => run.1 = i + 1,
            _ => runs.push((i, i + 1, key.is_some())),
        }
        prev = key;
    }
    // Pass 2 (parallel across runs): build each shared run's context once,
    // from the run's first index.
    let contexts: Vec<Option<C>> = runs
        .par_iter()
        .map(|&(start, _, shared)| shared.then(|| build(start)))
        .collect();
    // Pass 3 (parallel across runs, then across each unfused run's
    // trials — rayon's work stealing keeps one giant run on every core):
    // multi-trial shared runs are offered to `fuse` whole; everything else
    // fans out per trial over the shared context.
    let spans: Vec<Vec<R>> = (0..runs.len())
        .into_par_iter()
        .map(|r| {
            let (start, end, _) = runs[r];
            let ctx = &contexts[r];
            if end - start >= 2 {
                if let Some(ctx) = ctx.as_ref() {
                    if let Some(results) = fuse(ctx, start..end) {
                        assert_eq!(
                            results.len(),
                            (end - start) as usize,
                            "fused span must return one result per trial"
                        );
                        return results;
                    }
                }
            }
            (start..end)
                .into_par_iter()
                .map(|i| f(ctx.as_ref(), i))
                .collect()
        })
        .collect();
    spans.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_order() {
        let parallel = run_trials(100, |t| (t, t.wrapping_mul(0x9e37_79b9)));
        let serial: Vec<_> = (0u64..100)
            .map(|t| (t, t.wrapping_mul(0x9e37_79b9)))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(run_trials(0, |t| t).is_empty());
    }

    #[test]
    fn chunked_concatenation_matches_unchunked_every_chunk_size() {
        let expect = run_trials(23, |t| t.wrapping_mul(0x9e37_79b9).rotate_left(7));
        for chunk in [1u64, 2, 3, 7, 22, 23, 24, 1000] {
            let mut got = Vec::new();
            let mut starts = Vec::new();
            run_trials_chunked(
                23,
                chunk,
                |t| t.wrapping_mul(0x9e37_79b9).rotate_left(7),
                |start, results| {
                    starts.push(start);
                    got.extend(results);
                    Ok::<(), std::convert::Infallible>(())
                },
            )
            .unwrap();
            assert_eq!(got, expect, "chunk = {chunk}");
            // Windows arrive in index order, each starting where the
            // previous ended.
            assert_eq!(starts, (0..23).step_by(chunk as usize).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_consumer_error_stops_the_sweep() {
        let mut seen = 0u64;
        let err = run_trials_chunked(
            100,
            10,
            |t| t,
            |start, _| {
                seen = start;
                if start >= 20 {
                    Err("enough")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(err, Err("enough"));
        assert_eq!(seen, 20, "the failing window is the last one consumed");
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunked_rejects_zero_chunk() {
        let _ = run_trials_chunked(4, 0, |t| t, |_, _| Ok::<(), ()>(()));
    }

    #[test]
    fn batched_matches_unbatched_across_key_shapes() {
        // The unbatched reference: context derived per trial.
        let ctx_of = |t: u64| t / 5;
        let expect = run_trials(31, |t| ctx_of(t) * 1000 + t);
        // One batch per 5 indices, one giant batch, singleton batches, and
        // a keyless (never-shared) sweep all agree index-for-index.
        let keys: [fn(u64) -> Option<u64>; 4] =
            [|t| Some(t / 5), |_| Some(0), |t| Some(t), |_| None];
        for (k, key_of) in keys.iter().enumerate() {
            let got = run_trials_batched(31, key_of, ctx_of, |ctx, t| {
                ctx.copied().unwrap_or_else(|| ctx_of(t)) * 1000 + t
            });
            // The giant-batch key shares ctx_of(0) across all trials, which
            // only matches the reference for the t/5 key when contexts are
            // genuinely equal — so compare against the batch-aware value.
            let want: Vec<u64> = (0..31)
                .map(|t| {
                    let batch_head = match key_of(t) {
                        Some(_) => (0..=t).rev().take_while(|&s| key_of(s) == key_of(t)).last(),
                        None => None,
                    };
                    ctx_of(batch_head.unwrap_or(t)) * 1000 + t
                })
                .collect();
            assert_eq!(got, want, "key shape {k}");
        }
        // And for the realistic key (context constant within a batch) the
        // batched sweep is bit-identical to the unbatched one.
        let got = run_trials_batched(
            31,
            |t| Some(t / 5),
            ctx_of,
            |ctx, t| ctx.copied().unwrap() * 1000 + t,
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn batched_builds_once_per_run() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let builds = AtomicU64::new(0);
        let got = run_trials_batched(
            12,
            |t| Some(t / 4),
            |t| {
                builds.fetch_add(1, Ordering::Relaxed);
                t / 4
            },
            |ctx, t| ctx.copied().unwrap() * 100 + t,
        );
        assert_eq!(builds.load(Ordering::Relaxed), 3, "one build per batch");
        assert_eq!(got, (0..12).map(|t| (t / 4) * 100 + t).collect::<Vec<_>>());

        // None keys never build.
        builds.store(0, Ordering::Relaxed);
        run_trials_batched(
            8,
            |_| None::<u64>,
            |_| builds.fetch_add(1, Ordering::Relaxed),
            |ctx, t| {
                assert!(ctx.is_none());
                t
            },
        );
        assert_eq!(builds.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fused_matches_unfused_and_skips_singletons() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Runs of 5, with trial 20 a keyless singleton in the middle.
        let key_of = |t: u64| (t != 20).then_some(t / 5);
        let build = |t: u64| t / 5;
        let f = |ctx: Option<&u64>, t: u64| (ctx.copied(), t);
        let expect = run_trials_batched(31, key_of, build, f);
        // A fuse that accepts every offered span.
        let fused_spans = AtomicU64::new(0);
        let got = run_trials_batched_fused(
            31,
            key_of,
            build,
            |ctx, span| {
                fused_spans.fetch_add(1, Ordering::Relaxed);
                assert!(span.end - span.start >= 2, "singletons never fuse");
                Some(span.map(|t| (Some(*ctx), t)).collect())
            },
            f,
        );
        assert_eq!(got, expect);
        // Runs: [0,5) [5,10) [10,15) [15,20) {20} [21,25) [25,30) [30,31).
        // The keyless singleton and the final 1-trial run are never offered.
        assert_eq!(fused_spans.load(Ordering::Relaxed), 6);
        // A fuse that always declines is exactly the unfused sweep.
        let got = run_trials_batched_fused(31, key_of, build, |_, _| None, f);
        assert_eq!(got, expect);
        // A fuse that accepts only even-keyed spans mixes both paths.
        let got = run_trials_batched_fused(
            31,
            key_of,
            build,
            |ctx, span| {
                ctx.is_multiple_of(2)
                    .then(|| span.map(|t| (Some(*ctx), t)).collect())
            },
            f,
        );
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "one result per trial")]
    fn fused_span_must_cover_its_trials() {
        let _ = run_trials_batched_fused(
            8,
            |t| Some(t / 4),
            |t| t,
            |_, _| Some(vec![0u64]), // wrong length
            |_, t| t,
        );
    }

    #[test]
    fn fused_chunked_matches_unchunked_every_chunk_size() {
        let key_of = |t: u64| (t / 7 != 1).then_some(t / 7); // run, gap, run
        let build = |t: u64| t / 7;
        let f = |ctx: Option<&u64>, t: u64| (ctx.copied(), t);
        let fuse = |ctx: &u64, span: std::ops::Range<u64>| {
            ctx.is_multiple_of(2)
                .then(|| span.map(|t| (Some(*ctx), t)).collect())
        };
        let expect = run_trials_batched(23, key_of, build, f);
        for chunk in [1u64, 2, 3, 5, 7, 8, 22, 23, 1000] {
            let mut got = Vec::new();
            run_trials_batched_fused_chunked_range(
                0..23,
                chunk,
                key_of,
                build,
                fuse,
                f,
                |start, results| {
                    assert_eq!(start, got.len() as u64);
                    got.extend(results);
                    Ok::<(), std::convert::Infallible>(())
                },
            )
            .unwrap();
            assert_eq!(got, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn batched_chunked_matches_unchunked_every_chunk_size() {
        let key_of = |t: u64| (t / 7 != 1).then_some(t / 7); // run, gap, run
        let build = |t: u64| t / 7;
        let f = |ctx: Option<&u64>, t: u64| (ctx.copied(), t);
        let expect = run_trials_batched(23, key_of, build, f);
        for chunk in [1u64, 2, 3, 5, 7, 8, 22, 23, 1000] {
            let mut got = Vec::new();
            run_trials_batched_chunked_range(0..23, chunk, key_of, build, f, |start, results| {
                assert_eq!(start, got.len() as u64);
                got.extend(results);
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
            assert_eq!(got, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn pool_variant_matches_every_width() {
        let expect: Vec<u64> = (0u64..37).map(|t| t ^ 0xdead).collect();
        for width in [1usize, 2, 7] {
            let pool = ThreadPool::new(width);
            assert_eq!(run_trials_in(&pool, 37, |t| t ^ 0xdead), expect);
        }
    }
}
