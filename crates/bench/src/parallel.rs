//! Data-parallel trial execution with serial-identical results.
//!
//! Experiments are embarrassingly parallel across trials: every trial
//! derives its own seeds (network seed, engine seed, adversary seed) from
//! the trial index, so trials share no mutable state. [`run_trials`] fans
//! them out over rayon and returns results **in trial order**, which makes
//! parallel sweeps bit-identical to the serial `for s in 0..trials` loop
//! they replace — a property the determinism regression test pins down.
//!
//! Parallelism is sized by the ambient [`rayon::ThreadPool`] when one is
//! installed (see [`run_trials_in`]), falling back to `RAYON_NUM_THREADS`
//! and then the machine's parallelism. Prefer a scoped pool over the env
//! var: pools are per-run values, so concurrent sweeps in one process
//! don't race on global state. `RAYON_NUM_THREADS=1` still forces serial
//! execution when no pool is installed (e.g. when profiling a trial).

use rayon::prelude::*;
pub use rayon::ThreadPool;

/// Runs `trials` independent trials of `f` in parallel, returning
/// `[f(0), f(1), …]` exactly as the serial loop would.
///
/// `f` must derive all randomness from its trial index; it is executed
/// once per index, in unspecified temporal order, with results reassembled
/// by index.
///
/// # Examples
///
/// ```
/// let parallel = radio_bench::parallel::run_trials(16, |t| t * t);
/// let serial: Vec<u64> = (0..16).map(|t| t * t).collect();
/// assert_eq!(parallel, serial);
/// ```
pub fn run_trials<R, F>(trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    (0..trials).into_par_iter().map(f).collect()
}

/// [`run_trials`] on an explicit scoped pool: the fan-out uses the pool's
/// worker count instead of the ambient/global configuration. Results are
/// identical to [`run_trials`] (and to the serial loop) — only the degree
/// of parallelism changes.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_in, ThreadPool};
/// let pool = ThreadPool::new(2);
/// assert_eq!(run_trials_in(&pool, 8, |t| t + 1), run_trials(8, |t| t + 1));
/// ```
pub fn run_trials_in<R, F>(pool: &ThreadPool, trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    pool.install(|| run_trials(trials, f))
}

/// [`run_trials`] in index-ordered chunks: executes `[0, trials)` as
/// consecutive windows of at most `chunk` indices, running each window in
/// parallel and handing its results — still in index order — to `consume`
/// before the next window starts. Peak memory is **O(chunk)**, not
/// O(trials), while the concatenation of all windows is bit-identical to
/// `run_trials(trials, f)` (and therefore to the serial loop): the same
/// `f(i)` runs for the same `i`, only the collection is windowed.
///
/// `consume` receives `(start_index, results)` per window and may fail
/// (e.g. an I/O sink); the first error stops the sweep and is returned.
/// Windows are never reordered, so a consumer that folds in arrival order
/// observes exactly the serial record stream.
///
/// # Panics
///
/// Panics if `chunk` is zero.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_chunked};
/// let mut streamed = Vec::new();
/// run_trials_chunked(10, 3, |t| t * t, |start, results| {
///     assert_eq!(start, streamed.len() as u64);
///     streamed.extend(results);
///     Ok::<(), std::convert::Infallible>(())
/// })
/// .unwrap();
/// assert_eq!(streamed, run_trials(10, |t| t * t));
/// ```
pub fn run_trials_chunked<R, E, F, S>(trials: u64, chunk: u64, f: F, consume: S) -> Result<(), E>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    run_trials_chunked_range(0..trials, chunk, f, consume)
}

/// [`run_trials_chunked`] over an arbitrary index slice `range` of a larger
/// grid: windows cover `[range.start, range.end)` in index order, so the
/// concatenation of the windows of consecutive ranges is exactly the
/// windows of the whole — the primitive behind resumable (`--resume`
/// continues at the checkpointed index) and sharded (`--shard i/m` runs
/// one contiguous slice) sweeps. `consume` still receives each window's
/// absolute start index.
///
/// # Panics
///
/// Panics if `chunk` is zero or the range is inverted.
pub fn run_trials_chunked_range<R, E, F, S>(
    range: std::ops::Range<u64>,
    chunk: u64,
    f: F,
    mut consume: S,
) -> Result<(), E>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
    S: FnMut(u64, Vec<R>) -> Result<(), E>,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert!(range.start <= range.end, "inverted index range");
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start.saturating_add(chunk));
        let results: Vec<R> = (start..end).into_par_iter().map(&f).collect();
        consume(start, results)?;
        start = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_order() {
        let parallel = run_trials(100, |t| (t, t.wrapping_mul(0x9e37_79b9)));
        let serial: Vec<_> = (0u64..100)
            .map(|t| (t, t.wrapping_mul(0x9e37_79b9)))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(run_trials(0, |t| t).is_empty());
    }

    #[test]
    fn chunked_concatenation_matches_unchunked_every_chunk_size() {
        let expect = run_trials(23, |t| t.wrapping_mul(0x9e37_79b9).rotate_left(7));
        for chunk in [1u64, 2, 3, 7, 22, 23, 24, 1000] {
            let mut got = Vec::new();
            let mut starts = Vec::new();
            run_trials_chunked(
                23,
                chunk,
                |t| t.wrapping_mul(0x9e37_79b9).rotate_left(7),
                |start, results| {
                    starts.push(start);
                    got.extend(results);
                    Ok::<(), std::convert::Infallible>(())
                },
            )
            .unwrap();
            assert_eq!(got, expect, "chunk = {chunk}");
            // Windows arrive in index order, each starting where the
            // previous ended.
            assert_eq!(starts, (0..23).step_by(chunk as usize).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_consumer_error_stops_the_sweep() {
        let mut seen = 0u64;
        let err = run_trials_chunked(
            100,
            10,
            |t| t,
            |start, _| {
                seen = start;
                if start >= 20 {
                    Err("enough")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(err, Err("enough"));
        assert_eq!(seen, 20, "the failing window is the last one consumed");
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunked_rejects_zero_chunk() {
        let _ = run_trials_chunked(4, 0, |t| t, |_, _| Ok::<(), ()>(()));
    }

    #[test]
    fn pool_variant_matches_every_width() {
        let expect: Vec<u64> = (0u64..37).map(|t| t ^ 0xdead).collect();
        for width in [1usize, 2, 7] {
            let pool = ThreadPool::new(width);
            assert_eq!(run_trials_in(&pool, 37, |t| t ^ 0xdead), expect);
        }
    }
}
