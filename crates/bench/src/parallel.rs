//! Data-parallel trial execution with serial-identical results.
//!
//! Experiments are embarrassingly parallel across trials: every trial
//! derives its own seeds (network seed, engine seed, adversary seed) from
//! the trial index, so trials share no mutable state. [`run_trials`] fans
//! them out over rayon and returns results **in trial order**, which makes
//! parallel sweeps bit-identical to the serial `for s in 0..trials` loop
//! they replace — a property the determinism regression test pins down.
//!
//! Set `RAYON_NUM_THREADS=1` to force serial execution (e.g. when
//! profiling a single trial).

use rayon::prelude::*;

/// Runs `trials` independent trials of `f` in parallel, returning
/// `[f(0), f(1), …]` exactly as the serial loop would.
///
/// `f` must derive all randomness from its trial index; it is executed
/// once per index, in unspecified temporal order, with results reassembled
/// by index.
///
/// # Examples
///
/// ```
/// let parallel = radio_bench::parallel::run_trials(16, |t| t * t);
/// let serial: Vec<u64> = (0..16).map(|t| t * t).collect();
/// assert_eq!(parallel, serial);
/// ```
pub fn run_trials<R, F>(trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    (0..trials).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_order() {
        let parallel = run_trials(100, |t| (t, t.wrapping_mul(0x9e37_79b9)));
        let serial: Vec<_> = (0u64..100)
            .map(|t| (t, t.wrapping_mul(0x9e37_79b9)))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(run_trials(0, |t| t).is_empty());
    }
}
