//! Data-parallel trial execution with serial-identical results.
//!
//! Experiments are embarrassingly parallel across trials: every trial
//! derives its own seeds (network seed, engine seed, adversary seed) from
//! the trial index, so trials share no mutable state. [`run_trials`] fans
//! them out over rayon and returns results **in trial order**, which makes
//! parallel sweeps bit-identical to the serial `for s in 0..trials` loop
//! they replace — a property the determinism regression test pins down.
//!
//! Parallelism is sized by the ambient [`rayon::ThreadPool`] when one is
//! installed (see [`run_trials_in`]), falling back to `RAYON_NUM_THREADS`
//! and then the machine's parallelism. Prefer a scoped pool over the env
//! var: pools are per-run values, so concurrent sweeps in one process
//! don't race on global state. `RAYON_NUM_THREADS=1` still forces serial
//! execution when no pool is installed (e.g. when profiling a trial).

use rayon::prelude::*;
pub use rayon::ThreadPool;

/// Runs `trials` independent trials of `f` in parallel, returning
/// `[f(0), f(1), …]` exactly as the serial loop would.
///
/// `f` must derive all randomness from its trial index; it is executed
/// once per index, in unspecified temporal order, with results reassembled
/// by index.
///
/// # Examples
///
/// ```
/// let parallel = radio_bench::parallel::run_trials(16, |t| t * t);
/// let serial: Vec<u64> = (0..16).map(|t| t * t).collect();
/// assert_eq!(parallel, serial);
/// ```
pub fn run_trials<R, F>(trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    (0..trials).into_par_iter().map(f).collect()
}

/// [`run_trials`] on an explicit scoped pool: the fan-out uses the pool's
/// worker count instead of the ambient/global configuration. Results are
/// identical to [`run_trials`] (and to the serial loop) — only the degree
/// of parallelism changes.
///
/// # Examples
///
/// ```
/// use radio_bench::parallel::{run_trials, run_trials_in, ThreadPool};
/// let pool = ThreadPool::new(2);
/// assert_eq!(run_trials_in(&pool, 8, |t| t + 1), run_trials(8, |t| t + 1));
/// ```
pub fn run_trials_in<R, F>(pool: &ThreadPool, trials: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    pool.install(|| run_trials(trials, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_order() {
        let parallel = run_trials(100, |t| (t, t.wrapping_mul(0x9e37_79b9)));
        let serial: Vec<_> = (0u64..100)
            .map(|t| (t, t.wrapping_mul(0x9e37_79b9)))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(run_trials(0, |t| t).is_empty());
    }

    #[test]
    fn pool_variant_matches_every_width() {
        let expect: Vec<u64> = (0u64..37).map(|t| t ^ 0xdead).collect();
        for width in [1usize, 2, 7] {
            let pool = ThreadPool::new(width);
            assert_eq!(run_trials_in(&pool, 37, |t| t ^ 0xdead), expect);
        }
    }
}
