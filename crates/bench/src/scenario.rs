//! The declarative scenario subsystem: experiments as plain data.
//!
//! A [`ScenarioSpec`] describes one experiment table as a grid — topology
//! axis × adversary axis × workload axis × trials — plus a seed policy, a
//! nesting order, and a render style. The [`ScenarioSpec::plan`] sweep
//! planner expands the grid into [`TrialUnit`]s with index-derived seeds;
//! [`run_spec`] fans the units out through
//! [`crate::parallel::run_trials`] (bit-identical to a serial sweep) and
//! collects one or more [`RunRecord`]s per unit; [`render`] turns the
//! records into the experiment's [`Table`].
//!
//! Every paper experiment E1–E11 is a spec in the [`registry`] — adding a
//! scenario is a ~10-line data value (or a JSON file fed to the
//! `radio-lab` binary), not a new module.
//!
//! Two execution modes share one planner:
//!
//! * [`run_spec`] materializes everything — all units, all records — and
//!   hands the [`ScenarioRun`] to [`render`]. Memory is O(grid).
//! * [`run_spec_streaming`] decodes units on the fly
//!   ([`ScenarioSpec::unit_at`]), executes the grid in index-ordered
//!   chunks, and pushes each unit's records to [`crate::sink`]
//!   implementations, retaining nothing. Memory is O(chunk + sink
//!   state); the record stream the sinks observe is exactly the
//!   materialized order, so a [`crate::sink::StreamAggregate`] table is
//!   byte-identical to the materialized fold.
//!
//! # Invariants
//!
//! * **Grid expansion order** is the nesting order's nested loop:
//!   topology → adversary → workload → trial for
//!   [`NestOrder::TopologyMajor`], workload → adversary → topology → trial
//!   for [`NestOrder::WorkloadMajor`]. Renderers and the golden tests rely
//!   on this order being stable.
//! * **Seed derivation**: a unit's network seed is
//!   `workload.net_seed ⊦ topology.seed ⊦ seeds.net_base`, its run seed
//!   `workload.run_seed ⊦ seeds.run_base` (`⊦` = first explicit override
//!   wins), each plus the trial index. Detector streams continue the
//!   topology stream unless the workload pins `det_seed`.
//! * **Expansion count** equals the grid product
//!   `topologies × adversaries × workloads × trials` (units may each
//!   yield several records — e.g. the two-clique sweep — but the planner
//!   never drops or duplicates a grid cell).

use crate::aggregate::AggregateSpec;
use crate::parallel::run_trials_batched_fused;
use crate::stats::{dropped_points_note, loglog_exponent_counting};
use crate::table::{f1, f3, Table};
use hitting_games::{
    expected_rounds_floor, mean_hitting_time, two_clique_sweep, UniformNoReplacement,
    UniformWithReplacement,
};
use radio_baselines::{DecayBroadcast, NaiveCcdsConfig, RoundRobinBroadcast};
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_sim::{EngineBuilder, IdAssignment, StopReason};
use radio_structures::params::{ceil_log2, MisParams};
use radio_structures::runner::{run_algo, run_algo_batch, AlgoKind, RunRecord};
use radio_structures::{CcdsConfig, TauConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One entry of a spec's topology axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyEntry {
    /// The topology to build.
    pub kind: TopologyKind,
    /// Explicit network seed base (overrides the spec's `seeds.net_base`).
    pub seed: Option<u64>,
}

impl TopologyEntry {
    /// An entry deriving its seed from the spec's seed policy.
    pub fn new(kind: TopologyKind) -> Self {
        TopologyEntry { kind, seed: None }
    }

    /// An entry with a pinned network seed base.
    pub fn seeded(kind: TopologyKind, seed: u64) -> Self {
        TopologyEntry {
            kind,
            seed: Some(seed),
        }
    }
}

/// A workload: what runs on each built network (or beside it, for the
/// game/schedule workloads that need no network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// A `radio-structures` algorithm through the unified
    /// [`run_algo`] entry point.
    Core {
        /// The algorithm and its parameters.
        algo: AlgoKind,
    },
    /// The β-single hitting game (experiment E5a): mean rounds to hit over
    /// `trials` plays.
    Hitting {
        /// Number of principals β.
        beta: u32,
        /// Plays to average over.
        trials: u32,
        /// `true` for uniform-with-replacement guessing, `false` for the
        /// optimal no-replacement strategy.
        replacement: bool,
    },
    /// The end-to-end two-clique lower-bound sweep (experiment E5b); one
    /// unit yields one record per β (the sweep shares a bridge-placement
    /// stream across βs, so it cannot be split into independent cells).
    TwoCliqueSweep {
        /// Clique sizes to sweep.
        betas: Vec<usize>,
        /// Trials per β.
        trials: u32,
    },
    /// Schedule-arithmetic probe (experiment E5c): the 0-complete large-`b`
    /// schedule vs the 1-complete schedule at `Δ = β`, no execution.
    SchedulePair {
        /// Clique size `β = Δ`.
        beta: usize,
    },
    /// Detector-less broadcast baselines (experiment E9b) on the built
    /// network with reversed ids: Decay or round-robin, with or without
    /// the collider adversary (the spec's adversary axis is ignored — the
    /// E9b grid is not an adversary product).
    Broadcast {
        /// `true` for Decay, `false` for round-robin.
        decay: bool,
        /// Whether the collider adversary attacks the run.
        collider: bool,
    },
    /// The backbone-vs-flood-all comparison (experiment E10): one unit
    /// builds the CCDS **once** and yields one record per flood mode
    /// (backbone first, then flood-all), sharing the expensive structure
    /// construction the two rows have in common.
    BackboneCompare {
        /// Maximum message size in bits for the CCDS build.
        b: u64,
        /// Seed of the flood phase (independent of the CCDS build seed).
        flood_seed: u64,
        /// Round budget of each flood.
        flood_budget: u64,
    },
}

impl Workload {
    /// Short name for records and generic tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Core { algo } => algo.name(),
            Workload::Hitting { .. } => "hitting-game",
            Workload::TwoCliqueSweep { .. } => "two-clique-sweep",
            Workload::SchedulePair { .. } => "schedule-pair",
            Workload::Broadcast { decay: true, .. } => "decay",
            Workload::Broadcast { decay: false, .. } => "round-robin",
            Workload::BackboneCompare { .. } => "backbone-compare",
        }
    }
}

/// One entry of a spec's workload axis, with optional seed overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEntry {
    /// The workload to run.
    pub kind: Workload,
    /// Explicit run seed base (overrides the spec's `seeds.run_base`).
    pub run_seed: Option<u64>,
    /// Explicit network seed base (overrides both the topology entry's
    /// seed and `seeds.net_base` — for workloads whose historical network
    /// stream was keyed by a workload parameter, e.g. E4's `41 + τ`).
    pub net_seed: Option<u64>,
    /// Explicit detector seed: τ-complete detector construction draws from
    /// a fresh stream with this seed instead of continuing the topology
    /// stream (E11's `1100 + τ`).
    pub det_seed: Option<u64>,
}

impl WorkloadEntry {
    /// An entry deriving all seeds from the spec's seed policy.
    pub fn new(kind: Workload) -> Self {
        WorkloadEntry {
            kind,
            run_seed: None,
            net_seed: None,
            det_seed: None,
        }
    }

    /// A [`Workload::Core`] entry deriving all seeds from the policy.
    pub fn core(algo: AlgoKind) -> Self {
        WorkloadEntry::new(Workload::Core { algo })
    }
}

/// Which axis the planner iterates outermost (the table's row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NestOrder {
    /// topology → adversary → workload → trial.
    TopologyMajor,
    /// workload → adversary → topology → trial.
    WorkloadMajor,
}

/// Default seed bases; see the module docs for the derivation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedPolicy {
    /// Base of the network seed (plus trial index).
    pub net_base: u64,
    /// Base of the run/engine seed (plus trial index).
    pub run_base: u64,
}

/// When a unit's execution stops, beyond the algorithm's own budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopCondition {
    /// The algorithm's intrinsic budget (schedule length, parameter
    /// budget, …).
    Default,
    /// Cap every run at `max` rounds (also the broadcast workloads'
    /// coverage budget).
    Rounds {
        /// The round cap.
        max: u64,
    },
}

/// How the records render into a table: one of the experiment-specific
/// layouts, or the generic layout for user-authored specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variants name their experiment table
pub enum RenderKind {
    E1,
    E2,
    E3a,
    E3b,
    E4,
    E5a,
    E5b,
    E5c,
    E6,
    E7,
    E8,
    E9a,
    E9b,
    E10,
    E11,
    /// One row per record: topology, adversary, workload, trial, and the
    /// common result columns. When the spec carries an
    /// [`ScenarioSpec::aggregate`] block, renders the grouped summary
    /// instead.
    Generic,
    /// Grouped summary statistics per [`ScenarioSpec::aggregate`] (the
    /// [`AggregateSpec::default`] grouping when the block is absent).
    Aggregate,
}

/// A declarative experiment: the grid, its seeds, and its presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Table id, e.g. `"E3a"`.
    pub id: String,
    /// Table caption (what the table shows and which claim it tests).
    pub caption: String,
    /// How records render into the table.
    pub render: RenderKind,
    /// Topology axis.
    pub topologies: Vec<TopologyEntry>,
    /// Adversary axis.
    pub adversaries: Vec<AdversaryKind>,
    /// Workload axis.
    pub workloads: Vec<WorkloadEntry>,
    /// Independent trials per grid cell.
    pub trials: u64,
    /// Axis nesting order.
    pub nest: NestOrder,
    /// Default seed bases.
    pub seeds: SeedPolicy,
    /// Stop condition applied to every unit.
    pub stop: StopCondition,
    /// Optional group-by aggregation (used by [`RenderKind::Aggregate`]
    /// and, when present, [`RenderKind::Generic`]). Absent in older spec
    /// files — they parse unchanged.
    pub aggregate: Option<AggregateSpec>,
}

/// One planned execution: a grid cell × trial with its derived seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialUnit {
    /// Index into the spec's topology axis.
    pub topo: usize,
    /// Index into the spec's adversary axis.
    pub adv: usize,
    /// Index into the spec's workload axis.
    pub work: usize,
    /// Trial index within the cell.
    pub trial: u64,
    /// Derived network seed.
    pub net_seed: u64,
    /// Derived run/engine seed.
    pub run_seed: u64,
    /// Pinned detector seed (`None` = continue the topology stream).
    pub det_seed: Option<u64>,
}

impl ScenarioSpec {
    /// The grid product `topologies × adversaries × workloads × trials`,
    /// which is exactly `plan().len()`.
    pub fn grid_size(&self) -> usize {
        self.topologies.len()
            * self.adversaries.len()
            * self.workloads.len()
            * usize::try_from(self.trials).unwrap_or(usize::MAX)
    }

    /// The planned unit at grid `index` — `plan()[index]` without
    /// materializing the plan. The grid is a mixed-radix counter in the
    /// nesting order (trial is always the innermost digit), so any index
    /// decodes to its axis coordinates in O(1); the streaming runner
    /// derives each chunk's units through this, which keeps peak planner
    /// memory at O(chunk) instead of O(grid).
    ///
    /// # Panics
    ///
    /// Panics if `index >= grid_size()` (or the grid is empty).
    pub fn unit_at(&self, index: u64) -> TrialUnit {
        assert!(
            (index as usize) < self.grid_size(),
            "unit index {index} out of range for grid of {}",
            self.grid_size()
        );
        let trial = index % self.trials;
        let cell = index / self.trials;
        let t_len = self.topologies.len() as u64;
        let a_len = self.adversaries.len() as u64;
        let w_len = self.workloads.len() as u64;
        let (ti, ai, wi) = match self.nest {
            NestOrder::TopologyMajor => {
                (cell / (w_len * a_len), (cell / w_len) % a_len, cell % w_len)
            }
            NestOrder::WorkloadMajor => {
                (cell % t_len, (cell / t_len) % a_len, cell / (t_len * a_len))
            }
        };
        let (ti, ai, wi) = (ti as usize, ai as usize, wi as usize);
        let work = &self.workloads[wi];
        let net_base = work
            .net_seed
            .or(self.topologies[ti].seed)
            .unwrap_or(self.seeds.net_base);
        let run_base = work.run_seed.unwrap_or(self.seeds.run_base);
        TrialUnit {
            topo: ti,
            adv: ai,
            work: wi,
            trial,
            net_seed: net_base + trial,
            run_seed: run_base + trial,
            det_seed: work.det_seed,
        }
    }

    /// Expands the grid into trial units in nesting order, deriving every
    /// unit's seeds from its indices (see the module docs). Equivalent to
    /// decoding every index through [`ScenarioSpec::unit_at`] — the
    /// streaming runner's chunked plan and this materialized one are the
    /// same sequence by construction.
    pub fn plan(&self) -> Vec<TrialUnit> {
        (0..self.grid_size() as u64)
            .map(|i| self.unit_at(i))
            .collect()
    }

    /// The stop condition as an optional round cap.
    fn max_rounds(&self) -> Option<u64> {
        match self.stop {
            StopCondition::Default => None,
            StopCondition::Rounds { max } => Some(max),
        }
    }
}

/// The executed scenario: planned units (in order) with each unit's
/// records, plus the sweep's wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRun {
    /// The planned units, in expansion order.
    pub units: Vec<TrialUnit>,
    /// One record vector per unit (usually a single record; sweeps yield
    /// several).
    pub records: Vec<Vec<RunRecord>>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
}

impl ScenarioRun {
    /// Iterates `(unit, first-record)` pairs — the common case for
    /// renderers of one-record units.
    fn rows(&self) -> impl Iterator<Item = (&TrialUnit, &RunRecord)> {
        self.units
            .iter()
            .zip(&self.records)
            .filter_map(|(u, recs)| recs.first().map(|r| (u, r)))
    }
}

/// Executes every planned unit of `spec` in parallel (results identical to
/// the serial sweep) and collects the records.
///
/// Units that freeze the same network — consecutive trials of a
/// deterministic topology under a net-building workload — share one built
/// instance (adjacency *and* bitmask rows) through
/// [`crate::parallel::run_trials_batched_fused`]; see [`run_unit_with`]
/// for why the records are bit-identical to the build-per-trial sweep.
/// Within a shared span, runs of ≥ 2 Core trials of one grid cell are
/// additionally *fused* into a single [`run_algo_batch`] call, so dense
/// networks step all of a cell's trials in lockstep over the shared
/// bitmask rows ([`fuse_shared_units`]) — still record-identical.
pub fn run_spec(spec: &ScenarioSpec) -> ScenarioRun {
    let units = spec.plan();
    let start = Instant::now();
    let records = run_trials_batched_fused(
        units.len() as u64,
        |i| shared_net_key(spec, i),
        |i| build_shared_net(spec, i),
        |shared, span| {
            let start = usize::try_from(span.start).expect("unit index fits");
            let end = usize::try_from(span.end).expect("unit index fits");
            fuse_shared_units(spec, shared, &units[start..end])
        },
        |shared, i| {
            run_unit_with(
                spec,
                &units[usize::try_from(i).expect("unit index fits")],
                shared,
            )
        },
    );
    ScenarioRun {
        units,
        records,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// What a streaming sweep reports instead of a [`ScenarioRun`]: counts and
/// wall-clock — the records themselves went to the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Units executed (the grid product for a full sweep; the slice
    /// length for a [`run_spec_streaming_range`] slice).
    pub units: u64,
    /// Records produced across all units.
    pub records: u64,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
}

/// [`run_spec`] with O(chunk) peak memory: executes the grid in
/// index-ordered chunks of `chunk` units via
/// [`crate::parallel::run_trials_chunked`] and hands every completed
/// unit's records — in unit order — to each sink in turn. Nothing is
/// retained after a sink returns, so an arbitrarily large grid runs in
/// bounded memory; a [`crate::sink::Materialize`] sink restores today's
/// collect-everything behavior and is the differential reference
/// ([`crate::sink::Materialize::into_run`] equals [`run_spec`]'s output
/// up to wall-clock).
///
/// Sinks observe exactly the serial record stream whatever the chunk size
/// or thread count — the units of a chunk still execute in parallel, but
/// chunks are consumed in order and records within a unit stay together.
///
/// # Errors
///
/// Returns the first sink error (e.g. a full disk under
/// [`crate::sink::JsonlWriter`]); the sweep stops at the failing chunk.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn run_spec_streaming(
    spec: &ScenarioSpec,
    chunk: u64,
    sinks: &mut [&mut dyn crate::sink::RecordSink],
) -> std::io::Result<StreamStats> {
    let total = spec.grid_size() as u64;
    run_spec_streaming_range(spec, chunk, 0..total, sinks)
}

/// [`run_spec_streaming`] over an arbitrary index-ordered slice
/// `range` of the grid: the sinks observe exactly the records of units
/// `range.start..range.end`, in unit order. Because the grid decodes
/// index-by-index ([`ScenarioSpec::unit_at`]) with index-derived seeds,
/// the concatenation of consecutive ranges is **bit-identical** to the
/// whole sweep — this is the execution primitive behind resumable
/// (`--resume` re-enters at the checkpointed index) and sharded
/// (`--shard i/m` runs one contiguous slice) sweeps.
///
/// After each completed chunk every sink's
/// [`crate::sink::RecordSink::flush_chunk`] runs, so I/O sinks are
/// durable at chunk granularity.
///
/// # Errors
///
/// Returns the first sink error; the sweep stops at the failing chunk.
///
/// # Panics
///
/// Panics if `chunk` is zero, the range is inverted, or `range.end`
/// exceeds the grid size.
pub fn run_spec_streaming_range(
    spec: &ScenarioSpec,
    chunk: u64,
    range: std::ops::Range<u64>,
    sinks: &mut [&mut dyn crate::sink::RecordSink],
) -> std::io::Result<StreamStats> {
    run_spec_streaming_range_with(spec, chunk, range, sinks, |_, _| Ok(()))
}

/// [`run_spec_streaming_range`] with a chunk-boundary hook: after each
/// chunk's records have been accepted by every sink *and* every sink has
/// flushed, `on_chunk(next_index, records_so_far)` runs — `next_index` is
/// the first grid index not yet executed and `records_so_far` counts the
/// slice's records accepted so far. The checkpoint writer hangs here: by
/// the time the hook sees an index, everything before it is durable in
/// the sinks, so a checkpoint recording `next_index` never points past
/// durable data.
///
/// # Errors
///
/// Returns the first sink or hook error; the sweep stops at that chunk.
///
/// # Panics
///
/// Panics if `chunk` is zero, the range is inverted, or `range.end`
/// exceeds the grid size.
pub fn run_spec_streaming_range_with(
    spec: &ScenarioSpec,
    chunk: u64,
    range: std::ops::Range<u64>,
    sinks: &mut [&mut dyn crate::sink::RecordSink],
    mut on_chunk: impl FnMut(u64, u64) -> std::io::Result<()>,
) -> std::io::Result<StreamStats> {
    assert!(
        range.end <= spec.grid_size() as u64,
        "range end {} exceeds grid of {}",
        range.end,
        spec.grid_size()
    );
    let units = range.end.saturating_sub(range.start);
    let start = Instant::now();
    let mut records = 0u64;
    crate::parallel::run_trials_batched_fused_chunked_range(
        range,
        chunk,
        |i| shared_net_key(spec, i),
        |i| build_shared_net(spec, i),
        |shared, span| {
            let units: Vec<TrialUnit> = span.map(|i| spec.unit_at(i)).collect();
            fuse_shared_units(spec, shared, &units)
                .map(|recs| units.into_iter().zip(recs).collect())
        },
        |shared, i| {
            let unit = spec.unit_at(i);
            let recs = run_unit_with(spec, &unit, shared);
            (unit, recs)
        },
        |window_start, window| {
            for (unit, recs) in &window {
                records += recs.len() as u64;
                for sink in sinks.iter_mut() {
                    sink.accept(spec, unit, recs)?;
                }
            }
            for sink in sinks.iter_mut() {
                sink.flush_chunk()?;
            }
            on_chunk(window_start + window.len() as u64, records)
        },
    )?;
    Ok(StreamStats {
        units,
        records,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// The batch key of grid index `i` for shared-network execution, or `None`
/// when the unit must build privately.
///
/// Sharing is sound exactly when (a) the workload builds a network at all
/// and (b) the topology is deterministic
/// ([`TopologyKind::is_deterministic`]): such builds produce the same
/// network for every `net_seed` *and draw nothing from the stream*, so one
/// frozen instance substitutes for every trial's private build without
/// moving the detector-stream continuation. Random topologies differ per
/// trial and never share. The key is the topology-axis index — trial is
/// the innermost grid digit, so a cell's trials are consecutive and land
/// in one batch.
fn shared_net_key(spec: &ScenarioSpec, i: u64) -> Option<usize> {
    let unit = spec.unit_at(i);
    let builds_net = matches!(
        spec.workloads[unit.work].kind,
        Workload::Core { .. } | Workload::Broadcast { .. } | Workload::BackboneCompare { .. }
    );
    (builds_net && spec.topologies[unit.topo].kind.is_deterministic()).then_some(unit.topo)
}

/// Builds the shared network for the batch that grid index `i` opens.
/// Errors are carried as the rendered string so every trial in the batch
/// reports the identical failure record its private build would have.
fn build_shared_net(spec: &ScenarioSpec, i: u64) -> Result<radio_sim::DualGraph, String> {
    let unit = spec.unit_at(i);
    let mut rng = StdRng::seed_from_u64(unit.net_seed);
    spec.topologies[unit.topo]
        .kind
        .build_with(&mut rng)
        .map_err(|e| e.to_string())
}

/// Executes a span of consecutive shared-network units as a unit-for-unit
/// replacement for per-unit [`run_unit_with`] calls, fusing each grid
/// cell's run of ≥ 2 Core trials into one [`run_algo_batch`] call — which
/// hands the trials' engines to the batched multi-trial tier on dense
/// networks. Returns `None` (declining to fuse, so the caller falls back
/// per unit) when the shared build failed; everything else executes here,
/// with non-Core workloads and singleton cells routed through
/// [`run_unit_with`] unchanged.
///
/// Record-stream equivalence rests on two invariants: [`run_algo_batch`]
/// is bit-identical to per-trial [`run_algo`] whatever the batch size, and
/// the fused detector stream — a fresh `det_seed`/`net_seed` stream per
/// trial — is exactly what the per-unit Core arm derives, because the
/// deterministic builds [`shared_net_key`] gates on draw nothing from the
/// topology stream.
fn fuse_shared_units(
    spec: &ScenarioSpec,
    shared: &Result<radio_sim::DualGraph, String>,
    units: &[TrialUnit],
) -> Option<Vec<Vec<RunRecord>>> {
    let net = match shared {
        Ok(net) => net,
        // Failure records carry no engine work worth fusing; the per-unit
        // path reports the identical error string for every trial.
        Err(_) => return None,
    };
    let max_rounds = spec.max_rounds();
    let mut out: Vec<Vec<RunRecord>> = Vec::with_capacity(units.len());
    let mut idx = 0;
    while idx < units.len() {
        // One grid cell: consecutive units with the same workload and
        // adversary coordinates (trial is the innermost grid digit, so a
        // cell's trials are consecutive within the span).
        let mut end = idx + 1;
        while end < units.len()
            && units[end].work == units[idx].work
            && units[end].adv == units[idx].adv
        {
            end += 1;
        }
        let cell = &units[idx..end];
        let adversary = spec.adversaries[cell[0].adv];
        match &spec.workloads[cell[0].work].kind {
            Workload::Core { algo } if cell.len() >= 2 => {
                let seeds: Vec<u64> = cell.iter().map(|u| u.run_seed).collect();
                let mut det_rngs: Vec<StdRng> = cell
                    .iter()
                    .map(|u| StdRng::seed_from_u64(u.det_seed.unwrap_or(u.net_seed)))
                    .collect();
                let recs = run_algo_batch(net, algo, adversary, &seeds, &mut det_rngs, max_rounds);
                out.extend(recs.into_iter().map(|rec| vec![rec]));
            }
            _ => out.extend(
                cell.iter()
                    .map(|unit| run_unit_with(spec, unit, Some(shared))),
            ),
        }
        idx = end;
    }
    Some(out)
}

/// Executes one trial unit, building its network privately.
pub(crate) fn run_unit(spec: &ScenarioSpec, unit: &TrialUnit) -> Vec<RunRecord> {
    run_unit_with(spec, unit, None)
}

/// Executes one trial unit, borrowing `shared` as the frozen network when
/// the batched runner provides one.
///
/// With `shared = None` this is the reference build-per-trial execution.
/// With `Some`, the net-building workloads skip their private build but
/// keep everything else identical — in particular the Core arm still seeds
/// `net_rng` from `unit.net_seed`, because the detector stream continues
/// that stream and deterministic builds leave it untouched (the invariant
/// [`shared_net_key`] gates on).
fn run_unit_with(
    spec: &ScenarioSpec,
    unit: &TrialUnit,
    shared: Option<&Result<radio_sim::DualGraph, String>>,
) -> Vec<RunRecord> {
    let topo = &spec.topologies[unit.topo].kind;
    let adversary = spec.adversaries[unit.adv];
    let entry = &spec.workloads[unit.work];
    let max_rounds = spec.max_rounds();
    match &entry.kind {
        Workload::Core { algo } => {
            let mut net_rng = StdRng::seed_from_u64(unit.net_seed);
            let owned;
            let net = match shared {
                Some(Ok(net)) => net,
                Some(Err(e)) => return vec![RunRecord::failed(algo.name(), e.clone())],
                None => match topo.build_with(&mut net_rng) {
                    Ok(net) => {
                        owned = net;
                        &owned
                    }
                    Err(e) => return vec![RunRecord::failed(algo.name(), e.to_string())],
                },
            };
            // The detector stream continues the topology stream unless the
            // workload pins an independent one.
            let mut det_rng = match unit.det_seed {
                Some(s) => StdRng::seed_from_u64(s),
                None => net_rng,
            };
            vec![run_algo(
                net,
                algo,
                adversary,
                unit.run_seed,
                &mut det_rng,
                max_rounds,
            )]
        }
        Workload::Hitting {
            beta,
            trials,
            replacement,
        } => {
            let (beta, trials) = (*beta, *trials);
            let mean = if *replacement {
                mean_hitting_time(beta, trials, unit.run_seed, |s| {
                    Box::new(UniformWithReplacement::new(beta, s))
                })
            } else {
                mean_hitting_time(beta, trials, unit.run_seed, |s| {
                    Box::new(UniformNoReplacement::new(beta, s))
                })
            };
            let mut rec = RunRecord::blank("hitting-game", beta as usize, 0);
            rec.valid = true;
            rec.push_extra("beta", f64::from(beta));
            rec.push_extra("mean_rounds", mean);
            rec.push_extra("floor", expected_rounds_floor(beta));
            vec![rec]
        }
        Workload::TwoCliqueSweep { betas, trials } => {
            two_clique_sweep(betas, *trials, unit.run_seed)
                .into_iter()
                .map(|row| {
                    let mut rec = RunRecord::blank("two-clique", 2 * row.beta, row.beta);
                    rec.valid = row.valid == row.trials;
                    rec.schedule_total = Some(row.schedule_total);
                    rec.push_extra("beta", row.beta as f64);
                    rec.push_extra("trials", f64::from(row.trials));
                    rec.push_extra("valid_trials", f64::from(row.valid));
                    rec.push_extra("solved_trials", f64::from(row.solved));
                    rec.push_extra("mean_solve", row.mean_solve_round);
                    rec.push_extra("mean_bridge", row.mean_bridge_round);
                    rec
                })
                .collect()
        }
        Workload::SchedulePair { beta } => {
            let beta = *beta;
            let n = 2 * beta;
            let mut rec = RunRecord::blank("schedule-pair", n, beta);
            match CcdsConfig::new(n, beta, 4096).schedule() {
                Ok(sched) => {
                    rec.valid = true;
                    rec.push_extra("zero_complete_rounds", sched.total as f64);
                    rec.push_extra(
                        "one_complete_rounds",
                        TauConfig::new(n, beta, 1).schedule().total as f64,
                    );
                }
                Err(e) => rec.error = Some(e.to_string()),
            }
            vec![rec]
        }
        Workload::Broadcast { decay, collider } => {
            // The engine consumes the network by value; a shared batch
            // clones its frozen instance (cheap next to the build, and the
            // cached bitmask rows come along).
            let net = match shared {
                Some(Ok(net)) => net.clone(),
                Some(Err(e)) => return vec![RunRecord::failed(entry.kind.name(), e.clone())],
                None => {
                    let mut net_rng = StdRng::seed_from_u64(unit.net_seed);
                    match topo.build_with(&mut net_rng) {
                        Ok(net) => net,
                        Err(e) => return vec![RunRecord::failed(entry.kind.name(), e.to_string())],
                    }
                }
            };
            let n = net.n();
            let delta = net.max_degree_g();
            // Worst-case id order (the source gets the largest id) — the
            // round-robin baseline's slowest permutation.
            let ids = IdAssignment::from_ids((1..=n as u32).rev().collect())
                .expect("reversed identity is a permutation");
            let budget = max_rounds.unwrap_or(40_000);
            let mut builder = EngineBuilder::new(net).seed(unit.run_seed).ids(ids);
            if *collider {
                builder = builder.adversary(radio_sim::adversary::Collider);
            }
            let (rounds, covered, metrics) = if *decay {
                let mut e = builder
                    .spawn(|info| DecayBroadcast::new(info.n, info.node.index() == 0))
                    .expect("engine assembly from a validated network cannot fail");
                let out = e.run(budget);
                (
                    out.rounds,
                    matches!(out.stop, StopReason::AllDone),
                    *e.metrics(),
                )
            } else {
                let mut e = builder
                    .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
                    .expect("engine assembly from a validated network cannot fail");
                let out = e.run(budget);
                (
                    out.rounds,
                    matches!(out.stop, StopReason::AllDone),
                    *e.metrics(),
                )
            };
            let mut rec = RunRecord::blank(entry.kind.name(), n, delta);
            rec.valid = covered;
            rec.solve_round = covered.then_some(rounds);
            rec.rounds_executed = rounds;
            rec.metrics = Some(metrics);
            vec![rec]
        }
        Workload::BackboneCompare {
            b,
            flood_seed,
            flood_budget,
        } => {
            let owned;
            let net = match shared {
                Some(Ok(net)) => net,
                Some(Err(e)) => {
                    return vec![
                        RunRecord::failed("backbone", e.clone()),
                        RunRecord::failed("flood-all", e.clone()),
                    ]
                }
                None => {
                    let mut net_rng = StdRng::seed_from_u64(unit.net_seed);
                    match topo.build_with(&mut net_rng) {
                        Ok(net) => {
                            owned = net;
                            &owned
                        }
                        Err(e) => {
                            return vec![
                                RunRecord::failed("backbone", e.to_string()),
                                RunRecord::failed("flood-all", e.to_string()),
                            ]
                        }
                    }
                }
            };
            radio_structures::runner::run_backbone_modes(
                net,
                adversary,
                unit.run_seed,
                *b,
                &[false, true],
                *flood_seed,
                max_rounds.map_or(*flood_budget, |m| (*flood_budget).min(m)),
                max_rounds,
            )
        }
    }
}

/// `⌈log₂ n⌉³`, the paper's recurring round-complexity yardstick.
fn log3(n: usize) -> f64 {
    let l = f64::from(ceil_log2(n));
    l * l * l
}

fn u64_cell(v: Option<f64>) -> String {
    v.map_or("—".to_string(), |x| format!("{}", x as u64))
}

fn solve_cell(r: Option<u64>) -> String {
    r.map_or("—".to_string(), |r| r.to_string())
}

/// Renders the executed scenario into its table.
pub fn render(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    match spec.render {
        RenderKind::E1 => render_e1(spec, run),
        RenderKind::E2 => render_e2(spec, run),
        RenderKind::E3a | RenderKind::E3b => render_e3(spec, run),
        RenderKind::E4 => render_e4(spec, run),
        RenderKind::E5a => render_e5a(spec, run),
        RenderKind::E5b => render_e5b(spec, run),
        RenderKind::E5c => render_e5c(spec, run),
        RenderKind::E6 => render_e6(spec, run),
        RenderKind::E7 => render_e7(spec, run),
        RenderKind::E8 => render_e8(spec, run),
        RenderKind::E9a => render_e9a(spec, run),
        RenderKind::E9b => render_e9b(spec, run),
        RenderKind::E10 => render_e10(spec, run),
        RenderKind::E11 => render_e11(spec, run),
        RenderKind::Generic => match &spec.aggregate {
            Some(agg) => crate::aggregate::render_aggregate(spec, run, agg),
            None => render_generic(spec, run),
        },
        RenderKind::Aggregate => {
            let default;
            let agg = match &spec.aggregate {
                Some(agg) => agg,
                None => {
                    default = AggregateSpec::default();
                    &default
                }
            };
            crate::aggregate::render_aggregate(spec, run, agg)
        }
    }
}

fn render_e1(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "Delta",
            "trials",
            "valid",
            "mean solve rounds",
            "budget",
            "rounds/log^3 n",
        ],
    );
    let params = MisParams::default();
    let mut fit_points = Vec::new();
    // One row per topology entry, aggregating every record that landed on
    // it (the registry grid is 1 adversary × 1 workload, so that is
    // exactly `spec.trials`; user specs with more axes aggregate them all
    // into the row, and the trial count reports the true divisor).
    for ti in 0..spec.topologies.len() {
        let n = spec.topologies[ti].kind.n();
        let mut valid = 0u64;
        let mut solve_sum = 0u64;
        let mut delta = 0usize;
        let mut trials = 0u64;
        for (_, rec) in run.rows().filter(|(u, _)| u.topo == ti) {
            trials += 1;
            delta = delta.max(rec.max_degree);
            valid += u64::from(rec.valid);
            solve_sum += rec.solve_round.unwrap_or(rec.rounds_executed);
        }
        let mean = solve_sum as f64 / trials as f64;
        fit_points.push((f64::from(ceil_log2(n)), mean));
        t.push(vec![
            n.to_string(),
            delta.to_string(),
            trials.to_string(),
            format!("{valid}/{trials}"),
            f1(mean),
            params.total_rounds(n).to_string(),
            f3(mean / log3(n)),
        ]);
    }
    // Footer: the measured exponent of solve rounds in log n (paper: ≤ 3).
    let (p, dropped) = loglog_exponent_counting(&fit_points);
    if let Some(p) = p {
        t.caption.push_str(&format!(
            " [measured exponent of rounds in log n: {p:.2}; paper bound: 3]"
        ));
    }
    if dropped > 0 {
        t.caption.push_str(&dropped_points_note(dropped));
    }
    t
}

fn render_e2(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    use radio_structures::checker::{density_bound, mis_density_within};
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &["n", "r", "max in ball", "I_r bound", "within bound"],
    );
    for (unit, rec) in run.rows() {
        // Density checks need the embedding; rebuild the (deterministic)
        // network from the unit's seed.
        let net = spec.topologies[unit.topo]
            .kind
            .build(unit.net_seed)
            .expect("topology built once already");
        for r in [1.0f64, 2.0, 3.0] {
            let got = mis_density_within(&net, &rec.outputs, r).expect("embedded network");
            let bound = density_bound(r);
            t.push(vec![
                rec.n.to_string(),
                f1(r),
                got.to_string(),
                bound.to_string(),
                (got <= bound).to_string(),
            ]);
        }
    }
    t
}

fn render_e3(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "Delta",
            "b",
            "chunk windows",
            "schedule rounds",
            "solved at",
            "valid",
        ],
    );
    for (unit, rec) in run.rows() {
        let Workload::Core {
            algo: AlgoKind::Ccds { b },
        } = spec.workloads[unit.work].kind
        else {
            continue;
        };
        if rec.error.is_some() {
            t.push(vec![
                rec.n.to_string(),
                rec.max_degree.to_string(),
                b.to_string(),
                "—".to_string(),
                "—".to_string(),
                "b below minimum".to_string(),
                "—".to_string(),
            ]);
            continue;
        }
        let sched = CcdsConfig::new(rec.n, rec.max_degree, b)
            .schedule()
            .expect("the run executed this schedule");
        t.push(vec![
            rec.n.to_string(),
            rec.max_degree.to_string(),
            b.to_string(),
            sched.chunk_windows.to_string(),
            rec.schedule_total.unwrap_or(0).to_string(),
            solve_cell(rec.solve_round),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e4(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "tau",
            "Delta",
            "slots",
            "schedule rounds",
            "winners",
            "valid",
        ],
    );
    for (unit, rec) in run.rows() {
        let Workload::Core {
            algo: AlgoKind::TauCcds { tau, .. },
        } = spec.workloads[unit.work].kind
        else {
            continue;
        };
        let cfg = TauConfig::new(rec.n, rec.max_degree + tau, tau);
        t.push(vec![
            rec.n.to_string(),
            tau.to_string(),
            rec.max_degree.to_string(),
            cfg.schedule().slots.to_string(),
            rec.schedule_total.unwrap_or(0).to_string(),
            rec.winners.unwrap_or(0).to_string(),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e5a(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "beta",
            "optimal (no replacement)",
            "with replacement",
            "floor (beta+1)/2",
        ],
    );
    // Workload entries come in (no-replacement, with-replacement) pairs
    // per β. Pair by workload index — not by raw record position — so the
    // pairing survives trials > 1 and extra axes; one row per paired
    // record (the registry runs one trial, giving one row per β).
    let mut per_work: Vec<Vec<&RunRecord>> = vec![Vec::new(); spec.workloads.len()];
    for (unit, rec) in run.rows() {
        per_work[unit.work].push(rec);
    }
    for pair in per_work.chunks(2) {
        let [opts, withs] = pair else { continue };
        for (opt, with) in opts.iter().zip(withs) {
            t.push(vec![
                u64_cell(opt.extra("beta")),
                f1(opt.extra("mean_rounds").unwrap_or(f64::NAN)),
                f1(with.extra("mean_rounds").unwrap_or(f64::NAN)),
                f1(opt.extra("floor").unwrap_or(f64::NAN)),
            ]);
        }
    }
    t
}

fn render_e5b(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "Delta=beta",
            "trials",
            "valid",
            "mean solve",
            "mean bridge join",
            "schedule",
        ],
    );
    for recs in &run.records {
        for rec in recs {
            t.push(vec![
                u64_cell(rec.extra("beta")),
                u64_cell(rec.extra("trials")),
                format!(
                    "{}/{}",
                    rec.extra("valid_trials").unwrap_or(0.0) as u64,
                    rec.extra("trials").unwrap_or(0.0) as u64
                ),
                f1(rec.extra("mean_solve").unwrap_or(f64::NAN)),
                f1(rec.extra("mean_bridge").unwrap_or(f64::NAN)),
                rec.schedule_total.unwrap_or(0).to_string(),
            ]);
        }
    }
    t
}

fn render_e5c(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &["Delta", "0-complete rounds (b=4096)", "1-complete rounds"],
    );
    for (_, rec) in run.rows() {
        t.push(vec![
            rec.max_degree.to_string(),
            u64_cell(rec.extra("zero_complete_rounds")),
            u64_cell(rec.extra("one_complete_rounds")),
        ]);
    }
    t
}

fn render_e6(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "seed",
            "stabilize round",
            "delta_CDS",
            "checked at",
            "valid",
        ],
    );
    for (unit, rec) in run.rows() {
        t.push(vec![
            unit.run_seed.to_string(),
            u64_cell(rec.extra("stabilize_round")),
            u64_cell(rec.extra("delta_cds")),
            u64_cell(rec.extra("checked_at")),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e7(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "model",
            "max latency",
            "log^3 n",
            "latency/log^3 n",
            "valid",
        ],
    );
    for (_, rec) in run.rows() {
        // The record carries the model the run actually executed in
        // (run_async_mis picks the filter from `net.is_classic()`), so any
        // classic topology kind — not just GeometricClassic — labels
        // correctly.
        let classic = rec.extra("classic").unwrap_or(0.0) > 0.0;
        let max_latency = rec.extra("max_latency").unwrap_or(0.0);
        t.push(vec![
            rec.n.to_string(),
            if classic {
                "classic, no topology".to_string()
            } else {
                "dual graph, 0-complete".to_string()
            },
            format!("{}", max_latency as u64),
            f1(log3(rec.n)),
            f3(max_latency / log3(rec.n)),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e8(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "Delta",
            "banned-list explorations (max)",
            "naive turns",
            "banned rounds",
            "naive rounds",
            "banned valid",
        ],
    );
    for (_, rec) in run.rows() {
        let naive = NaiveCcdsConfig::new(rec.n, rec.max_degree);
        t.push(vec![
            rec.max_degree.to_string(),
            rec.max_explorations.unwrap_or(0).to_string(),
            naive.exploration_turns().to_string(),
            rec.schedule_total.unwrap_or(0).to_string(),
            naive.total_rounds().to_string(),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e9a(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &["adversary", "valid", "solve rounds", "collisions"],
    );
    for (unit, rec) in run.rows() {
        t.push(vec![
            spec.adversaries[unit.adv].name().to_string(),
            rec.valid.to_string(),
            solve_cell(rec.solve_round),
            rec.metrics.map_or(0, |m| m.collisions).to_string(),
        ]);
    }
    t
}

fn render_e9b(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "protocol",
            "adversary",
            "rounds to full coverage",
            "covered",
        ],
    );
    for (unit, rec) in run.rows() {
        let Workload::Broadcast { collider, .. } = spec.workloads[unit.work].kind else {
            continue;
        };
        t.push(vec![
            rec.algo.clone(),
            if collider {
                "collider"
            } else {
                "reliable-only"
            }
            .to_string(),
            rec.rounds_executed.to_string(),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_e10(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "backbone size",
            "mode",
            "coverage rounds",
            "broadcasts",
            "tx rate/round",
            "transmitters",
        ],
    );
    // Both backbone workload shapes (`BackboneCompare` with two records
    // per unit, `Core { Backbone }` with one) name each record after its
    // mode, so iterate every record and read the mode from it.
    for (unit, recs) in run.units.iter().zip(&run.records) {
        let is_backbone = matches!(
            spec.workloads[unit.work].kind,
            Workload::BackboneCompare { .. }
                | Workload::Core {
                    algo: AlgoKind::Backbone { .. },
                }
        );
        if !is_backbone {
            continue;
        }
        for rec in recs {
            let broadcasts = rec.extra("broadcasts").unwrap_or(0.0);
            t.push(vec![
                rec.n.to_string(),
                u64_cell(rec.extra("backbone_size")),
                rec.algo.clone(),
                solve_cell(rec.solve_round),
                format!("{}", broadcasts as u64),
                rec.solve_round
                    .map_or("—".to_string(), |r| f3(broadcasts / r as f64)),
                u64_cell(rec.extra("transmitters")),
            ]);
        }
    }
    t
}

fn render_e11(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "n",
            "tau",
            "schedule rounds",
            "winners",
            "max CCDS G'-neighbors",
            "valid",
        ],
    );
    for (unit, rec) in run.rows() {
        let Workload::Core {
            algo: AlgoKind::TauCcds { tau, .. },
        } = spec.workloads[unit.work].kind
        else {
            continue;
        };
        t.push(vec![
            rec.n.to_string(),
            tau.to_string(),
            rec.schedule_total.unwrap_or(0).to_string(),
            rec.winners.unwrap_or(0).to_string(),
            u64_cell(rec.extra("max_gprime_neighbors")),
            rec.valid.to_string(),
        ]);
    }
    t
}

fn render_generic(spec: &ScenarioSpec, run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &spec.id,
        &spec.caption,
        &[
            "topology",
            "adversary",
            "workload",
            "trial",
            "n",
            "valid",
            "solve round",
            "rounds",
            "error",
        ],
    );
    for (unit, recs) in run.units.iter().zip(&run.records) {
        for rec in recs {
            t.push(vec![
                spec.topologies[unit.topo].kind.label(),
                spec.adversaries[unit.adv].name().to_string(),
                rec.algo.clone(),
                unit.trial.to_string(),
                rec.n.to_string(),
                rec.valid.to_string(),
                solve_cell(rec.solve_round),
                rec.rounds_executed.to_string(),
                rec.error.clone().unwrap_or_else(|| "—".to_string()),
            ]);
        }
    }
    t
}

pub mod registry;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            id: "T0".to_string(),
            caption: "planner unit test".to_string(),
            render: RenderKind::Generic,
            topologies: vec![
                TopologyEntry::new(TopologyKind::Clique { n: 6 }),
                TopologyEntry::seeded(TopologyKind::GeometricDense { n: 16 }, 12),
            ],
            adversaries: vec![
                AdversaryKind::ReliableOnly,
                AdversaryKind::Random { p: 0.5 },
            ],
            workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
            trials: 3,
            nest: NestOrder::TopologyMajor,
            seeds: SeedPolicy {
                net_base: 100,
                run_base: 7,
            },
            stop: StopCondition::Default,
            aggregate: None,
        }
    }

    #[test]
    fn plan_matches_grid_product_and_orders_axes() {
        let spec = tiny_spec();
        let units = spec.plan();
        assert_eq!(units.len(), spec.grid_size());
        // 2 topologies x 2 adversaries x 1 workload x 3 trials.
        assert_eq!(units.len(), 12);
        // Topology-major: all topology-0 units first.
        assert!(units[..6].iter().all(|u| u.topo == 0));
        assert!(units[6..].iter().all(|u| u.topo == 1));
        // Seeds: derived base + trial; topology 1 pins its own net seed.
        assert_eq!(units[0].net_seed, 100);
        assert_eq!(units[1].net_seed, 101);
        assert_eq!(units[1].run_seed, 8);
        assert_eq!(units[6].net_seed, 12);
        let mut wm = spec.clone();
        wm.nest = NestOrder::WorkloadMajor;
        assert_eq!(wm.plan().len(), wm.grid_size());
    }

    #[test]
    fn run_spec_is_deterministic_and_renders() {
        let spec = tiny_spec();
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        assert_eq!(a.records, b.records);
        assert_eq!(a.units, b.units);
        let table = render(&spec, &a);
        assert_eq!(table.rows.len(), spec.grid_size());
        assert!(table.rows.iter().all(|r| r.len() == table.header.len()));
    }

    #[test]
    fn batched_shared_nets_match_private_builds() {
        // tiny_spec mixes a deterministic clique (its trials share one
        // frozen network) with a random geometric (never shared). Add a
        // Broadcast workload so the by-value engine path is covered too;
        // the batched sweep must be bit-identical to building every unit
        // privately.
        let mut spec = tiny_spec();
        spec.stop = StopCondition::Rounds { max: 200 };
        spec.workloads = vec![
            WorkloadEntry::core(AlgoKind::Mis),
            WorkloadEntry::new(Workload::Broadcast {
                decay: true,
                collider: false,
            }),
        ];
        let run = run_spec(&spec);
        let private: Vec<Vec<RunRecord>> = spec.plan().iter().map(|u| run_unit(&spec, u)).collect();
        assert_eq!(run.records, private);
        // The clique units carry a batch key; the random topology never
        // shares.
        assert!(shared_net_key(&spec, 0).is_some());
        let geo = run.units.iter().position(|u| u.topo == 1).unwrap() as u64;
        assert!(shared_net_key(&spec, geo).is_none());
    }

    #[test]
    fn fused_core_cells_match_private_builds() {
        // A dense deterministic clique whose Core cells genuinely engage
        // the batched engine tier, with a τ-CCDS workload whose detector
        // stream continues the topology stream (det_seed = None) — the
        // subtle part of the fused det_rng derivation — plus a pinned
        // det_seed variant. Fused records must equal the build-per-trial
        // reference exactly.
        let mut spec = tiny_spec();
        spec.topologies = vec![TopologyEntry::new(TopologyKind::Clique { n: 24 })];
        spec.trials = 4;
        spec.stop = StopCondition::Rounds { max: 400 };
        let mut pinned = WorkloadEntry::core(AlgoKind::TauCcds {
            tau: 1,
            spurious: radio_sim::SpuriousSource::UnreliableNeighbors,
        });
        pinned.det_seed = Some(99);
        spec.workloads = vec![
            WorkloadEntry::core(AlgoKind::Mis),
            WorkloadEntry::core(AlgoKind::TauCcds {
                tau: 1,
                spurious: radio_sim::SpuriousSource::UnreliableNeighbors,
            }),
            pinned,
        ];
        let run = run_spec(&spec);
        let private: Vec<Vec<RunRecord>> = spec.plan().iter().map(|u| run_unit(&spec, u)).collect();
        assert_eq!(run.records, private);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = tiny_spec();
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("spec parses");
        assert_eq!(back, spec);
        // And the executed run serializes too (the radio-lab results file).
        let run = run_spec(&spec);
        let json = serde_json::to_string(&run).expect("run serializes");
        let back: ScenarioRun = serde_json::from_str(&json).expect("run parses");
        assert_eq!(back, run);
    }

    #[test]
    fn broken_topology_yields_error_record() {
        let mut spec = tiny_spec();
        spec.topologies = vec![TopologyEntry::new(TopologyKind::Geometric {
            n: 10,
            side: 1000.0,
            d: 2.0,
            gray_prob: 0.0,
            max_attempts: 2,
        })];
        spec.trials = 1;
        let run = run_spec(&spec);
        assert!(run.records.iter().flatten().all(|r| r.error.is_some()));
        let table = render(&spec, &run);
        assert!(table.rows.iter().all(|r| r[5] == "false"));
    }
}
