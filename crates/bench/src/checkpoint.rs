//! Checkpoint/restore and sharding for streamed sweeps: fault-tolerant,
//! mergeable partial computation over the scenario grid.
//!
//! PR 4 made sweep memory O(chunk); this layer makes sweep *progress*
//! durable and divisible. Both features lean on two existing invariants:
//! [`ScenarioSpec::unit_at`] decodes any grid index to its unit — seeds
//! included — in O(1), so execution can (re)enter the grid anywhere, and
//! the aggregation accumulators merge **in index order bit-for-bit**
//! ([`crate::stats::StreamingSummary::merge`] replays raw samples), so
//! partial folds recombine into exactly the uninterrupted fold.
//!
//! # Checkpoint schema (`radio-lab/checkpoint/v1`)
//!
//! A [`SweepCheckpoint`] is a JSON file written **atomically** (temp file
//! + rename) after every durable chunk:
//!
//! * `schema` — the literal [`CHECKPOINT_SCHEMA`]; unknown schemas refuse
//!   to resume.
//! * `fingerprint` — [`spec_fingerprint`] of the running spec. Resume
//!   **refuses** a mismatch: a checkpoint only continues the exact grid
//!   (same axes, seeds, trials, aggregation) it was cut from.
//! * `start` / `end` — the slice of grid indices this run covers (the
//!   whole grid, or one shard's range).
//! * `next_index` — the first grid index not yet durable. Every sink
//!   flushed before the checkpoint was written
//!   ([`crate::sink::RecordSink::flush_chunk`]), so the checkpoint never
//!   points past durable data.
//! * `records` / `wall_s` — cumulative counters for the resumed totals.
//! * `jsonl_lines` — durable record-log lines at `next_index` (`null`
//!   when no `--records` log rides along). On resume the log is scanned
//!   and truncated back to exactly this many complete lines
//!   ([`truncate_jsonl_to_lines`]) — a torn final line from a mid-write
//!   crash is dropped with a warning instead of poisoning the log.
//! * `aggregate` — the lossless [`AggregateSnapshot`] (floats as
//!   [`f64::to_bits`] patterns), restoring the fold bit-for-bit.
//!
//! # Fingerprint rule
//!
//! [`spec_fingerprint`] is FNV-1a 64 over the spec's canonical (compact)
//! JSON serialization, hex-encoded. Any observable change to the grid —
//! axes, order, seeds, stop condition, aggregation — changes the
//! fingerprint; resume and merge refuse mismatches rather than silently
//! blending two different sweeps.
//!
//! # Shards and the merge-order invariant
//!
//! [`shard_range`] splits the grid into `m` contiguous, balanced,
//! index-ordered ranges. Each shard streams its slice into a
//! [`ShardPartial`] (`radio-lab/partial/v1`: the spec, the shard's range,
//! its aggregate snapshot, and the path of its record log, if any).
//! [`merge_partials`] folds partials **in shard order** — the
//! concatenation of the slices is the whole grid in index order, so the
//! ordered accumulator merge reproduces the single-process fold and the
//! rendered table/CSV/JSONL are **byte-identical** to an uninterrupted
//! `--stream` run. Merging out of order, with gaps, or across different
//! fingerprints is refused. (The one caveat: a single shard pushing more
//! than [`crate::stats::EXACT_QUANTILE_CAP`] observations into one
//! aggregation group collapses that group's percentile state to P²
//! markers, whose merge is approximate — far beyond this repo's trial
//! counts.)

use crate::aggregate::AggregateSnapshot;
use crate::parallel::run_trials_chunked_range;
use crate::scenario::{run_unit, ScenarioSpec};
use crate::sink::{JsonlWriter, RecordSink, SinkFile, StreamAggregate};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::ops::Range;
use std::path::Path;
use std::time::Instant;

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable: on POSIX filesystems a rename only survives power loss once
/// the *directory* is synced, not just the file. A `path` with no parent
/// component syncs the current directory.
///
/// # Errors
///
/// Surfaces the open or `fsync` error.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// Serializes to pretty JSON, mapping a serialization failure into an
/// `InvalidData` I/O error instead of panicking — serve-layer callers
/// must degrade, never abort.
pub(crate) fn json_pretty<T: Serialize>(v: &T) -> io::Result<String> {
    serde_json::to_string_pretty(v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Compact single-line variant of [`json_pretty`].
pub(crate) fn json_compact<T: Serialize>(v: &T) -> io::Result<String> {
    serde_json::to_string(v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes `bytes` to `path` **atomically and durably**: the bytes land in
/// a uniquely-named sibling temp file, are fsynced, the temp renames over
/// `path`, and the containing directory is fsynced. A crash at any moment
/// leaves either the old file or the new one — never a torn mix — and
/// once this returns the new content survives power loss, not just
/// process death. The temp name embeds the process id so concurrent
/// writers (the sweep-service worker fleet renaming over shared claim
/// files) never clobber each other's in-flight temp.
///
/// # Errors
///
/// Surfaces the underlying filesystem errors; the temp file is removed on
/// a failed rename.
pub fn write_durable_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("durable");
    let tmp = path.with_file_name(format!(".{name}.tmp{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path)
}

/// Schema id of [`SweepCheckpoint`] files.
pub use crate::schemas::CHECKPOINT_SCHEMA;

/// Schema id of [`ShardPartial`] files.
pub use crate::schemas::PARTIAL_SCHEMA;

/// FNV-1a 64 of the spec's canonical (compact) JSON — the identity a
/// checkpoint or shard partial was cut from. Resume and merge refuse to
/// combine state across different fingerprints.
pub fn spec_fingerprint(spec: &ScenarioSpec) -> String {
    // lint:allow(no-panic-serve) ScenarioSpec is plain serde data whose derived Serialize cannot fail, and the infallible String signature is load-bearing for every resume/merge caller
    let json = serde_json::to_string(spec).expect("spec serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One shard of a sharded sweep: the `index`-th of `count` contiguous
/// grid slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRef {
    /// Zero-based shard index.
    pub index: u64,
    /// Total shard count.
    pub count: u64,
}

impl ShardRef {
    /// Parses the CLI shape `i/m` (e.g. `--shard 2/8`).
    ///
    /// # Errors
    ///
    /// Rejects malformed text, `m = 0`, and `i >= m`.
    pub fn parse(s: &str) -> Result<ShardRef, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("expected i/m (e.g. 0/4), got {s}"))?;
        let index: u64 = i.parse().map_err(|_| format!("bad shard index {i}"))?;
        let count: u64 = m.parse().map_err(|_| format!("bad shard count {m}"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardRef { index, count })
    }
}

impl std::fmt::Display for ShardRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The contiguous grid slice of one shard: balanced ranges
/// `[⌊i·total/m⌋, ⌊(i+1)·total/m⌋)` whose concatenation over
/// `i = 0..m` is exactly `[0, total)` in index order.
pub fn shard_range(total: u64, shard: ShardRef) -> Range<u64> {
    let (i, m, t) = (
        u128::from(shard.index),
        u128::from(shard.count),
        u128::from(total),
    );
    // For valid refs (index < count) both bounds are ≤ total by
    // construction; the clamp makes degenerate refs (count 0, index out
    // of range) yield an empty tail slice instead of panicking.
    let m = m.max(1);
    let lo = (i * t / m).min(t) as u64;
    let hi = ((i + 1) * t / m).min(t) as u64;
    lo..hi
}

/// A durable mid-sweep state: everything needed to continue the slice
/// `[next_index, end)` and land on output byte-identical to the
/// uninterrupted run. See the module docs for the field-by-field schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// The literal [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// [`spec_fingerprint`] of the sweep's spec.
    pub fingerprint: String,
    /// The shard this checkpoint belongs to (`None` = unsharded sweep).
    pub shard: Option<ShardRef>,
    /// First grid index of the run's slice.
    pub start: u64,
    /// One past the last grid index of the run's slice.
    pub end: u64,
    /// First grid index not yet durable — resume re-enters here.
    pub next_index: u64,
    /// Records accepted so far (cumulative across resumes).
    pub records: u64,
    /// Wall-clock seconds spent so far (cumulative across resumes).
    pub wall_s: f64,
    /// Durable record-log lines at `next_index` (`None` = no JSONL log).
    pub jsonl_lines: Option<u64>,
    /// The aggregation fold's lossless state.
    pub aggregate: AggregateSnapshot,
}

impl SweepCheckpoint {
    /// Writes the checkpoint **atomically and durably**
    /// ([`write_durable_atomic`]): temp file + fsync + rename + directory
    /// fsync, so a crash mid-write leaves the previous checkpoint intact
    /// and a completed save survives power loss, not just process death.
    ///
    /// # Errors
    ///
    /// Surfaces the underlying filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_durable_atomic(path, json.as_bytes())
    }

    /// Reads a checkpoint back, verifying the schema id.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem errors; malformed JSON or an unknown schema
    /// yield [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<SweepCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        let cp: SweepCheckpoint = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: not a checkpoint file: {e}", path.display())))?;
        if cp.schema != CHECKPOINT_SCHEMA {
            return Err(invalid(format!(
                "{}: unknown checkpoint schema {:?} (expected {CHECKPOINT_SCHEMA:?})",
                path.display(),
                cp.schema
            )));
        }
        Ok(cp)
    }

    /// Checks that this checkpoint continues exactly the invocation at
    /// hand: same spec fingerprint, same shard, same slice, and a record
    /// log on both sides or neither.
    ///
    /// # Errors
    ///
    /// Returns a human-readable refusal; resuming must not proceed.
    pub fn validate(
        &self,
        spec: &ScenarioSpec,
        shard: Option<ShardRef>,
        slice: &Range<u64>,
        has_jsonl: bool,
    ) -> Result<(), String> {
        let fp = spec_fingerprint(spec);
        if self.fingerprint != fp {
            return Err(format!(
                "checkpoint fingerprint {} does not match spec {} ({}): the spec changed since \
                 the checkpoint was written — refusing to resume",
                self.fingerprint, spec.id, fp
            ));
        }
        if self.shard != shard {
            return Err(format!(
                "checkpoint belongs to shard {} but this invocation is {} — resume with the \
                 same --shard",
                opt_shard(self.shard),
                opt_shard(shard)
            ));
        }
        if self.start != slice.start || self.end != slice.end {
            return Err(format!(
                "checkpoint covers grid slice {}..{} but this invocation covers {}..{}",
                self.start, self.end, slice.start, slice.end
            ));
        }
        if !(self.start..=self.end).contains(&self.next_index) {
            return Err(format!(
                "checkpoint next_index {} outside its own slice {}..{}",
                self.next_index, self.start, self.end
            ));
        }
        if self.jsonl_lines.is_some() != has_jsonl {
            return Err(if has_jsonl {
                "checkpoint has no record log but --records was given — resume without \
                 --records or restart"
                    .to_string()
            } else {
                "checkpoint carries a record log but --records was not given — pass the same \
                 --records path to resume"
                    .to_string()
            });
        }
        Ok(())
    }
}

fn opt_shard(s: Option<ShardRef>) -> String {
    s.map_or_else(|| "<none>".to_string(), |s| s.to_string())
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// What [`truncate_jsonl_to_lines`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlTruncation {
    /// Bytes kept (the durable prefix the checkpoint refers to).
    pub kept_bytes: u64,
    /// Complete lines dropped (written after the checkpoint, so the
    /// resumed sweep re-emits them).
    pub dropped_lines: u64,
    /// Bytes removed, complete and torn together.
    pub dropped_bytes: u64,
    /// Whether a torn (unterminated) final line was among the removed —
    /// the signature of a crash mid-write.
    pub torn_tail: bool,
}

/// Prepares a JSONL record log for resume: keeps exactly the first
/// `lines` newline-terminated lines — the prefix the checkpoint declares
/// durable — and truncates everything after, whether complete lines
/// written after the checkpoint or a **torn final line** from a crash
/// mid-write (which would otherwise poison
/// [`radio_structures::runner::RunRecord::from_jsonl`] over the file).
/// The resumed sweep re-emits the truncated records, so the final log is
/// byte-identical to an uninterrupted run's.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the log holds *fewer* complete
/// lines than the checkpoint records — the log was truncated or edited
/// out from under the checkpoint, and resuming would lose records.
pub fn truncate_jsonl_to_lines(path: &Path, lines: u64) -> io::Result<JsonlTruncation> {
    let file = File::open(path)?;
    let total_bytes = file.metadata()?.len();
    let mut reader = io::BufReader::new(file);
    let mut buf = Vec::new();
    let mut complete = 0u64;
    let mut keep_bytes = 0u64;
    let mut offset = 0u64;
    let mut torn_tail = false;
    loop {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        if buf.last() == Some(&b'\n') {
            complete += 1;
            if complete <= lines {
                keep_bytes = offset;
            }
        } else {
            torn_tail = true;
        }
    }
    if complete < lines {
        return Err(invalid(format!(
            "{}: checkpoint records {lines} durable JSONL lines but only {complete} complete \
             lines exist — the log was truncated or edited; refusing to resume",
            path.display()
        )));
    }
    let report = JsonlTruncation {
        kept_bytes: keep_bytes,
        dropped_lines: complete - lines,
        dropped_bytes: total_bytes - keep_bytes,
        torn_tail,
    };
    if report.dropped_bytes > 0 {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep_bytes)?;
    }
    Ok(report)
}

/// The record-log sink type the checkpointed runner drives: a JSONL
/// writer over a buffered [`SinkFile`] (a plain file in production; the
/// chaos harness can arm its [`crate::sink::FaultTrip`] to inject
/// deterministic write failures).
pub type FileJsonl = JsonlWriter<BufWriter<SinkFile>>;

/// How a [`run_slice_checkpointed`] call ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceRun {
    /// First grid index not executed (equals the slice end unless
    /// interrupted by `limit_chunks`).
    pub next_index: u64,
    /// Cumulative records accepted (including the resumed base).
    pub records: u64,
    /// Cumulative wall-clock seconds (including the resumed base).
    pub wall_s: f64,
    /// `true` when the `limit_chunks` testing hook stopped the run early
    /// (the checkpoint, if configured, records `next_index`).
    pub interrupted: bool,
}

/// The chunk-boundary callback a [`SliceJob`] may carry: invoked after
/// every durable chunk with `(next_index, chunks_done)` — `next_index` is
/// the first grid index not yet executed and `chunks_done` counts this
/// invocation's completed chunks (1-based). By the time the hook runs the
/// chunk's sinks have flushed and the checkpoint (if configured) has
/// landed, so the hook is the safe place for the sweep service's
/// heartbeat refresh, lease fencing, and fault injection. A hook error
/// aborts the sweep like a sink error would.
pub type ChunkHook<'a> = &'a mut dyn FnMut(u64, u64) -> io::Result<()>;

/// What [`run_slice_checkpointed`] executes: the spec, the pending and
/// overall index ranges, the durability targets, and the counters carried
/// over from a resumed checkpoint.
pub struct SliceJob<'a> {
    /// The sweep's spec.
    pub spec: &'a ScenarioSpec,
    /// Chunk size (units per window).
    pub chunk: u64,
    /// Still-pending indices — a suffix of `bounds` (equal to it for a
    /// fresh run, `next_index..end` when resuming).
    pub todo: Range<u64>,
    /// The full slice this sweep covers (whole grid, or a shard's range).
    pub bounds: Range<u64>,
    /// The shard identity recorded in checkpoints (`None` = unsharded).
    pub shard: Option<ShardRef>,
    /// Records already durable before this call (from the checkpoint).
    pub base_records: u64,
    /// Wall-clock seconds already spent before this call.
    pub base_wall_s: f64,
    /// Where to write per-chunk checkpoints (`None` = don't checkpoint).
    pub checkpoint_path: Option<&'a Path>,
    /// Testing hook: stop cleanly after this many chunks, leaving the
    /// checkpoint behind — a kill at an exact chunk boundary.
    pub limit_chunks: Option<u64>,
    /// Chunk-boundary callback (`None` = no hook); see [`ChunkHook`].
    pub on_chunk: Option<ChunkHook<'a>>,
}

/// Executes the still-pending indices of a [`SliceJob`], folding into
/// `agg` (and `jsonl`, when given) and writing a [`SweepCheckpoint`]
/// after **every durable chunk**: sinks flush first, then the checkpoint
/// lands atomically, so the checkpoint never points past durable data
/// and a crash at any moment loses at most the in-flight chunk. On
/// completion the checkpoint file is consumed (deleted).
///
/// The record stream this run observes is identical to
/// [`crate::scenario::run_spec_streaming_range`] over the same indices —
/// both decode units through [`ScenarioSpec::unit_at`] and consume
/// windows in index order — so resumed and sharded output is
/// byte-identical to the uninterrupted pipeline's.
///
/// # Errors
///
/// Returns the first sink or checkpoint-write error.
///
/// # Panics
///
/// Panics if the chunk size is zero or the ranges are inconsistent.
pub fn run_slice_checkpointed(
    job: SliceJob<'_>,
    agg: &mut StreamAggregate,
    mut jsonl: Option<&mut FileJsonl>,
) -> io::Result<SliceRun> {
    let SliceJob {
        spec,
        chunk,
        todo,
        bounds,
        shard,
        base_records,
        base_wall_s,
        checkpoint_path,
        limit_chunks,
        mut on_chunk,
    } = job;
    assert!(
        bounds.start <= todo.start && todo.end == bounds.end,
        "pending range {todo:?} must be a suffix of the sweep bounds {bounds:?}"
    );
    let fingerprint = spec_fingerprint(spec);
    let started = Instant::now();
    let mut records = base_records;
    let mut next_index = todo.start;
    let mut chunks_done = 0u64;
    // Set only by the limit_chunks hook, immediately before it raises its
    // sentinel error — so a genuine sink error can never be mistaken for
    // the simulated kill, whatever its ErrorKind.
    let mut hit_limit = false;
    let interrupted = io::ErrorKind::Interrupted;
    let result = run_trials_chunked_range(
        todo.clone(),
        chunk,
        |i| {
            let unit = spec.unit_at(i);
            let recs = run_unit(spec, &unit);
            (unit, recs)
        },
        |window_start, window| {
            for (unit, recs) in &window {
                records += recs.len() as u64;
                agg.accept(spec, unit, recs)?;
                if let Some(log) = jsonl.as_deref_mut() {
                    log.accept(spec, unit, recs)?;
                }
            }
            // Durability order: sinks flush (and, when a checkpoint will
            // reference them, fsync), then the checkpoint lands — so the
            // checkpoint never records a line count that could vanish in
            // a power loss.
            if let Some(log) = jsonl.as_deref_mut() {
                log.flush_chunk()?;
                if checkpoint_path.is_some() {
                    log.sync_data()?;
                }
            }
            next_index = window_start + window.len() as u64;
            if let Some(path) = checkpoint_path {
                SweepCheckpoint {
                    schema: CHECKPOINT_SCHEMA.to_string(),
                    fingerprint: fingerprint.clone(),
                    shard,
                    start: bounds.start,
                    end: bounds.end,
                    next_index,
                    records,
                    wall_s: base_wall_s + started.elapsed().as_secs_f64(),
                    jsonl_lines: jsonl.as_ref().map(|log| log.lines()),
                    aggregate: agg.snapshot(),
                }
                .save(path)?;
            }
            chunks_done += 1;
            if let Some(hook) = on_chunk.as_deref_mut() {
                hook(next_index, chunks_done)?;
            }
            if limit_chunks == Some(chunks_done) && next_index < bounds.end {
                hit_limit = true;
                return Err(io::Error::new(interrupted, "chunk limit reached"));
            }
            Ok(())
        },
    );
    match result {
        Ok(()) => {
            if let Some(path) = checkpoint_path {
                // The checkpoint is consumed; a leftover file would make a
                // later identical invocation refuse to start fresh.
                if let Err(e) = std::fs::remove_file(path) {
                    if e.kind() != io::ErrorKind::NotFound {
                        return Err(e);
                    }
                }
            }
            Ok(SliceRun {
                next_index: bounds.end,
                records,
                wall_s: base_wall_s + started.elapsed().as_secs_f64(),
                interrupted: false,
            })
        }
        // Only the armed testing hook maps to a clean interrupt — a
        // genuine sink error that happens to carry ErrorKind::Interrupted
        // must still surface as the error it is.
        Err(e) if hit_limit && e.kind() == interrupted => Ok(SliceRun {
            next_index,
            records,
            wall_s: base_wall_s + started.elapsed().as_secs_f64(),
            interrupted: true,
        }),
        Err(e) => Err(e),
    }
}

/// One shard's finished slice, self-describing enough to merge: the spec
/// (and its fingerprint), the slice bounds, the shard's lossless
/// aggregate fold, and the path of its record log, if one was written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPartial {
    /// The literal [`PARTIAL_SCHEMA`].
    pub schema: String,
    /// [`spec_fingerprint`] of `spec`.
    pub fingerprint: String,
    /// Which shard of how many.
    pub shard: ShardRef,
    /// First grid index of the shard's slice.
    pub start: u64,
    /// One past the last grid index of the shard's slice.
    pub end: u64,
    /// Records the slice produced.
    pub records: u64,
    /// Wall-clock seconds the shard spent.
    pub wall_s: f64,
    /// The `--records` JSONL path this shard wrote, if any (as given on
    /// its command line; `merge --records` concatenates these in shard
    /// order).
    pub records_path: Option<String>,
    /// The sweep's spec, verbatim — merge renders the final table from
    /// it without re-reading the original spec file.
    pub spec: ScenarioSpec,
    /// The shard's aggregate fold.
    pub aggregate: AggregateSnapshot,
}

impl ShardPartial {
    /// Writes the partial artifact (atomically and durably, like a
    /// checkpoint — [`write_durable_atomic`]).
    ///
    /// # Errors
    ///
    /// Surfaces the underlying filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_durable_atomic(path, json.as_bytes())
    }

    /// Reads a partial back, verifying the schema id.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem errors; malformed JSON or an unknown schema
    /// yield [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<ShardPartial> {
        let text = std::fs::read_to_string(path)?;
        let p: ShardPartial = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: not a shard partial: {e}", path.display())))?;
        if p.schema != PARTIAL_SCHEMA {
            return Err(invalid(format!(
                "{}: unknown partial schema {:?} (expected {PARTIAL_SCHEMA:?})",
                path.display(),
                p.schema
            )));
        }
        Ok(p)
    }
}

/// A complete sweep reassembled from shard partials.
pub struct MergedSweep {
    /// The sweep's spec (identical across all partials).
    pub spec: ScenarioSpec,
    /// The combined fold, ready to render — byte-identical to the
    /// single-process sweep's.
    pub agg: StreamAggregate,
    /// Total units (= the grid product).
    pub units: u64,
    /// Total records across all shards.
    pub records: u64,
    /// Summed shard wall-clock seconds (CPU-time-like; shards usually ran
    /// concurrently).
    pub wall_s: f64,
    /// Each shard's record-log path (shard order) — `merge --records`
    /// concatenates them.
    pub records_paths: Vec<Option<String>>,
}

/// Folds shard partials back into the single sweep. Partials may arrive
/// in any order on the command line; they are sorted by shard index and
/// merged **in shard order** (the merge-order invariant — ordered merges
/// replay samples, so the fold is bit-identical to the uninterrupted
/// run). Refuses mixed fingerprints, duplicate or missing shards, gaps,
/// or slices that don't tile the grid exactly.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] with a human-readable reason for every
/// refusal above.
pub fn merge_partials(partials: Vec<ShardPartial>) -> io::Result<MergedSweep> {
    let mut parts = partials;
    if parts.is_empty() {
        return Err(invalid("no partials to merge".to_string()));
    }
    parts.sort_by_key(|p| p.shard.index);
    let first = &parts[0];
    let count = first.shard.count;
    if parts.len() as u64 != count {
        return Err(invalid(format!(
            "partials declare {count} shards but {} were given",
            parts.len()
        )));
    }
    let total = first.spec.grid_size() as u64;
    let mut expected_start = 0u64;
    for (i, p) in parts.iter().enumerate() {
        if p.fingerprint != first.fingerprint || p.spec != first.spec {
            return Err(invalid(format!(
                "shard {} was cut from a different spec (fingerprint {} vs {}) — refusing to \
                 merge",
                p.shard, p.fingerprint, first.fingerprint
            )));
        }
        if p.shard.count != count {
            return Err(invalid(format!(
                "shard {} disagrees on the shard count (expected {count})",
                p.shard
            )));
        }
        if p.shard.index != i as u64 {
            return Err(invalid(format!(
                "duplicate or missing shard: expected index {i}, found {}",
                p.shard
            )));
        }
        if p.start != expected_start {
            return Err(invalid(format!(
                "shard {} starts at {} but the previous slice ended at {expected_start} — \
                 slices must tile the grid contiguously",
                p.shard, p.start
            )));
        }
        if p.end < p.start {
            return Err(invalid(format!("shard {} has an inverted slice", p.shard)));
        }
        expected_start = p.end;
    }
    if expected_start != total {
        return Err(invalid(format!(
            "slices cover 0..{expected_start} but the grid holds {total} units"
        )));
    }
    let mut parts = parts.into_iter();
    let Some(first) = parts.next() else {
        return Err(invalid("no shard partials to merge".to_string()));
    };
    let spec = first.spec;
    let mut agg = StreamAggregate::restore_for_spec(&spec, first.aggregate)
        .map_err(|e| invalid(format!("shard 0: {e}")))?;
    let (mut records, mut wall_s) = (first.records, first.wall_s);
    let mut records_paths = vec![first.records_path];
    for p in parts {
        agg.merge_snapshot(&p.aggregate)
            .map_err(|e| invalid(format!("shard {}: {e}", p.shard)))?;
        records += p.records;
        wall_s += p.wall_s;
        records_paths.push(p.records_path);
    }
    Ok(MergedSweep {
        spec,
        agg,
        units: total,
        records,
        wall_s,
        records_paths,
    })
}

/// Concatenates the shards' record logs, in shard order, into `out` —
/// the JSONL stream an unsharded sweep would have written, byte for
/// byte. Every shard must have logged records (all-or-nothing across the
/// fleet).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when a shard recorded no log path;
/// filesystem errors surface as-is.
pub fn concat_record_logs(paths: &[Option<String>], out: &Path) -> io::Result<u64> {
    let mut writer = BufWriter::new(File::create(out)?);
    let mut bytes = 0u64;
    for (i, p) in paths.iter().enumerate() {
        let p = p.as_ref().ok_or_else(|| {
            invalid(format!(
                "shard {i} wrote no record log (--records was not passed to it) — cannot \
                 assemble a merged log"
            ))
        })?;
        let mut f = File::open(p)?;
        bytes += io::copy(&mut f, &mut writer)?;
    }
    writer.flush()?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        run_spec_streaming, NestOrder, RenderKind, ScenarioSpec, SeedPolicy, StopCondition,
        TopologyEntry, WorkloadEntry,
    };
    use radio_sim::spec::{AdversaryKind, TopologyKind};
    use radio_structures::runner::AlgoKind;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            id: "CKPT".to_string(),
            caption: "checkpoint unit test".to_string(),
            render: RenderKind::Aggregate,
            topologies: vec![
                TopologyEntry::new(TopologyKind::Clique { n: 5 }),
                TopologyEntry::new(TopologyKind::Path { n: 6 }),
            ],
            adversaries: vec![AdversaryKind::ReliableOnly],
            workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
            trials: 4,
            nest: NestOrder::TopologyMajor,
            seeds: SeedPolicy {
                net_base: 31,
                run_base: 8,
            },
            stop: StopCondition::Default,
            aggregate: None,
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("radio_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let a = spec();
        let mut b = spec();
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&a));
        b.trials += 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
        b = spec();
        b.seeds.run_base += 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn shard_ranges_tile_the_grid() {
        for total in [0u64, 1, 7, 8, 100] {
            for m in [1u64, 2, 3, 7, 13] {
                let mut next = 0u64;
                for i in 0..m {
                    let r = shard_range(total, ShardRef { index: i, count: m });
                    assert_eq!(r.start, next, "total {total}, shard {i}/{m}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, total, "total {total}, {m} shards");
            }
        }
        assert!(ShardRef::parse("2/4").is_ok());
        assert!(ShardRef::parse("4/4").is_err());
        assert!(ShardRef::parse("0/0").is_err());
        assert!(ShardRef::parse("1-4").is_err());
    }

    #[test]
    fn checkpoint_roundtrips_and_validates() {
        let dir = scratch("roundtrip");
        let spec = spec();
        let mut agg = StreamAggregate::for_spec(&spec);
        run_spec_streaming(&spec, 3, &mut [&mut agg]).expect("no I/O");
        let cp = SweepCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            fingerprint: spec_fingerprint(&spec),
            shard: None,
            start: 0,
            end: spec.grid_size() as u64,
            next_index: 3,
            records: 3,
            wall_s: 0.25,
            jsonl_lines: None,
            aggregate: agg.snapshot(),
        };
        let path = dir.join("cp.json");
        cp.save(&path).expect("saves");
        let back = SweepCheckpoint::load(&path).expect("loads");
        assert_eq!(back, cp);
        let full = 0..spec.grid_size() as u64;
        assert!(back.validate(&spec, None, &full, false).is_ok());
        // Fingerprint mismatch refused.
        let mut other = spec.clone();
        other.trials += 1;
        let r = back.validate(&other, None, &(0..other.grid_size() as u64), false);
        assert!(r.is_err_and(|e| e.contains("fingerprint")));
        // Shard / slice / jsonl mismatches refused.
        assert!(back
            .validate(&spec, Some(ShardRef { index: 0, count: 2 }), &full, false)
            .is_err());
        assert!(back.validate(&spec, None, &(1..full.end), false).is_err());
        assert!(back.validate(&spec, None, &full, true).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_truncation_drops_torn_and_extra_lines() {
        let dir = scratch("torn");
        let path = dir.join("log.jsonl");
        // Three durable lines, one extra complete line, one torn tail.
        std::fs::write(&path, "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n{\"a\":4}\n{\"a\":")
            .expect("writes");
        let rep = truncate_jsonl_to_lines(&path, 3).expect("truncates");
        assert_eq!(rep.dropped_lines, 1);
        assert!(rep.torn_tail);
        assert!(rep.dropped_bytes > 0);
        assert_eq!(
            std::fs::read_to_string(&path).expect("reads"),
            "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n"
        );
        // Already-clean log: nothing dropped.
        let rep = truncate_jsonl_to_lines(&path, 3).expect("clean");
        assert_eq!(rep.dropped_bytes, 0);
        assert!(!rep.torn_tail);
        // Fewer durable lines than the checkpoint claims: refuse.
        assert!(truncate_jsonl_to_lines(&path, 5).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_error_surfaces_without_advancing_checkpoint() {
        use crate::sink::{FaultTrip, SinkFile, INJECTED_SINK_ERROR};
        use std::io::BufWriter;

        let dir = scratch("sinkerr");
        let spec = spec();
        let total = spec.grid_size() as u64;
        let ref_cp = dir.join("ref.ckpt");
        let cp = dir.join("cp.json");

        // Reference: the same slice, uninterrupted.
        let ref_jsonl = dir.join("ref.jsonl");
        let mut ref_agg = StreamAggregate::for_spec(&spec);
        let mut ref_log = JsonlWriter::new(BufWriter::new(SinkFile::new(
            std::fs::File::create(&ref_jsonl).expect("creates"),
        )));
        run_slice_checkpointed(
            SliceJob {
                spec: &spec,
                chunk: 2,
                todo: 0..total,
                bounds: 0..total,
                shard: None,
                base_records: 0,
                base_wall_s: 0.0,
                checkpoint_path: Some(&ref_cp),
                limit_chunks: None,
                on_chunk: None,
            },
            &mut ref_agg,
            Some(&mut ref_log),
        )
        .expect("reference runs");
        ref_log.finish().expect("finishes");

        // Faulted run: arm the trip at the first chunk boundary, so the
        // second chunk's record-log flush fails mid-sweep.
        let jsonl_path = dir.join("out.jsonl");
        let trip = FaultTrip::new();
        let mut agg = StreamAggregate::for_spec(&spec);
        let mut log = JsonlWriter::new(BufWriter::new(SinkFile::with_trip(
            std::fs::File::create(&jsonl_path).expect("creates"),
            trip.clone(),
        )));
        let mut arm = |_next: u64, chunks_done: u64| {
            if chunks_done == 1 {
                trip.arm();
            }
            Ok(())
        };
        let err = run_slice_checkpointed(
            SliceJob {
                spec: &spec,
                chunk: 2,
                todo: 0..total,
                bounds: 0..total,
                shard: None,
                base_records: 0,
                base_wall_s: 0.0,
                checkpoint_path: Some(&cp),
                limit_chunks: None,
                on_chunk: Some(&mut arm),
            },
            &mut agg,
            Some(&mut log),
        )
        .expect_err("armed trip must surface as the sweep error");
        assert!(
            err.to_string().contains(INJECTED_SINK_ERROR),
            "unexpected error: {err}"
        );
        drop(log);

        // The checkpoint still describes the last durable chunk — the
        // failed chunk never advanced it.
        let back = SweepCheckpoint::load(&cp).expect("checkpoint survives the fault");
        assert_eq!(back.next_index, 2, "failed chunk must not advance");
        let lines = back.jsonl_lines.expect("log line count recorded");

        // Resume with a healthy sink: truncate to the durable prefix,
        // restore, finish — byte-identical to the uninterrupted run.
        truncate_jsonl_to_lines(&jsonl_path, lines).expect("truncates to durable prefix");
        let mut agg = StreamAggregate::restore_for_spec(&spec, back.aggregate.clone())
            .map_err(io::Error::other)
            .expect("accumulator restores");
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&jsonl_path)
            .expect("reopens");
        let mut log = JsonlWriter::resume(BufWriter::new(SinkFile::new(file)), lines);
        let run = run_slice_checkpointed(
            SliceJob {
                spec: &spec,
                chunk: 2,
                todo: back.next_index..total,
                bounds: 0..total,
                shard: None,
                base_records: back.records,
                base_wall_s: 0.0,
                checkpoint_path: Some(&cp),
                limit_chunks: None,
                on_chunk: None,
            },
            &mut agg,
            Some(&mut log),
        )
        .expect("resumes");
        log.finish().expect("finishes");
        assert_eq!(run.records, total);
        assert!(!cp.exists(), "completed run consumes its checkpoint");
        assert_eq!(
            std::fs::read(&jsonl_path).expect("reads"),
            std::fs::read(&ref_jsonl).expect("reads"),
            "resumed record log must match the uninterrupted run byte-for-byte"
        );
        assert_eq!(
            agg.table(&spec).render(),
            ref_agg.table(&spec).render(),
            "resumed table must match the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_refuses_inconsistent_partials() {
        let spec = spec();
        let total = spec.grid_size() as u64;
        let partial = |index: u64, count: u64| {
            let r = shard_range(total, ShardRef { index, count });
            let mut agg = StreamAggregate::for_spec(&spec);
            crate::scenario::run_spec_streaming_range(&spec, 4, r.clone(), &mut [&mut agg])
                .expect("no I/O");
            ShardPartial {
                schema: PARTIAL_SCHEMA.to_string(),
                fingerprint: spec_fingerprint(&spec),
                shard: ShardRef { index, count },
                start: r.start,
                end: r.end,
                records: r.end - r.start,
                wall_s: 0.0,
                records_path: None,
                spec: spec.clone(),
                aggregate: agg.snapshot(),
            }
        };
        // A valid pair merges.
        assert!(merge_partials(vec![partial(1, 2), partial(0, 2)]).is_ok());
        // Missing shard.
        assert!(merge_partials(vec![partial(0, 2)]).is_err());
        // Duplicate shard.
        assert!(merge_partials(vec![partial(0, 2), partial(0, 2)]).is_err());
        // Mixed fingerprints.
        let mut foreign = partial(1, 2);
        foreign.fingerprint = "0000000000000000".to_string();
        assert!(merge_partials(vec![partial(0, 2), foreign]).is_err());
        assert!(merge_partials(Vec::new()).is_err(), "empty merge refused");
    }
}
