//! The statistics layer of the experiment harness.
//!
//! Two halves:
//!
//! * **Fits** ([`linear_fit`], [`loglog_exponent`]) — least-squares slopes
//!   used to report measured scaling exponents next to the theorems'
//!   claims, plus the naive two-pass [`mean`] / [`stddev`] kept as the
//!   *reference implementations* the streaming accumulators are
//!   property-tested against.
//! * **Streaming accumulators** ([`Welford`], [`P2Quantile`],
//!   [`StreamingSummary`]) — bounded-memory, single-pass summaries the
//!   aggregation engine folds run records into. Every accumulator has a
//!   `merge` so per-thread partials combine; merging partials **in
//!   trial-index order** reproduces the sequential single-pass fold
//!   **bit-for-bit** while the partials still hold their raw samples (the
//!   merge replays them), and within floating-point tolerance in any
//!   order afterwards. Every accumulator also serializes **losslessly**
//!   (floats as [`f64::to_bits`] patterns), which is what lets a sweep
//!   checkpoint its aggregation state and resume bit-identically.

/// Ordinary least-squares slope and intercept of `y = a·x + b`.
///
/// Returns `None` for fewer than two points or a degenerate `x` range.
///
/// # Examples
///
/// ```
/// use radio_bench::stats::linear_fit;
/// let (a, b) = linear_fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]).unwrap();
/// assert!((a - 2.0).abs() < 1e-9);
/// assert!((b - 1.0).abs() < 1e-9);
/// ```
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    Some((a, b))
}

/// The slope of `log y` against `log x` — the empirical scaling exponent
/// `p` in `y ≈ c·x^p`.
///
/// Returns `None` unless at least two points with positive coordinates are
/// provided.
///
/// # Examples
///
/// ```
/// use radio_bench::stats::loglog_exponent;
/// // y = 3·x² ⇒ exponent 2.
/// let pts: Vec<(f64, f64)> = (1..6).map(|x| (x as f64, 3.0 * (x * x) as f64)).collect();
/// assert!((loglog_exponent(&pts).unwrap() - 2.0).abs() < 1e-9);
/// ```
pub fn loglog_exponent(points: &[(f64, f64)]) -> Option<f64> {
    loglog_exponent_counting(points).0
}

/// Marker substring of the caption note appended when a log-log fit
/// dropped non-positive points — `radio-lab` scans rendered captions for
/// it to raise a stderr warning beside the table.
pub const DROPPED_POINTS_MARKER: &str = "dropped from log-log fit";

/// The caption note for `dropped` non-positive points excluded from a
/// log-log fit (contains [`DROPPED_POINTS_MARKER`]).
pub fn dropped_points_note(dropped: usize) -> String {
    format!(
        " [{dropped} non-positive point{} {DROPPED_POINTS_MARKER}]",
        if dropped == 1 { "" } else { "s" }
    )
}

/// [`loglog_exponent`] plus the number of points the positivity filter
/// dropped. Logarithms only exist for positive coordinates, so the fit
/// silently ran on a subset whenever a zero or negative point appeared —
/// callers should surface a non-zero count next to the exponent so a
/// subset fit never masquerades as a full one.
pub fn loglog_exponent_counting(points: &[(f64, f64)]) -> (Option<f64>, usize) {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    (linear_fit(&logs).map(|(a, _)| a), points.len() - logs.len())
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0)).sqrt()
}

/// Bit-lossless `f64` encoding for checkpoint persistence: the IEEE-754
/// bit pattern as a JSON integer. Decimal formatting cannot represent
/// every float exactly (and JSON cannot represent ±∞ at all — an empty
/// [`StreamingSummary`] holds infinite min/max), so snapshots that must
/// restore **bit-for-bit** go through [`f64::to_bits`] instead.
fn f64_to_value(x: f64) -> serde::value::Value {
    serde::value::Value::U64(x.to_bits())
}

/// Inverse of [`f64_to_value`].
fn f64_from_value(v: &serde::value::Value) -> Result<f64, serde::value::DeError> {
    v.as_u64()
        .map(f64::from_bits)
        .ok_or_else(|| serde::value::DeError::expected("f64 bit pattern (u64)", v))
}

/// Bit-lossless encoding of a float slice (see [`f64_to_value`]).
fn f64s_to_value(xs: &[f64]) -> serde::value::Value {
    serde::value::Value::Array(xs.iter().map(|&x| f64_to_value(x)).collect())
}

/// Inverse of [`f64s_to_value`].
fn f64s_from_value(v: &serde::value::Value) -> Result<Vec<f64>, serde::value::DeError> {
    v.as_array()
        .ok_or_else(|| serde::value::DeError::expected("array of f64 bit patterns", v))?
        .iter()
        .map(f64_from_value)
        .collect()
}

/// Welford's online mean/variance: one pass, O(1) state, no catastrophic
/// cancellation (the textbook two-pass algorithm is [`mean`]/[`stddev`],
/// kept as the property-test reference).
///
/// # Examples
///
/// ```
/// use radio_bench::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.stddev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance, n−1 denominator (`NaN` below two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation (`NaN` below two observations).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Combines another accumulator into this one (Chan et al.'s parallel
    /// update). Exact in exact arithmetic; in floating point the result
    /// agrees with the sequential fold to within rounding, independent of
    /// how the stream was split.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl serde::Serialize for Welford {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("count".to_string(), serde::value::Value::U64(self.count)),
            ("mean".to_string(), f64_to_value(self.mean)),
            ("m2".to_string(), f64_to_value(self.m2)),
        ])
    }
}

impl serde::Deserialize for Welford {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::value::DeError::expected("Welford object", v))?;
        Ok(Welford {
            count: serde::Deserialize::from_value(serde::value::field(fields, "count"))?,
            mean: f64_from_value(serde::value::field(fields, "mean"))?,
            m2: f64_from_value(serde::value::field(fields, "m2"))?,
        })
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac (CACM 1985): tracks one quantile of an unbounded stream with
/// five markers and O(1) state, no stored samples.
///
/// Exact for the first five observations; a heuristic estimate afterwards
/// (the classic convergence results apply). [`StreamingSummary`] keeps raw
/// samples up to a cap and only falls back to P² markers beyond it, which
/// is why its small-sample percentiles are exact.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// First five observations, sorted on the fly, until the markers boot.
    init: Vec<f64>,
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator of the `q`-quantile (`0 < q < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            init: Vec::with_capacity(5),
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            let at = self.init.partition_point(|&v| v < x);
            self.init.insert(at, x);
            if self.count == 5 {
                self.heights.copy_from_slice(&self.init);
            }
            return;
        }
        // Locate the cell and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // h[k] <= x < h[k+1]
            (1..5)
                .find(|&i| x < self.heights[i])
                .expect("x < heights[4] here")
                - 1
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height update.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    /// The linear fallback when the parabola leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate of the tracked quantile (`NaN` when empty;
    /// exact sorted-sample interpolation below five observations).
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count <= 5 {
            return interpolate_sorted(&self.init, self.q);
        }
        self.heights[2]
    }
}

impl serde::Serialize for P2Quantile {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("q".to_string(), f64_to_value(self.q)),
            ("init".to_string(), f64s_to_value(&self.init)),
            ("heights".to_string(), f64s_to_value(&self.heights)),
            ("positions".to_string(), f64s_to_value(&self.positions)),
            ("desired".to_string(), f64s_to_value(&self.desired)),
            ("increments".to_string(), f64s_to_value(&self.increments)),
            ("count".to_string(), serde::value::Value::U64(self.count)),
        ])
    }
}

impl serde::Deserialize for P2Quantile {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::value::DeError::expected("P2Quantile object", v))?;
        let five = |key: &str| -> Result<[f64; 5], serde::value::DeError> {
            f64s_from_value(serde::value::field(fields, key))?
                .try_into()
                .map_err(|_| serde::value::DeError::msg(format!("{key} must hold 5 markers")))
        };
        let init = f64s_from_value(serde::value::field(fields, "init"))?;
        if init.len() > 5 {
            return Err(serde::value::DeError::msg(
                "init buffer longer than 5 observations",
            ));
        }
        Ok(P2Quantile {
            q: f64_from_value(serde::value::field(fields, "q"))?,
            init,
            heights: five("heights")?,
            positions: five("positions")?,
            desired: five("desired")?,
            increments: five("increments")?,
            count: serde::Deserialize::from_value(serde::value::field(fields, "count"))?,
        })
    }
}

/// Exact quantile of an already-sorted slice by linear interpolation
/// (type R-7, `h = (n−1)·q` — numpy/Excel's default).
fn interpolate_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let h = (n - 1) as f64 * q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
        }
    }
}

/// Raw samples a [`StreamingSummary`] retains before collapsing its
/// percentile state to P² markers. Below the cap every reported percentile
/// is exact; the experiment grids this repo sweeps (a handful to a few
/// hundred trials per cell) never reach it.
pub const EXACT_QUANTILE_CAP: usize = 1024;

/// A single-pass summary of one metric within one aggregation group:
/// count, min/max, Welford mean/variance, and median/p90/p99.
///
/// Memory is bounded: raw samples are kept (in arrival order) up to
/// [`EXACT_QUANTILE_CAP`], beyond which the percentile state collapses to
/// three [`P2Quantile`] markers replayed from the buffered prefix —
/// mean/variance/min/max stay exact regardless.
///
/// # Merging
///
/// [`StreamingSummary::merge`] combines per-thread partials. While the
/// right-hand side still holds its raw samples (the common case — partials
/// are per grid cell, per chunk, or per shard), merging in trial-index
/// order **replays** those samples through [`StreamingSummary::push`], so
/// every statistic — moments and percentile state alike — is **bit-for-bit
/// identical** to the sequential fold; this is the invariant resumable and
/// sharded sweeps lean on. Out-of-order merges agree to within
/// floating-point rounding. Merging a partial that has itself collapsed
/// (more than [`EXACT_QUANTILE_CAP`] observations in one partial)
/// Chan-merges the moments and approximates the distribution by its five
/// marker heights (count-weighted) — the one lossy path; the sweep
/// harness never takes it at this repo's trial counts.
///
/// # Persistence
///
/// `Serialize`/`Deserialize` round-trip the accumulator **losslessly**:
/// every float is stored as its [`f64::to_bits`] pattern (decimal
/// formatting cannot represent all values, and JSON has no ±∞), so a
/// restored summary is indistinguishable from the original — the
/// foundation of sweep checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSummary {
    welford: Welford,
    min: f64,
    max: f64,
    /// Arrival-order samples; `None` once collapsed to markers.
    samples: Option<Vec<f64>>,
    /// Markers for (median, p90, p99); `Some` only after collapse.
    markers: Option<Box<[P2Quantile; 3]>>,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        StreamingSummary {
            welford: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Some(Vec::new()),
            markers: None,
        }
    }
}

impl StreamingSummary {
    /// An empty summary.
    pub fn new() -> Self {
        StreamingSummary::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if let Some(samples) = &mut self.samples {
            samples.push(x);
            if samples.len() > EXACT_QUANTILE_CAP {
                self.collapse();
            }
        } else {
            for m in self
                .markers
                .as_mut()
                .expect("collapsed ⇒ markers")
                .iter_mut()
            {
                m.observe(x);
            }
        }
    }

    /// Drops the raw-sample buffer, replaying it (in arrival order) into
    /// fresh P² markers — deterministic, so chunked merges equal the
    /// sequential feed bit-for-bit.
    fn collapse(&mut self) {
        let samples = self.samples.take().expect("collapse only from exact mode");
        let mut markers = Box::new([
            P2Quantile::new(0.50),
            P2Quantile::new(0.90),
            P2Quantile::new(0.99),
        ]);
        for &x in &samples {
            for m in markers.iter_mut() {
                m.observe(x);
            }
        }
        self.markers = Some(markers);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Sample variance (`NaN` below two observations).
    pub fn variance(&self) -> f64 {
        self.welford.variance()
    }

    /// Sample standard deviation (`NaN` below two observations).
    pub fn stddev(&self) -> f64 {
        self.welford.stddev()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean, `1.96·s/√n` (`NaN` below two observations).
    pub fn ci95_half(&self) -> f64 {
        1.96 * self.stddev() / (self.count() as f64).sqrt()
    }

    /// The `q`-quantile: exact (R-7 interpolation) while raw samples are
    /// retained; after collapse, the matching P² marker for `q` ∈
    /// {0.5, 0.9, 0.99} and `NaN` for any other request.
    pub fn quantile(&self, q: f64) -> f64 {
        if let Some(samples) = &self.samples {
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            return interpolate_sorted(&sorted, q);
        }
        self.markers
            .as_ref()
            .expect("collapsed ⇒ markers")
            .iter()
            .find(|m| m.q() == q)
            .map_or(f64::NAN, P2Quantile::estimate)
    }

    /// The median (exact below [`EXACT_QUANTILE_CAP`] samples).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Sum of all observations, reconstructed as `count·mean` — subject to
    /// the running mean's rounding, so an integer-valued stream's sum can
    /// land a few ulps off the true integer (callers wanting an integer
    /// count, e.g. a `valid/trials` cell, should `round()`).
    pub fn sum(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.welford.mean() * self.count() as f64
        }
    }

    /// Combines `other` into `self` (see the type docs for exactness).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count() == 0 {
            return;
        }
        match &other.samples {
            // The right-hand side still holds its raw samples (the common
            // case — partials are per grid cell, per chunk, or per shard):
            // replay them in arrival order. Every statistic — Welford
            // moments included — then takes *exactly* the sequential fold's
            // instruction stream, so ordered merges are bit-for-bit the
            // single-pass result, which is what makes sharded sweeps and
            // checkpoint/resume byte-identical to uninterrupted runs.
            Some(theirs) => {
                for &x in theirs {
                    self.push(x);
                }
            }
            None => {
                // Lossy path: the right-hand side's raw samples are gone,
                // so Chan-merge the moments and stand in its five marker
                // heights, count-weighted, for the percentile state. The
                // sweep harness never takes this path while per-group
                // partials stay below [`EXACT_QUANTILE_CAP`].
                self.welford.merge(&other.welford);
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
                let theirs = other.markers.as_ref().expect("collapsed ⇒ markers");
                if self.samples.is_some() {
                    self.collapse();
                }
                let markers = self.markers.as_mut().expect("collapsed above");
                let reps = (other.count() / 5).max(1);
                for (m, t) in markers.iter_mut().zip(theirs.iter()) {
                    for &h in &t.heights {
                        for _ in 0..reps {
                            m.observe(h);
                        }
                    }
                }
            }
        }
    }
}

impl serde::Serialize for StreamingSummary {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        serde::value::Value::Object(vec![
            ("welford".to_string(), self.welford.to_value()),
            ("min".to_string(), f64_to_value(self.min)),
            ("max".to_string(), f64_to_value(self.max)),
            (
                "samples".to_string(),
                match &self.samples {
                    Some(xs) => f64s_to_value(xs),
                    None => Value::Null,
                },
            ),
            (
                "markers".to_string(),
                match &self.markers {
                    Some(ms) => Value::Array(ms.iter().map(serde::Serialize::to_value).collect()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl serde::Deserialize for StreamingSummary {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::{field, DeError, Value};
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("StreamingSummary object", v))?;
        let samples = match field(fields, "samples") {
            Value::Null => None,
            other => Some(f64s_from_value(other)?),
        };
        let markers = match field(fields, "markers") {
            Value::Null => None,
            other => {
                let ms: Vec<P2Quantile> = serde::Deserialize::from_value(other)?;
                let ms: [P2Quantile; 3] = ms
                    .try_into()
                    .map_err(|_| DeError::msg("markers must hold 3 quantile estimators"))?;
                Some(Box::new(ms))
            }
        };
        if samples.is_some() == markers.is_some() {
            return Err(DeError::msg(
                "StreamingSummary must hold exactly one of samples or markers",
            ));
        }
        Ok(StreamingSummary {
            welford: serde::Deserialize::from_value(field(fields, "welford"))?,
            min: f64_from_value(field(fields, "min"))?,
            max: f64_from_value(field(fields, "max"))?,
            samples,
            markers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 4.0 * i as f64 - 2.0)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 4.0).abs() < 1e-9);
        assert!((b + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
        assert!(loglog_exponent(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
    }

    #[test]
    fn exponent_of_cubic_logs() {
        // y = (log x)^3 plotted against log x has exponent 3.
        let pts: Vec<(f64, f64)> = (2..8)
            .map(|k| {
                let l = (1u64 << k) as f64;
                (l.log2(), l.log2().powi(3))
            })
            .collect();
        assert!((loglog_exponent(&pts).unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935299395).abs() < 1e-9);
        assert!(mean(&[]).is_nan());
        assert!(stddev(&[1.0]).is_nan());
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.stddev() - stddev(&xs)).abs() < 1e-12);
        assert!(Welford::new().mean().is_nan());
        let mut one = Welford::new();
        one.push(3.0);
        assert!(one.variance().is_nan());
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 11.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        for split in [0usize, 1, 37, 99, 100] {
            let (a, b) = xs.split_at(split);
            let mut left = Welford::new();
            a.iter().for_each(|&x| left.push(x));
            let mut right = Welford::new();
            b.iter().for_each(|&x| right.push(x));
            left.merge(&right);
            assert_eq!(left.count(), whole.count());
            assert!((left.mean() - whole.mean()).abs() < 1e-9);
            assert!((left.variance() - whole.variance()).abs() < 1e-9);
        }
    }

    #[test]
    fn p2_jain_chlamtac_worked_example() {
        // The median-tracking example from Jain & Chlamtac (CACM 28(10),
        // 1985), Table I: after the 20 observations below the P² median
        // estimate is 4.44.
        let data = [
            0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92, 34.60, 10.28, 1.47,
            0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
        ];
        let mut p2 = P2Quantile::new(0.5);
        for &x in &data {
            p2.observe(x);
        }
        assert_eq!(p2.count(), 20);
        assert!((p2.estimate() - 4.44).abs() < 0.01, "got {}", p2.estimate());
    }

    #[test]
    fn p2_converges_on_uniform_stream() {
        // SplitMix64-style scramble: deterministic pseudo-uniform stream.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(0xd129_8a2e_03e1_5241).wrapping_add(1);
            let z = state ^ (state >> 31);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut med = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        for _ in 0..10_000 {
            let x = next();
            med.observe(x);
            p90.observe(x);
        }
        assert!(
            (med.estimate() - 0.5).abs() < 0.02,
            "got {}",
            med.estimate()
        );
        assert!(
            (p90.estimate() - 0.9).abs() < 0.02,
            "got {}",
            p90.estimate()
        );
    }

    #[test]
    fn summary_small_sample_is_exact() {
        let mut s = StreamingSummary::new();
        for x in [9.0, 1.0, 5.0, 3.0, 7.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.median() - 5.0).abs() < 1e-12);
        // R-7 on [1,3,5,7,9]: h = 4*0.9 = 3.6 → 7 + 0.6*(9-7) = 8.2.
        assert!((s.p90() - 8.2).abs() < 1e-12);
        assert!((s.sum() - 25.0).abs() < 1e-12);
        let empty = StreamingSummary::new();
        assert!(empty.mean().is_nan());
        assert!(empty.min().is_nan());
        assert!(empty.median().is_nan());
    }

    #[test]
    fn summary_collapse_is_deterministic_across_chunked_merges() {
        let n = EXACT_QUANTILE_CAP + 500;
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i * 2_654_435_761) % 10_007) as f64)
            .collect();
        let mut sequential = StreamingSummary::new();
        xs.iter().for_each(|&x| sequential.push(x));
        // Merge ordered chunks whose right-hand sides kept their samples:
        // the percentile state must replay identically.
        let mut chunked = StreamingSummary::new();
        for chunk in xs.chunks(333) {
            let mut part = StreamingSummary::new();
            chunk.iter().for_each(|&x| part.push(x));
            chunked.merge(&part);
        }
        assert_eq!(chunked.count(), sequential.count());
        assert_eq!(chunked.median().to_bits(), sequential.median().to_bits());
        assert_eq!(chunked.p90().to_bits(), sequential.p90().to_bits());
        assert_eq!(chunked.p99().to_bits(), sequential.p99().to_bits());
        assert!((chunked.mean() - sequential.mean()).abs() < 1e-9);
        // Collapsed percentiles stay close to the exact values.
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let exact_med = sorted[sorted.len() / 2];
        assert!((sequential.median() - exact_med).abs() / exact_med.abs() < 0.05);
        // Untracked quantiles are unavailable after collapse.
        assert!(sequential.quantile(0.25).is_nan());
    }

    #[test]
    fn loglog_counting_reports_dropped_points() {
        let pts: Vec<(f64, f64)> = (1..6).map(|x| (x as f64, 3.0 * (x * x) as f64)).collect();
        let (p, dropped) = loglog_exponent_counting(&pts);
        assert!((p.unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(dropped, 0);
        // Two poisoned points: same exponent, dropped count surfaced.
        let mut with_bad = pts.clone();
        with_bad.push((6.0, 0.0));
        with_bad.push((-1.0, 4.0));
        let (p_bad, dropped) = loglog_exponent_counting(&with_bad);
        assert_eq!(p_bad.unwrap().to_bits(), p.unwrap().to_bits());
        assert_eq!(dropped, 2);
        // All points dropped: no fit, full count.
        assert_eq!(
            loglog_exponent_counting(&[(0.0, 1.0), (-1.0, 2.0)]),
            (None, 2)
        );
    }

    /// Serde round-trip helper: through JSON text and back.
    fn roundtrip<T: serde::Serialize + serde::Deserialize>(x: &T) -> T {
        let json = serde_json::to_string(x).expect("serializes");
        serde_json::from_str(&json).expect("parses")
    }

    #[test]
    fn welford_serde_roundtrips_bit_for_bit() {
        let mut w = Welford::new();
        for x in [0.1, 1.0 / 3.0, -7.25e-300, 1e18] {
            w.push(x);
        }
        let back = roundtrip(&w);
        assert_eq!(back.count(), w.count());
        assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        assert_eq!(back.variance().to_bits(), w.variance().to_bits());
        assert_eq!(roundtrip(&Welford::new()), Welford::new());
    }

    #[test]
    fn p2_serde_roundtrips_bit_for_bit() {
        let mut p2 = P2Quantile::new(0.9);
        for i in 0..50 {
            p2.observe((i as f64 * 0.777).sin() * 1e3);
        }
        let back = roundtrip(&p2);
        assert_eq!(back, p2);
        assert_eq!(back.estimate().to_bits(), p2.estimate().to_bits());
        // Mid-init (under five observations) round-trips too.
        let mut young = P2Quantile::new(0.5);
        young.observe(3.0);
        young.observe(-1.0);
        assert_eq!(roundtrip(&young), young);
    }

    #[test]
    fn summary_serde_roundtrips_bit_for_bit_in_both_modes() {
        // Exact mode, including the empty summary's infinite min/max
        // (which plain JSON floats cannot carry at all).
        let empty = StreamingSummary::new();
        assert_eq!(roundtrip(&empty), empty);
        let mut s = StreamingSummary::new();
        for x in [9.5, 1.0 / 3.0, -2.75, 1e-200] {
            s.push(x);
        }
        let back = roundtrip(&s);
        assert_eq!(back, s);
        assert_eq!(back.median().to_bits(), s.median().to_bits());
        // Collapsed mode: markers round-trip and keep estimating
        // identically as more observations arrive.
        let mut big = StreamingSummary::new();
        for i in 0..(EXACT_QUANTILE_CAP + 100) {
            big.push(((i * 2_654_435_761) % 10_007) as f64);
        }
        let mut back = roundtrip(&big);
        assert_eq!(back, big);
        back.push(17.0);
        big.push(17.0);
        assert_eq!(back, big, "restored summary diverged on the next push");
    }

    #[test]
    fn summary_rejects_malformed_snapshots() {
        // Both samples and markers absent (or both present) is no valid
        // accumulator state.
        let bad = r#"{"welford":{"count":0,"mean":0,"m2":0},"min":0,"max":0,"samples":null,"markers":null}"#;
        assert!(serde_json::from_str::<StreamingSummary>(bad).is_err());
    }

    #[test]
    fn ordered_merge_is_bit_identical_to_sequential_fold() {
        // The replay merge makes *every* statistic of an ordered chunked
        // fold — not just the percentile state — bitwise equal to the
        // single-pass fold, including across the collapse cap.
        let n = EXACT_QUANTILE_CAP + 300;
        let xs: Vec<f64> = (0..n)
            .map(|i| (((i * 48_271) % 65_537) as f64).mul_add(0.125, -4096.0))
            .collect();
        let mut sequential = StreamingSummary::new();
        xs.iter().for_each(|&x| sequential.push(x));
        for chunk in [1usize, 7, 97, 1000] {
            let mut merged = StreamingSummary::new();
            for part in xs.chunks(chunk) {
                let mut p = StreamingSummary::new();
                part.iter().for_each(|&x| p.push(x));
                merged.merge(&p);
            }
            assert_eq!(merged, sequential, "chunk = {chunk}");
            assert_eq!(merged.mean().to_bits(), sequential.mean().to_bits());
            assert_eq!(merged.variance().to_bits(), sequential.variance().to_bits());
            assert_eq!(merged.p99().to_bits(), sequential.p99().to_bits());
        }
    }

    #[test]
    fn summary_ci_half_width() {
        let mut s = StreamingSummary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        let expect = 1.96 * 2.138089935299395 / 8f64.sqrt();
        assert!((s.ci95_half() - expect).abs() < 1e-9);
    }
}
