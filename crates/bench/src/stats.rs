//! Small statistics helpers for the experiment tables: least-squares fits
//! used to report measured scaling exponents next to the theorems' claims.

/// Ordinary least-squares slope and intercept of `y = a·x + b`.
///
/// Returns `None` for fewer than two points or a degenerate `x` range.
///
/// # Examples
///
/// ```
/// use radio_bench::stats::linear_fit;
/// let (a, b) = linear_fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]).unwrap();
/// assert!((a - 2.0).abs() < 1e-9);
/// assert!((b - 1.0).abs() < 1e-9);
/// ```
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    Some((a, b))
}

/// The slope of `log y` against `log x` — the empirical scaling exponent
/// `p` in `y ≈ c·x^p`.
///
/// Returns `None` unless at least two points with positive coordinates are
/// provided.
///
/// # Examples
///
/// ```
/// use radio_bench::stats::loglog_exponent;
/// // y = 3·x² ⇒ exponent 2.
/// let pts: Vec<(f64, f64)> = (1..6).map(|x| (x as f64, 3.0 * (x * x) as f64)).collect();
/// assert!((loglog_exponent(&pts).unwrap() - 2.0).abs() < 1e-9);
/// ```
pub fn loglog_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    linear_fit(&logs).map(|(a, _)| a)
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 4.0 * i as f64 - 2.0)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 4.0).abs() < 1e-9);
        assert!((b + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
        assert!(loglog_exponent(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
    }

    #[test]
    fn exponent_of_cubic_logs() {
        // y = (log x)^3 plotted against log x has exponent 3.
        let pts: Vec<(f64, f64)> = (2..8)
            .map(|k| {
                let l = (1u64 << k) as f64;
                (l.log2(), l.log2().powi(3))
            })
            .collect();
        assert!((loglog_exponent(&pts).unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935299395).abs() < 1e-9);
        assert!(mean(&[]).is_nan());
        assert!(stddev(&[1.0]).is_nan());
    }
}
