//! Record sinks: where a streaming sweep's records go.
//!
//! [`crate::scenario::run_spec_streaming`] executes a scenario grid in
//! index-ordered chunks and hands every unit's records — in unit order —
//! to a set of [`RecordSink`]s, retaining nothing afterwards. Peak memory
//! is therefore O(chunk + sink state), not O(grid): the hard wall between
//! the all-records-in-memory harness and the node counts where the
//! congested-clique asymptotics this repo benchmarks against actually
//! show.
//!
//! Three implementations cover the triangle:
//!
//! * [`Materialize`] — collects everything, exactly like
//!   [`crate::scenario::run_spec`]. The **differential reference**: any
//!   streaming path can be checked against it record-for-record.
//! * [`StreamAggregate`] — folds records straight into the
//!   [`crate::aggregate::AggregateState`] group-by accumulators
//!   ([`crate::stats::StreamingSummary`] per metric, bounded memory).
//!   Because sinks see the serial record order whatever the chunk size,
//!   the rendered table is **byte-identical** to materializing the run
//!   and rendering [`crate::scenario::RenderKind::Aggregate`] — the
//!   golden streaming test pins this at several chunk sizes.
//! * [`JsonlWriter`] — streams each [`RunRecord`] as one JSON line to any
//!   [`Write`] target, so the full record stream still lands on disk
//!   (`radio-lab --records PATH.jsonl`) without ever living in RAM.
//!   Lines parse back via [`RunRecord::from_jsonl`], losslessly.
//!
//! Sinks compose: `radio-lab --stream` runs a [`StreamAggregate`] and,
//! when requested, a [`JsonlWriter`] side by side over one execution.

use crate::aggregate::{AggregateSnapshot, AggregateSpec, AggregateState};
use crate::scenario::{ScenarioRun, ScenarioSpec, TrialUnit};
use crate::table::Table;
use radio_structures::runner::RunRecord;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A consumer of the streaming record flow. `accept` is called once per
/// executed unit, **in unit (= planner) order**, with all of the unit's
/// records; implementations must not assume anything survives the call —
/// the runner drops the chunk as soon as every sink has seen it.
pub trait RecordSink {
    /// Consumes one unit's records.
    ///
    /// # Errors
    ///
    /// I/O-backed sinks surface their write errors; the runner stops the
    /// sweep on the first failure.
    fn accept(
        &mut self,
        spec: &ScenarioSpec,
        unit: &TrialUnit,
        records: &[RunRecord],
    ) -> std::io::Result<()>;

    /// Called once after every completed chunk, before the runner reports
    /// the chunk durable (and before any checkpoint referencing it is
    /// written). I/O-backed sinks flush here so that everything a
    /// checkpoint points at has actually reached the OS — a crash between
    /// chunks then never leaves a checkpoint pointing past durable data.
    /// In-memory sinks keep the default no-op.
    ///
    /// # Errors
    ///
    /// Surfaces the flush error; the runner stops the sweep.
    fn flush_chunk(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The collect-everything sink: reproduces [`crate::scenario::run_spec`]'s
/// in-memory result. Memory is O(grid) — this is the *reference*
/// implementation the bounded sinks are verified against, and the
/// compatibility path for renderers that need every record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Materialize {
    units: Vec<TrialUnit>,
    records: Vec<Vec<RunRecord>>,
}

impl Materialize {
    /// An empty sink.
    pub fn new() -> Self {
        Materialize::default()
    }

    /// The collected run, shaped exactly like [`crate::scenario::run_spec`]
    /// would have returned it (the caller supplies the wall-clock).
    pub fn into_run(self, wall_s: f64) -> ScenarioRun {
        ScenarioRun {
            units: self.units,
            records: self.records,
            wall_s,
        }
    }
}

impl RecordSink for Materialize {
    fn accept(
        &mut self,
        _spec: &ScenarioSpec,
        unit: &TrialUnit,
        records: &[RunRecord],
    ) -> std::io::Result<()> {
        self.units.push(*unit);
        self.records.push(records.to_vec());
        Ok(())
    }
}

/// The bounded-memory aggregation sink: every record folds directly into
/// the [`AggregateState`] group-by accumulators, so a grid of millions of
/// units aggregates in O(groups) memory. The finished table is
/// byte-identical to rendering the materialized run through
/// [`crate::aggregate::render_aggregate`] — both paths are the same fold
/// in the same order.
pub struct StreamAggregate {
    state: AggregateState,
}

impl StreamAggregate {
    /// A sink folding into `agg`.
    pub fn new(agg: AggregateSpec) -> Self {
        StreamAggregate {
            state: AggregateState::new(agg),
        }
    }

    /// The sink a spec's own rendering implies: the spec's `aggregate`
    /// block when present, the default grouping otherwise — the same
    /// resolution [`crate::scenario::RenderKind::Aggregate`] uses, so
    /// `--stream` tables match non-streaming ones for aggregate-rendered
    /// specs.
    pub fn for_spec(spec: &ScenarioSpec) -> Self {
        StreamAggregate::new(spec.aggregate.clone().unwrap_or_default())
    }

    /// A lossless serializable image of the fold so far — what a sweep
    /// checkpoint or shard partial persists (floats as bit patterns; see
    /// [`crate::aggregate::AggregateSnapshot`]).
    pub fn snapshot(&self) -> AggregateSnapshot {
        self.state.snapshot()
    }

    /// Rebuilds the sink [`StreamAggregate::for_spec`] would create,
    /// preloaded with a snapshot's state: feeding the remaining units
    /// produces exactly the table the uninterrupted sweep would have.
    ///
    /// # Errors
    ///
    /// Rejects snapshots taken under a different aggregation shape.
    pub fn restore_for_spec(spec: &ScenarioSpec, snap: AggregateSnapshot) -> Result<Self, String> {
        Ok(StreamAggregate {
            state: AggregateState::restore(spec.aggregate.clone().unwrap_or_default(), snap)?,
        })
    }

    /// Folds a later shard's snapshot into this sink (shard-order merges
    /// reproduce the single-process fold; see
    /// [`crate::aggregate::AggregateState::merge`]).
    ///
    /// # Errors
    ///
    /// Rejects snapshots taken under a different aggregation shape.
    pub fn merge_snapshot(&mut self, snap: &AggregateSnapshot) -> Result<(), String> {
        self.state.merge(snap)
    }

    /// Renders the fold's current state (call after the sweep finishes).
    pub fn table(&self, spec: &ScenarioSpec) -> Table {
        self.state.table(spec)
    }
}

impl RecordSink for StreamAggregate {
    fn accept(
        &mut self,
        spec: &ScenarioSpec,
        unit: &TrialUnit,
        records: &[RunRecord],
    ) -> std::io::Result<()> {
        for rec in records {
            self.state.push(spec, unit, rec);
        }
        Ok(())
    }
}

/// A shared switch that makes a [`SinkFile`] start failing: the
/// deterministic sink-I/O fault used by the chaos harness and the
/// sink-error-propagation tests. Arm it (typically at a chunk boundary)
/// and every subsequent write through the tripped file errors with
/// [`io::ErrorKind::Other`] — a reproducible stand-in for a full disk or
/// yanked volume.
#[derive(Debug, Clone, Default)]
pub struct FaultTrip(Arc<AtomicBool>);

impl FaultTrip {
    /// A disarmed trip.
    pub fn new() -> Self {
        FaultTrip::default()
    }

    /// Arms the trip: the next write through any [`SinkFile`] carrying it
    /// fails.
    pub fn arm(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the trip is armed.
    pub fn armed(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The message every injected [`FaultTrip`] write error carries — tests
/// and the chaos harness match on it to tell an injected fault from a
/// genuine filesystem error.
pub const INJECTED_SINK_ERROR: &str = "injected sink I/O fault";

/// The file handle the durable record-log pipeline writes through: a
/// plain [`File`] plus an optional [`FaultTrip`] for deterministic
/// injected write failures, and a [`SinkFile::sync_data`] passthrough so
/// the checkpoint driver can fsync the log before a checkpoint refers to
/// its lines. Production paths carry no trip and behave exactly like the
/// bare file.
#[derive(Debug)]
pub struct SinkFile {
    file: File,
    trip: Option<FaultTrip>,
}

impl SinkFile {
    /// A plain, fault-free file handle.
    pub fn new(file: File) -> Self {
        SinkFile { file, trip: None }
    }

    /// A handle that fails every write once `trip` is armed.
    pub fn with_trip(file: File, trip: FaultTrip) -> Self {
        SinkFile {
            file,
            trip: Some(trip),
        }
    }

    /// Fsyncs the file's data to stable storage (directory entries are the
    /// caller's concern — see [`crate::checkpoint::sync_parent_dir`]).
    ///
    /// # Errors
    ///
    /// Surfaces the `fsync` error (or the injected fault, when armed).
    pub fn sync_data(&self) -> io::Result<()> {
        if let Some(trip) = &self.trip {
            if trip.armed() {
                return Err(io::Error::other(INJECTED_SINK_ERROR));
            }
        }
        self.file.sync_data()
    }
}

impl Write for SinkFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(trip) = &self.trip {
            if trip.armed() {
                return Err(io::Error::other(INJECTED_SINK_ERROR));
            }
        }
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(trip) = &self.trip {
            if trip.armed() {
                return Err(io::Error::other(INJECTED_SINK_ERROR));
            }
        }
        self.file.flush()
    }
}

/// The record-log sink: one [`RunRecord`] per line of JSONL, in unit
/// order, written as the sweep progresses — the full record stream on
/// disk with O(1) sink memory. Wrap the target in a
/// [`std::io::BufWriter`] for file targets; call [`JsonlWriter::finish`]
/// to flush when the sweep completes.
pub struct JsonlWriter<W: Write> {
    out: W,
    lines: u64,
}

impl<W: Write> JsonlWriter<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlWriter { out, lines: 0 }
    }

    /// A sink continuing an interrupted log: `out` should be the existing
    /// file opened for append (after the caller truncated it back to
    /// `lines` durable lines — see
    /// [`crate::checkpoint::truncate_jsonl_to_lines`]), so the line count
    /// picks up where the checkpoint left off.
    pub fn resume(out: W, lines: u64) -> Self {
        JsonlWriter { out, lines }
    }

    /// Records written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the flush error, if any.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl JsonlWriter<BufWriter<SinkFile>> {
    /// Flushes the buffer and fsyncs the log file — the durability step a
    /// checkpoint needs before it may record this log's line count: after
    /// this returns, every counted line survives power loss, not just
    /// process death.
    ///
    /// # Errors
    ///
    /// Surfaces the flush or `fsync` error.
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

impl<W: Write> RecordSink for JsonlWriter<W> {
    fn accept(
        &mut self,
        _spec: &ScenarioSpec,
        _unit: &TrialUnit,
        records: &[RunRecord],
    ) -> std::io::Result<()> {
        for rec in records {
            self.out.write_all(rec.to_jsonl().as_bytes())?;
            self.out.write_all(b"\n")?;
            self.lines += 1;
        }
        Ok(())
    }

    /// Flushes at every chunk boundary so checkpoint files never reference
    /// records still sitting in a `BufWriter` — the crash window for a
    /// torn final line shrinks to mid-chunk, which the resume scan
    /// truncates away.
    fn flush_chunk(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        run_spec, run_spec_streaming, NestOrder, RenderKind, ScenarioSpec, SeedPolicy,
        StopCondition, TopologyEntry, WorkloadEntry,
    };
    use radio_sim::spec::{AdversaryKind, TopologyKind};
    use radio_structures::runner::AlgoKind;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            id: "SINK".to_string(),
            caption: "sink unit test".to_string(),
            render: RenderKind::Aggregate,
            topologies: vec![
                TopologyEntry::new(TopologyKind::Clique { n: 5 }),
                TopologyEntry::new(TopologyKind::Path { n: 6 }),
            ],
            adversaries: vec![AdversaryKind::ReliableOnly],
            workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
            trials: 3,
            nest: NestOrder::TopologyMajor,
            seeds: SeedPolicy {
                net_base: 11,
                run_base: 3,
            },
            stop: StopCondition::Default,
            aggregate: None,
        }
    }

    #[test]
    fn materialize_sink_equals_run_spec() {
        let spec = spec();
        let reference = run_spec(&spec);
        for chunk in [1u64, 2, 5, 100] {
            let mut sink = Materialize::new();
            let stats = run_spec_streaming(&spec, chunk, &mut [&mut sink]).expect("no I/O");
            assert_eq!(stats.units, spec.grid_size() as u64);
            let run = sink.into_run(reference.wall_s);
            assert_eq!(run, reference, "chunk = {chunk}");
        }
    }

    #[test]
    fn jsonl_lines_roundtrip_and_count_records() {
        let spec = spec();
        let reference: Vec<RunRecord> = run_spec(&spec).records.into_iter().flatten().collect();
        let mut sink = JsonlWriter::new(Vec::new());
        let stats = run_spec_streaming(&spec, 2, &mut [&mut sink]).expect("no I/O");
        assert_eq!(stats.records, reference.len() as u64);
        assert_eq!(sink.lines(), reference.len() as u64);
        let bytes = sink.finish().expect("flushing a Vec cannot fail");
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let parsed: Vec<RunRecord> = text
            .lines()
            .map(|l| RunRecord::from_jsonl(l).expect("line parses"))
            .collect();
        assert_eq!(parsed, reference);
    }

    #[test]
    fn tee_runs_both_sinks_over_one_execution() {
        let spec = spec();
        let mut agg = StreamAggregate::for_spec(&spec);
        let mut log = JsonlWriter::new(Vec::new());
        run_spec_streaming(&spec, 4, &mut [&mut agg, &mut log]).expect("no I/O");
        let table = agg.table(&spec);
        assert_eq!(table.rows.len(), 2, "one row per grid cell");
        assert_eq!(log.lines(), spec.grid_size() as u64);
    }
}
