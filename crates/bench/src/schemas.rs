//! The single home of every on-disk schema identifier the workspace
//! emits or validates.
//!
//! Readers (resume, merge, serve status, the Python-side tooling) key on
//! these exact strings, so changing one is a format break: bump the
//! trailing version instead, and keep the old constant around for as
//! long as the old files must still be readable. The `schema-literal`
//! lint rule enforces that no other non-test module spells these ids
//! inline — everything goes through this module (the defining sites
//! below carry the only literals).

/// Schema id of the `radio-lab` results document (`RunDoc`).
pub const RESULTS_SCHEMA: &str = "radio-lab/v2";

/// Schema id of the `radio-lab serve` final report.
pub const SERVE_REPORT_SCHEMA: &str = "radio-lab/serve/v1";

/// Schema id of [`crate::checkpoint::SweepCheckpoint`] files.
pub const CHECKPOINT_SCHEMA: &str = "radio-lab/checkpoint/v1";

/// Schema id of [`crate::checkpoint::ShardPartial`] files.
pub const PARTIAL_SCHEMA: &str = "radio-lab/partial/v1";

/// Schema id of [`crate::serve::spool::SpoolManifest`] files.
pub const MANIFEST_SCHEMA: &str = "radio-lab/spool-manifest/v1";

/// Schema id of [`crate::serve::spool::Claim`] files.
pub const CLAIM_SCHEMA: &str = "radio-lab/claim/v1";

/// Schema id of [`crate::serve::spool::SpecStatus`] documents.
pub const STATUS_SCHEMA: &str = "radio-lab/spool-status/v1";

/// Schema id of fault-plan files (see [`crate::serve::fault`]).
pub const FAULT_PLAN_SCHEMA: &str = "radio-lab/fault-plan/v1";

/// Schema id of the engine-tier benchmark report (`BENCH_engine.json`).
pub const BENCH_ENGINE_SCHEMA: &str = "bench-engine/v3";
