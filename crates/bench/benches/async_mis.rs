//! E7 bench: asynchronous-start MIS (Section 9) with staggered wake-ups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::EngineBuilder;
use radio_structures::{AsyncFilter, AsyncMis, AsyncMisParams};
use rand::SeedableRng;
use std::time::Duration;

fn bench_async_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_async_mis");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for n in [32usize, 64] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut cfg = RandomGeometricConfig::dense(n);
        cfg.gray_prob = 0.0; // classic model for the no-topology variant
        let net = random_geometric(&cfg, &mut rng).expect("configuration connects");
        let params = AsyncMisParams::default();
        let epoch = params.epoch_len(n);
        let wakes: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 4) * (epoch / 2)).collect();
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut engine = EngineBuilder::new(net.clone())
                    .seed(seed)
                    .wake_rounds(wakes.clone())
                    .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
                    .expect("valid engine");
                engine.run(200 * epoch);
                engine.round()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_async_mis);
criterion_main!(benches);
