//! E5 bench: the lower-bound machinery — hitting games and the two-clique
//! reduction network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hitting_games::{mean_hitting_time, run_two_clique, UniformNoReplacement};
use std::time::Duration;

fn bench_single_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5a_single_hitting_game");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    for beta in [64u32, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("beta", beta), &beta, |b, &beta| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                mean_hitting_time(beta, 50, seed, |s| {
                    Box::new(UniformNoReplacement::new(beta, s))
                })
            });
        });
    }
    group.finish();
}

fn bench_two_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5b_two_clique");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for beta in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("beta", beta), &beta, |b, &beta| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_two_clique(beta, 0, 1, seed).solve_round
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_game, bench_two_clique);
criterion_main!(benches);
