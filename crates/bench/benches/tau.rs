//! E4 bench: τ-complete CCDS (Section 6) across τ and density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{IdAssignment, LinkDetectorAssignment, SpuriousSource};
use radio_structures::runner::{run_tau_ccds, AdversaryKind};
use radio_structures::TauConfig;
use rand::SeedableRng;
use std::time::Duration;

fn bench_tau_ccds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_tau_ccds");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let n = 24usize;
    for tau in [1usize, 2] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = random_geometric(&RandomGeometricConfig::dense(n), &mut rng)
            .expect("dense configuration connects");
        let ids = IdAssignment::identity(n);
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            tau,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        let cfg = TauConfig::new(n, net.max_degree_g() + tau, tau);
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |bench, _| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.5 }, seed).winners
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tau_ccds);
criterion_main!(benches);
