//! E3 bench: CCDS (Section 5) executions across the `Δ`/`b` trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_structures::runner::{run_ccds, AdversaryKind};
use radio_structures::CcdsConfig;
use rand::SeedableRng;
use std::time::Duration;

fn bench_ccds_message_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ccds_b_sweep");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let n = 48usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let net = random_geometric(&RandomGeometricConfig::dense(n), &mut rng)
        .expect("dense configuration connects");
    for b in [64u64, 256, 1024] {
        let cfg = CcdsConfig::new(n, net.max_degree_g(), b);
        group.bench_with_input(BenchmarkId::new("b", b), &b, |bench, _| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, seed)
                    .expect("b above minimum");
                assert_eq!(run.metrics.oversize_messages, 0);
                run.solve_round
            });
        });
    }
    group.finish();
}

fn bench_ccds_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ccds_delta_sweep");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let n = 48usize;
    for deg in [8.0f64, 16.0] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = random_geometric(
            &RandomGeometricConfig::with_expected_degree(n, deg),
            &mut rng,
        )
        .expect("configuration connects");
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 64);
        group.bench_with_input(
            BenchmarkId::new("target_degree", deg as u64),
            &deg,
            |bench, _| {
                let mut seed = 0u64;
                bench.iter(|| {
                    seed += 1;
                    run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, seed)
                        .expect("b above minimum")
                        .solve_round
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ccds_message_bound, bench_ccds_density);
criterion_main!(benches);
