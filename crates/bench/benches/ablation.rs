//! E8 bench: banned-list CCDS vs the naive explore-every-neighbor baseline
//! at matched density.

use criterion::{criterion_group, criterion_main, Criterion};
use radio_baselines::NaiveCcdsConfig;
use radio_sim::topology::{grid, GridConfig};
use radio_sim::EngineBuilder;
use radio_structures::runner::{run_ccds, AdversaryKind};
use radio_structures::CcdsConfig;
use rand::SeedableRng;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ablation");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let net = grid(&GridConfig::new(5, 5, 0.6), &mut rng).expect("valid grid");
    let n = net.n();
    let delta = net.max_degree_g();

    let cfg = CcdsConfig::new(n, delta, 1024);
    group.bench_function("banned_list", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, seed)
                .expect("b above minimum")
                .max_explorations
        });
    });

    let naive = NaiveCcdsConfig::new(n, delta);
    group.bench_function("naive_explore_all", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut engine = EngineBuilder::new(net.clone())
                .seed(seed)
                .spawn(|info| naive.spawn(info.id))
                .expect("valid engine");
            engine.run(naive.total_rounds() + 1);
            engine.round()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
