//! E9 bench: adversary impact on MIS, and detector-less broadcast
//! baselines (Decay vs round robin) in the dual graph.

use criterion::{criterion_group, criterion_main, Criterion};
use radio_baselines::{DecayBroadcast, RoundRobinBroadcast};
use radio_sim::adversary::Collider;
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{DualGraph, EngineBuilder, Graph};
use radio_structures::params::MisParams;
use radio_structures::runner::{run_mis, AdversaryKind};
use rand::SeedableRng;
use std::time::Duration;

fn bench_mis_under_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9a_mis_adversaries");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng)
        .expect("dense configuration connects");
    for (name, kind) in [
        ("reliable_only", AdversaryKind::ReliableOnly),
        ("all_unreliable", AdversaryKind::AllUnreliable),
        ("collider", AdversaryKind::Collider),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_mis(&net, MisParams::default(), kind, seed).solve_round
            });
        });
    }
    group.finish();
}

fn broadcast_net(len: usize) -> DualGraph {
    let g = Graph::from_edges(len, (0..len - 1).map(|i| (i, i + 1))).expect("path");
    let mut gp = g.clone();
    for i in 0..len - 2 {
        gp.add_edge(i, i + 2);
    }
    DualGraph::new(g, gp).expect("valid dual graph")
}

fn bench_broadcast_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9b_broadcast");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let net = broadcast_net(16);
    group.bench_function("decay_under_collider", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut e = EngineBuilder::new(net.clone())
                .seed(seed)
                .adversary(Collider)
                .spawn(|info| DecayBroadcast::new(info.n, info.node.index() == 0))
                .expect("valid engine");
            e.run(50_000).rounds
        });
    });
    group.bench_function("round_robin_under_collider", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut e = EngineBuilder::new(net.clone())
                .seed(seed)
                .adversary(Collider)
                .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
                .expect("valid engine");
            e.run(50_000).rounds
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mis_under_adversaries,
    bench_broadcast_baselines
);
criterion_main!(benches);
