//! Engine micro-benchmark: `Engine::step()` on the canonical topologies
//! (clique / random-geometric / sparse-with-chords), plus the seed
//! implementation (`step_legacy`) for a same-binary baseline. The
//! machine-readable counterpart is the `bench_engine` binary, which writes
//! `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::enginebench::{workload_engine, WORKLOADS};
use std::time::Duration;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(20);
    for name in WORKLOADS {
        let mut engine = workload_engine(name);
        engine.run_rounds(64); // amortize scratch capacity growth
        group.bench_with_input(BenchmarkId::new("scratch", name), &name, |b, _| {
            b.iter(|| {
                engine.step();
                engine.round()
            });
        });
        let mut engine = workload_engine(name);
        engine.run_rounds(64);
        group.bench_with_input(BenchmarkId::new("legacy", name), &name, |b, _| {
            b.iter(|| {
                engine.step_legacy();
                engine.round()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
