//! Engine micro-benchmark: `Engine::step()` on the canonical topologies
//! (clique / random-geometric / sparse-with-chords), plus the seed
//! implementation (`step_legacy`) for a same-binary baseline, the
//! word-packed `step_bitset` tier (dense rows are where it shines; the
//! sparse workloads document its break-even), and the multi-trial
//! `BatchedEngine` (reported per trial-round: one `step()` advances
//! `BATCHED_TRIALS` trials). The machine-readable counterpart is the
//! `bench_engine` binary, which writes `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::enginebench::{
    workload_batched_engine, workload_engine_mode, BATCHED_TRIALS, WORKLOADS,
};
use radio_sim::StepMode;
use std::time::Duration;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(20);
    for name in WORKLOADS {
        let mut engine = workload_engine_mode(name, StepMode::Scalar);
        engine.run_rounds(64); // amortize scratch capacity growth
        group.bench_with_input(BenchmarkId::new("scratch", name), &name, |b, _| {
            b.iter(|| {
                engine.step();
                engine.round()
            });
        });
        let mut engine = workload_engine_mode(name, StepMode::Scalar);
        engine.run_rounds(64);
        group.bench_with_input(BenchmarkId::new("legacy", name), &name, |b, _| {
            b.iter(|| {
                engine.step_legacy();
                engine.round()
            });
        });
        // Bitset mode builds the bitmask rows at spawn, so the measured
        // loop sees only the steady-state word-wise delivery.
        let mut engine = workload_engine_mode(name, StepMode::Bitset);
        engine.run_rounds(64);
        group.bench_with_input(BenchmarkId::new("bitset", name), &name, |b, _| {
            b.iter(|| {
                engine.step_bitset();
                engine.round()
            });
        });
        // One batched step advances BATCHED_TRIALS trials, so compare its
        // time against `bitset` × BATCHED_TRIALS: below that product, the
        // shared row pass is amortizing.
        let mut batched = workload_batched_engine(name);
        batched.run_rounds_each(64);
        group.bench_with_input(
            BenchmarkId::new(format!("batched-x{BATCHED_TRIALS}"), name),
            &name,
            |b, _| {
                b.iter(|| {
                    batched.step();
                    batched.engines()[0].round()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
