//! E1 bench: MIS (Section 4) executions across network sizes and
//! adversaries. Criterion measures wall-clock per full solve; the rounds
//! tables come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_structures::params::MisParams;
use radio_structures::runner::{run_mis, AdversaryKind};
use rand::SeedableRng;
use std::time::Duration;

fn bench_mis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_mis");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = random_geometric(&RandomGeometricConfig::dense(n), &mut rng)
            .expect("dense configuration connects");
        group.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let run = run_mis(
                    &net,
                    MisParams::default(),
                    AdversaryKind::Random { p: 0.5 },
                    seed,
                );
                assert!(run.report.terminated);
                run.solve_round
            });
        });
    }
    group.finish();
}

fn bench_mis_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_mis_adversaries");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng)
        .expect("dense configuration connects");
    for (name, kind) in [
        ("reliable", AdversaryKind::ReliableOnly),
        ("collider", AdversaryKind::Collider),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_mis(&net, MisParams::default(), kind, seed).solve_round
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis_scaling, bench_mis_adversaries);
criterion_main!(benches);
