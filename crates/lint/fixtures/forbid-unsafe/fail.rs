//! A crate root (linted under a virtual src/lib.rs path) without the
//! unsafe-code forbid.

pub fn answer() -> u32 {
    42
}
