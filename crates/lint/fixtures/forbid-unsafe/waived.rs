// lint:allow(forbid-unsafe) this binary hosts a counting allocator (unsafe impl GlobalAlloc)
//! A crate root whose unsafety is confined and justified.

pub fn answer() -> u32 {
    42
}
