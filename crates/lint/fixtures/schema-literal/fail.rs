// Seeded violation: a schema id spelled inline outside radio_bench::schemas.
// Linted under a virtual path inside crates/bench/src/.
fn report() -> Report {
    Report {
        schema: "radio-lab/serve/v1".to_string(),
    }
}
