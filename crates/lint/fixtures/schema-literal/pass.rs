// The compliant form: reference the named constant; test code may still
// spell the literal (schema pinning tests are the point of having them).
fn report() -> Report {
    Report {
        schema: crate::schemas::SERVE_REPORT_SCHEMA.to_string(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn schema_is_pinned() {
        assert_eq!(super::report().schema, "radio-lab/serve/v1");
    }
}
