// A legacy reader keeps the old id inline, with a written justification.
fn upgrade(doc: &str) -> bool {
    // lint:allow(schema-literal) v0 migration shim reads the retired id
    doc.contains("radio-lab/fault-plan/v0")
}
