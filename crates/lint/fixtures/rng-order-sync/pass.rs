// Two tiers with token-identical RNG event sequences; the surrounding
// bookkeeping may differ freely.
fn tier_a(&mut self) {
    // lint: rng-order(decide)
    for v in 0..n {
        let mut ctx = Context {
            local_round: r,
            rng: &mut self.rngs[v],
        };
        match self.procs[v].decide(&mut ctx) {
            _ => {}
        }
    }
    // lint: end-rng-order(decide)
}

fn tier_b(&mut self) {
    // lint: rng-order(decide)
    for v in 0..n {
        scratch.counts[v] += 1;
        let mut ctx = Context {
            local_round: r,
            rng: &mut self.rngs[v],
        };
        match self.procs[v].decide(&mut ctx) {
            _ => {}
        }
    }
    // lint: end-rng-order(decide)
}
