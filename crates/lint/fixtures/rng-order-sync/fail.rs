// Seeded violation: the two tiers draw from the RNG in different orders.
fn tier_a(&mut self) {
    // lint: rng-order(decide)
    for v in 0..n {
        let mut ctx = Context {
            local_round: r,
            rng: &mut self.rngs[v],
        };
        match self.procs[v].decide(&mut ctx) {
            _ => {}
        }
    }
    // lint: end-rng-order(decide)
}

fn tier_b(&mut self) {
    // lint: rng-order(decide)
    for v in 0..n {
        let extra = self.rngs[v].gen_bool(0.5);
        let mut ctx = Context {
            local_round: r,
            rng: &mut self.rngs[v],
        };
        match self.procs[v].decide(&mut ctx) {
            _ => {}
        }
    }
    // lint: end-rng-order(decide)
}
