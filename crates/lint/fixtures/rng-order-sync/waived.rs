// Same divergence as fail.rs, but the divergent block carries a waiver.
fn tier_a(&mut self) {
    // lint: rng-order(decide)
    let x = rng.gen_range(0..n);
    // lint: end-rng-order(decide)
}

fn tier_b(&mut self) {
    // lint:allow(rng-order-sync) experimental tier, excluded from the differential chain
    // lint: rng-order(decide)
    let x = rng.gen_bool(0.5);
    // lint: end-rng-order(decide)
}
