// The compliant form: degrade with error values; tests may still panic.
fn write_status(sd: &SpecDir, status: &SpecStatus) -> io::Result<()> {
    let json = crate::checkpoint::json_pretty(status)?;
    std::fs::write(sd.status_path(), json)?;
    let fallback = maybe.unwrap_or_default();
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        write_status(&sd, &status).unwrap();
    }
}
