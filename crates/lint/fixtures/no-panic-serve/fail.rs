// Seeded violation: panicking constructs in serve-layer code (linted
// under a virtual path inside crates/bench/src/serve/).
fn write_status(sd: &SpecDir, status: &SpecStatus) {
    let json = serde_json::to_string_pretty(status).expect("serializes");
    std::fs::write(sd.status_path(), json).unwrap();
    panic!("unreachable");
}
