// A panic site carrying a written justification.
fn fingerprint(spec: &Spec) -> String {
    // lint:allow(no-panic-serve) plain serde data, derived Serialize cannot fail
    serde_json::to_string(spec).expect("spec serializes")
}
