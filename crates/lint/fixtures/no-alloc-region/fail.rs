// Seeded violation: a fenced hot loop that allocates.
fn step(&mut self) {
    // lint: begin-no-alloc
    let mut names = Vec::new();
    for v in 0..n {
        names.push(format!("node-{v}"));
    }
    let snapshot = self.rows.to_vec();
    // lint: end-no-alloc
}
