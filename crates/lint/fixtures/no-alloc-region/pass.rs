// A fenced region that only reuses preallocated buffers.
fn step(&mut self) {
    // lint: begin-no-alloc
    self.scratch.broadcasters.clear();
    for v in 0..n {
        self.scratch.reach_count[v] = 0;
        self.scratch.broadcasters.push(v as u32);
    }
    // lint: end-no-alloc
    let outside = Vec::new();
}
