// An allocation inside a fence, carrying a written justification.
fn step_legacy(&mut self) {
    // lint: begin-no-alloc
    // lint:allow(no-alloc-region) seed tier allocates per-round buffers by design
    let mut messages = Vec::with_capacity(n);
    for v in 0..n {
        messages.push(None);
    }
    // lint: end-no-alloc
}
