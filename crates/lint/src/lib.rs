//! `radio-lint`: project-specific static analysis for the radio-network
//! repro workspace.
//!
//! The differential test chain proves the engine tiers agree on the paths
//! the tests execute; this crate proves the *source-level* invariants that
//! make that agreement structural rather than coincidental:
//!
//! * **`rng-order-sync`** — marked decide/receive blocks across the four
//!   engine tiers must contain token-identical RNG-draw sequences.
//! * **`no-alloc-region`** — fenced hot-loop regions must not contain
//!   allocating constructs (`Vec::new`, `vec!`, `collect`, …).
//! * **`schema-literal`** — schema-id strings (`radio-lab/*`,
//!   `bench-engine/*`) may only be defined in `radio_bench::schemas`.
//! * **`no-panic-serve`** — the serve/checkpoint layers must degrade, not
//!   panic: no `.unwrap()` / `.expect(` / `panic!` outside tests.
//! * **`forbid-unsafe`** — every crate root carries
//!   `#![forbid(unsafe_code)]` or a written waiver.
//!
//! Markers and waivers are line comments:
//!
//! ```text
//! // lint: rng-order(decide)      … // lint: end-rng-order(decide)
//! // lint: begin-no-alloc         … // lint: end-no-alloc
//! // lint:allow(<rule>) <reason>
//! ```
//!
//! A waiver on line L covers findings of that rule on lines L and L+1, so
//! it can sit on the offending line or immediately above it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use lexer::{lex, Comment, Lexed};
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule identifiers radio-lint knows about.
pub const RULES: [&str; 5] = [
    "rng-order-sync",
    "no-alloc-region",
    "schema-literal",
    "no-panic-serve",
    "forbid-unsafe",
];

/// Pseudo-rule used for malformed lint directives themselves.
pub const DIRECTIVE_RULE: &str = "lint-directive";

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`RULES`] or [`DIRECTIVE_RULE`]).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` if an inline waiver covers this finding.
    pub waived: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(reason) = &self.waived {
            write!(f, " (waived: {reason})")?;
        }
        Ok(())
    }
}

/// A parsed lint directive from a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// lint: rng-order(<group>)`
    RngBegin {
        /// Group name shared by the blocks to compare.
        group: String,
    },
    /// `// lint: end-rng-order(<group>)`
    RngEnd {
        /// Group name this end closes.
        group: String,
    },
    /// `// lint: begin-no-alloc`
    NoAllocBegin,
    /// `// lint: end-no-alloc`
    NoAllocEnd,
    /// `// lint:allow(<rule>) <reason>`
    Allow {
        /// Rule id being waived.
        rule: String,
        /// Written justification (must be non-empty).
        reason: String,
    },
}

/// A directive plus the line it appeared on.
#[derive(Debug, Clone)]
pub struct SourcedDirective {
    /// 1-based line of the comment.
    pub line: u32,
    /// The parsed directive.
    pub directive: Directive,
}

/// Parses lint directives out of the comment stream. Only line comments
/// whose trimmed text begins with `lint:` are considered — doc comments
/// *describing* the syntax (`/// // lint: …`) have text starting with
/// `/` and are therefore ignored. Malformed directives become
/// [`DIRECTIVE_RULE`] findings.
pub fn parse_directives(file: &str, comments: &[Comment]) -> (Vec<SourcedDirective>, Vec<Finding>) {
    let mut out = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        if !c.line_comment {
            continue;
        }
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let bad = |msg: String| Finding {
            rule: DIRECTIVE_RULE,
            file: file.to_string(),
            line: c.line,
            message: msg,
            waived: None,
        };
        let directive = if let Some(arg) = rest.strip_prefix("allow(") {
            match arg.split_once(')') {
                Some((rule, reason)) => {
                    let rule = rule.trim();
                    let reason = reason.trim();
                    if !RULES.contains(&rule) {
                        findings.push(bad(format!("waiver names unknown rule '{rule}'")));
                        continue;
                    }
                    if reason.is_empty() {
                        findings.push(bad(format!(
                            "waiver for '{rule}' has no written justification"
                        )));
                        continue;
                    }
                    Directive::Allow {
                        rule: rule.to_string(),
                        reason: reason.to_string(),
                    }
                }
                None => {
                    findings.push(bad("unclosed 'allow(' directive".to_string()));
                    continue;
                }
            }
        } else if let Some(arg) = rest.strip_prefix("rng-order(") {
            match group_arg(arg) {
                Some(g) => Directive::RngBegin { group: g },
                None => {
                    findings.push(bad("malformed rng-order(<group>) directive".to_string()));
                    continue;
                }
            }
        } else if let Some(arg) = rest.strip_prefix("end-rng-order(") {
            match group_arg(arg) {
                Some(g) => Directive::RngEnd { group: g },
                None => {
                    findings.push(bad("malformed end-rng-order(<group>) directive".to_string()));
                    continue;
                }
            }
        } else if rest == "begin-no-alloc" {
            Directive::NoAllocBegin
        } else if rest == "end-no-alloc" {
            Directive::NoAllocEnd
        } else {
            findings.push(bad(format!("unknown lint directive '{rest}'")));
            continue;
        };
        out.push(SourcedDirective {
            line: c.line,
            directive,
        });
    }
    (out, findings)
}

fn group_arg(arg: &str) -> Option<String> {
    let (g, rest) = arg.split_once(')')?;
    let g = g.trim();
    if g.is_empty() || !rest.trim().is_empty() {
        return None;
    }
    Some(g.to_string())
}

/// An inclusive 1-based line range.
#[derive(Debug, Clone, Copy)]
pub struct LineRange {
    /// First line of the range.
    pub start: u32,
    /// Last line of the range.
    pub end: u32,
}

impl LineRange {
    /// Whether `line` falls inside the range.
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Finds the line spans of `#[cfg(test)]` items (attribute line through
/// the matching closing brace). Findings inside these spans are exempt
/// from the path-scoped rules.
pub fn cfg_test_spans(lexed: &Lexed) -> Vec<LineRange> {
    let t = &lexed.toks;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let hit = t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')')
            && t[i + 6].is_punct(']');
        if !hit {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < t.len() && t[j].is_punct('#') && t[j + 1].is_punct('[') {
            let mut depth = 0i32;
            j += 1;
            while j < t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the item's body `{ … }`, or a `;` for bodiless items.
        let mut end_line = start_line;
        while j < t.len() {
            if t[j].is_punct(';') {
                end_line = t[j].line;
                j += 1;
                break;
            }
            if t[j].is_punct('{') {
                let mut depth = 0i32;
                while j < t.len() {
                    if t[j].is_punct('{') {
                        depth += 1;
                    } else if t[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t[j].line;
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        spans.push(LineRange {
            start: start_line,
            end: end_line.max(start_line),
        });
        i = j.max(i + 7);
    }
    spans
}

/// Whether a workspace-relative path is test/bench code, exempt from the
/// path-scoped rules (`schema-literal`, `no-panic-serve`).
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Lints one source file under its workspace-relative path. The path
/// decides which path-scoped rules apply, which is also how the fixture
/// tests exercise rules on files that live elsewhere on disk.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let (directives, mut findings) = parse_directives(rel_path, &lexed.comments);
    let test_spans = cfg_test_spans(&lexed);
    let in_tests = is_test_path(rel_path);

    findings.extend(rules::rng_order_sync(rel_path, &lexed, &directives));
    findings.extend(rules::no_alloc_region(rel_path, &lexed, &directives));
    if !in_tests {
        findings.extend(rules::schema_literal(rel_path, &lexed, &test_spans));
        findings.extend(rules::no_panic_serve(rel_path, &lexed, &test_spans));
        findings.extend(rules::forbid_unsafe(rel_path, &lexed));
    }
    apply_waivers(&mut findings, &directives);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Marks findings covered by an inline waiver. A waiver on line L covers
/// findings of the named rule on lines L and L+1.
fn apply_waivers(findings: &mut [Finding], directives: &[SourcedDirective]) {
    for f in findings.iter_mut() {
        for d in directives {
            if let Directive::Allow { rule, reason } = &d.directive {
                if rule == f.rule && (d.line == f.line || d.line + 1 == f.line) {
                    f.waived = Some(reason.clone());
                    break;
                }
            }
        }
    }
}

/// Walks the workspace at `root` and lints every `.rs` file. Skips
/// `target/`, dot-directories, and `fixtures/` directories (fixtures
/// contain seeded violations by design).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_parsing_roundtrip() {
        let src = "\
// lint: rng-order(decide)
// lint: end-rng-order(decide)
// lint: begin-no-alloc
// lint: end-no-alloc
// lint:allow(no-panic-serve) table emit is best-effort
/// doc prose that mentions // lint: rng-order(x) syntax
// plain comment
";
        let lexed = lex(src);
        let (ds, findings) = parse_directives("x.rs", &lexed.comments);
        assert_eq!(findings.len(), 0, "{findings:?}");
        assert_eq!(ds.len(), 5);
        assert!(
            matches!(&ds[4].directive, Directive::Allow { rule, .. } if rule == "no-panic-serve")
        );
    }

    #[test]
    fn bad_directives_are_findings() {
        let cases = [
            "// lint:allow(no-panic-serve)",
            "// lint:allow(not-a-rule) because",
            "// lint: rng-order()",
            "// lint: frobnicate",
        ];
        for src in cases {
            let lexed = lex(src);
            let (_, findings) = parse_directives("x.rs", &lexed.comments);
            assert_eq!(findings.len(), 1, "for {src}");
            assert_eq!(findings[0].rule, DIRECTIVE_RULE);
        }
    }

    #[test]
    fn cfg_test_span_covers_mod_body() {
        let src = "\
fn a() {}
#[cfg(test)]
mod tests {
    fn b() {
        x.unwrap();
    }
}
fn c() {}
";
        let lexed = lex(src);
        let spans = cfg_test_spans(&lexed);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(5));
        assert!(!spans[0].contains(8));
    }

    #[test]
    fn test_paths_detected() {
        assert!(is_test_path("crates/bench/tests/serve_cli.rs"));
        assert!(is_test_path("crates/sim/benches/engine.rs"));
        assert!(!is_test_path("crates/bench/src/serve/spool.rs"));
    }
}
