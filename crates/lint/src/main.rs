//! `radio-lint` — walk the workspace and enforce the repo invariants.
//!
//! Usage: `radio-lint [--check] [--root DIR] [--report PATH]`
//!
//! * `--check`  exit 1 if any unwaived finding exists (CI mode)
//! * `--root`   workspace root to walk (default: current directory)
//! * `--report` also write the findings to a file (for CI artifacts)
//!
//! Exit codes: 0 clean (or informational run without `--check`),
//! 1 unwaived findings under `--check`, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut report: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--help" | "-h" => {
                println!("radio-lint [--check] [--root DIR] [--report PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let findings = match radio_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("radio-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let unwaived: Vec<_> = findings.iter().filter(|f| f.waived.is_none()).collect();
    let waived = findings.len() - unwaived.len();

    let mut out = String::new();
    for f in &findings {
        let _ = writeln!(out, "{f}");
    }
    let _ = writeln!(
        out,
        "radio-lint: {} finding(s), {} unwaived, {} waived",
        findings.len(),
        unwaived.len(),
        waived
    );
    print!("{out}");

    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("radio-lint: failed to write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if check && !unwaived.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("radio-lint: {msg}");
    eprintln!("usage: radio-lint [--check] [--root DIR] [--report PATH]");
    ExitCode::from(2)
}
