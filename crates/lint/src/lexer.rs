//! A small hand-rolled Rust lexer — just enough token structure for the
//! project's lint rules, with none of `syn`'s weight (the build
//! environment is offline; vendored deps only).
//!
//! The lexer splits a source file into a **code token** stream and a
//! **comment** stream. Rules scan the code tokens (so string/comment
//! contents can never produce false matches), while the lint directives —
//! region markers and waivers — are parsed from the comments. Both carry
//! 1-based line numbers so diagnostics point at real locations.
//!
//! Deliberately out of scope: full operator gluing (`::` is two `:`
//! tokens), numeric exponent signs, and macro expansion. The rules match
//! token *sequences*, so none of that costs precision for the patterns
//! this repo pins.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// String literal — `text` holds the *inner* content, unescaped only
    /// to the extent rules need (escape sequences are kept verbatim).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Life,
    /// Any single punctuation character.
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (inner content for strings, the character itself for
    /// punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment (line or block) with the line it starts on. For line
/// comments `text` is everything after the `//`; for block comments,
/// everything between the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body.
    pub text: String,
    /// Whether this was a `//` line comment (directives are only honored
    /// in line comments; block comments are prose).
    pub line_comment: bool,
}

/// Lexer output: code tokens plus comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// strings or comments simply run to end of file (the compiler is the
/// authority on well-formedness; the linter only needs to stay in sync
/// on valid code).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                    line_comment: true,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = if depth == 0 { i - 2 } else { i };
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                    line_comment: false,
                });
            }
            b'"' => {
                let (text, ni, nl) = scan_string(src, i, line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                i = ni;
                line = nl;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let (kind, text, ni, nl) = scan_prefixed_literal(src, i, line);
                out.toks.push(Tok { kind, text, line });
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (kind, text, ni, nl) = scan_char_or_lifetime(src, i, line);
                out.toks.push(Tok { kind, text, line });
                i = ni;
                line = nl;
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if is_ident_continue(b[i]) {
                        i += 1;
                    } else if b[i] == b'.'
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit()
                        && !src[start..i].contains('.')
                    {
                        // A single decimal point followed by a digit joins
                        // the number; `0..n` stays three tokens.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                // Any other byte is one punctuation token. Multi-byte
                // UTF-8 sequences are consumed whole so `src` slicing
                // stays on char boundaries.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + ch_len].to_string(),
                    line,
                });
                i += ch_len;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char literal rather than a plain identifier.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return true; // b'x'
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Scans a plain `"…"` string starting at `i`. Returns (inner text, next
/// index, next line).
fn scan_string(src: &str, i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i + 1;
    let mut j = start;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // An escaped newline (line continuation) still advances
                // the line counter.
                if j + 1 < b.len() && b[j + 1] == b'\n' {
                    line += 1;
                }
                j = (j + 2).min(b.len());
            }
            b'"' => return (src[start..j].to_string(), j + 1, line),
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..j].to_string(), j, line)
}

/// Scans a literal introduced by `r`/`b` prefixes: raw strings, byte
/// strings, raw byte strings, and byte chars.
fn scan_prefixed_literal(src: &str, i: usize, line: u32) -> (TokKind, String, usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // b'x' byte char.
        let (_, text, ni, nl) = scan_char_or_lifetime(src, j, line);
        return (TokKind::Char, text, ni, nl);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    // b[j] == b'"' guaranteed by starts_raw_or_byte_literal.
    let start = j + 1;
    let mut k = start;
    let mut nl = line;
    if raw {
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain((0..hashes).map(|_| b'#'))
            .collect();
        while k < b.len() {
            if b[k] == b'\n' {
                nl += 1;
                k += 1;
            } else if b[k] == b'"' && b[k..].starts_with(&closer) {
                return (
                    TokKind::Str,
                    src[start..k].to_string(),
                    k + closer.len(),
                    nl,
                );
            } else {
                k += 1;
            }
        }
        (TokKind::Str, src[start..k].to_string(), k, nl)
    } else {
        let (text, ni, nl) = scan_string(src, j, line);
        (TokKind::Str, text, ni, nl)
    }
}

/// Scans a `'…'` token: a char literal or a lifetime.
fn scan_char_or_lifetime(src: &str, i: usize, line: u32) -> (TokKind, String, usize, u32) {
    let b = src.as_bytes();
    let j = i + 1;
    if j >= b.len() {
        return (TokKind::Punct, "'".to_string(), j, line);
    }
    if b[j] == b'\\' {
        // Escaped char literal: consume the escape, then to the closing
        // quote (covers \', \n, \u{…}).
        let mut k = j + 2;
        while k < b.len() && b[k] != b'\'' {
            k += 1;
        }
        let k = (k + 1).min(b.len());
        return (TokKind::Char, src[i..k].to_string(), k, line);
    }
    if is_ident_start(b[j]) {
        let mut k = j;
        while k < b.len() && is_ident_continue(b[k]) {
            k += 1;
        }
        if k < b.len() && b[k] == b'\'' {
            // 'a' — a one-ident char literal.
            return (TokKind::Char, src[i..=k].to_string(), k + 1, line);
        }
        // 'a without closing quote — a lifetime.
        return (TokKind::Life, src[i..k].to_string(), k, line);
    }
    // 'x' for punctuation-class x (e.g. '(').
    let ch_len = src[j..].chars().next().map_or(1, char::len_utf8);
    let mut k = j + ch_len;
    if k < b.len() && b[k] == b'\'' {
        k += 1;
    }
    (TokKind::Char, src[i..k].to_string(), k, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let t = kinds("let x = 0..n; y += 1.5;");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "0", ".", ".", "n", ";", "y", "+", "=", "1.5", ";"]
        );
    }

    #[test]
    fn strings_and_comments_are_separated() {
        let l = lex("let s = \"vec![no]\"; // vec![also no]\n/* block\nvec! */ call()");
        assert!(l.toks.iter().all(|t| !(t.is_ident("vec"))));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].line_comment);
        assert!(!l.comments[1].line_comment);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = lex(r####"let s = r#"radio "x""#; let c = 'a'; fn f<'a>() {} let q = '\'';"####);
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "radio \"x\"");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Life).count(), 1);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let l = lex("a\n\"two\nlines\"\nb");
        let a = &l.toks[0];
        let b = l.toks.last().unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
    }

    #[test]
    fn string_line_continuation_counts_lines() {
        let l = lex("let s = \"a\\\nb\";\nnext");
        assert_eq!(l.toks.last().unwrap().line, 3);
    }

    #[test]
    fn byte_literals() {
        let l = lex("let a = b\"bytes\"; let c = b'x';");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }
}
