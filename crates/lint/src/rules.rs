//! The five lint rules. Each takes the lexed file plus whatever scoping
//! input it needs and returns raw findings; waivers are applied by the
//! caller ([`crate::lint_source`]).

use crate::lexer::{Lexed, Tok, TokKind};
use crate::{Directive, Finding, LineRange, SourcedDirective};

/// Callee names that count as RNG-draw (or RNG-consuming) events for
/// `rng-order-sync`. `decide` / `receive` are included because the
/// process callbacks are where the engine hands its per-node RNG stream
/// to user code — their order *is* the draw order.
const RNG_CALLEES: [&str; 8] = [
    "gen",
    "gen_bool",
    "gen_range",
    "gen_ratio",
    "sample",
    "seed_from_u64",
    "decide",
    "receive",
];

fn finding(rule: &'static str, file: &str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        message,
        waived: None,
    }
}

/// Joins a token slice back into a canonical single-spaced string for
/// sequence comparison and diagnostics.
fn join(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        if t.kind == TokKind::Str {
            s.push('"');
            s.push_str(&t.text);
            s.push('"');
        } else {
            s.push_str(&t.text);
        }
    }
    s
}

/// Index range (into `toks`) of tokens strictly between two marker lines.
fn span_between(toks: &[Tok], begin_line: u32, end_line: u32) -> (usize, usize) {
    let a = toks.partition_point(|t| t.line <= begin_line);
    let b = toks.partition_point(|t| t.line < end_line);
    (a, b)
}

/// `rng-order-sync`: blocks tagged `// lint: rng-order(<group>)` must
/// contain token-identical RNG-event sequences per group. The reference
/// is the first block of each group in file order.
pub fn rng_order_sync(file: &str, lexed: &Lexed, directives: &[SourcedDirective]) -> Vec<Finding> {
    const RULE: &str = "rng-order-sync";
    let mut findings = Vec::new();
    // Pair begin/end markers per group, in line order.
    let mut open: Vec<(String, u32)> = Vec::new();
    let mut blocks: Vec<(String, u32, u32)> = Vec::new();
    for d in directives {
        match &d.directive {
            Directive::RngBegin { group } => {
                if open.iter().any(|(g, _)| g == group) {
                    findings.push(finding(
                        RULE,
                        file,
                        d.line,
                        format!("rng-order group '{group}' reopened before end marker"),
                    ));
                } else {
                    open.push((group.clone(), d.line));
                }
            }
            Directive::RngEnd { group } => match open.iter().position(|(g, _)| g == group) {
                Some(i) => {
                    let (g, begin) = open.remove(i);
                    blocks.push((g, begin, d.line));
                }
                None => findings.push(finding(
                    RULE,
                    file,
                    d.line,
                    format!("end-rng-order('{group}') without a matching begin marker"),
                )),
            },
            _ => {}
        }
    }
    for (group, line) in open {
        findings.push(finding(
            RULE,
            file,
            line,
            format!("rng-order group '{group}' never closed"),
        ));
    }
    blocks.sort_by_key(|&(_, begin, _)| begin);

    // Extract and compare event sequences group by group (first
    // occurrence order, each group once).
    let mut groups: Vec<&str> = Vec::new();
    for (g, _, _) in &blocks {
        if !groups.contains(&g.as_str()) {
            groups.push(g.as_str());
        }
    }
    for group in groups {
        let members: Vec<&(String, u32, u32)> =
            blocks.iter().filter(|(g, _, _)| g == group).collect();
        let (first, rest) = match members.split_first() {
            Some(x) => x,
            None => continue,
        };
        let (a, b) = span_between(&lexed.toks, first.1, first.2);
        let reference = rng_events(&lexed.toks, a, b);
        for m in rest {
            let (a, b) = span_between(&lexed.toks, m.1, m.2);
            let events = rng_events(&lexed.toks, a, b);
            if events == reference {
                continue;
            }
            let detail = first_divergence(&reference, &events);
            findings.push(finding(
                RULE,
                file,
                m.1,
                format!(
                    "rng-order('{group}') block diverges from reference block at line {}: {detail}",
                    first.1
                ),
            ));
        }
    }
    findings
}

/// Describes the first point where two event sequences differ.
fn first_divergence(reference: &[String], events: &[String]) -> String {
    for (k, (r, e)) in reference.iter().zip(events.iter()).enumerate() {
        if r != e {
            return format!("event {k} is `{e}`, reference has `{r}`");
        }
    }
    format!(
        "sequence has {} RNG events, reference has {}",
        events.len(),
        reference.len()
    )
}

/// Extracts the RNG-event sequence from a token span: `rng:` field wiring
/// (captured to the struct-literal field boundary) and calls to
/// [`RNG_CALLEES`] (captured with their receiver chain and arguments).
fn rng_events(toks: &[Tok], a: usize, b: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = a;
    while i < b {
        // `rng: <expr>` struct-field wiring, up to the depth-0 `,` / `}`.
        if toks[i].is_ident("rng")
            && i + 1 < b
            && toks[i + 1].is_punct(':')
            && !(i + 2 < b && toks[i + 2].is_punct(':'))
            && !(i > a && toks[i - 1].is_punct(':'))
        {
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < b {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                j += 1;
            }
            out.push(join(&toks[i..j]));
            i = j;
            continue;
        }
        // Calls to RNG-consuming methods (not their `fn` definitions).
        if toks[i].kind == TokKind::Ident
            && RNG_CALLEES.contains(&toks[i].text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            if let Some(end) = call_end(toks, b, i) {
                let start = receiver_start(toks, a, i);
                out.push(join(&toks[start..end]));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// If the ident at `callee` begins a call (optionally with a turbofish),
/// returns the index one past its closing `)`.
fn call_end(toks: &[Tok], b: usize, callee: usize) -> Option<usize> {
    let mut j = callee + 1;
    if j + 2 < b && toks[j].is_punct(':') && toks[j + 1].is_punct(':') && toks[j + 2].is_punct('<')
    {
        let mut depth = 0i32;
        j += 2;
        while j < b {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if j >= b || !toks[j].is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < b {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
        k += 1;
    }
    None
}

/// Walks backwards from a callee over its `.`-linked receiver chain
/// (idents, index expressions, call results) and returns the chain's
/// start index.
fn receiver_start(toks: &[Tok], a: usize, callee: usize) -> usize {
    let mut k = callee;
    while k >= a + 2 && toks[k - 1].is_punct('.') {
        let prev = k - 2;
        if toks[prev].kind == TokKind::Ident {
            k = prev;
        } else if toks[prev].is_punct(']') || toks[prev].is_punct(')') {
            let (open, close) = if toks[prev].is_punct(']') {
                ('[', ']')
            } else {
                ('(', ')')
            };
            let mut depth = 0i32;
            let mut p = prev;
            loop {
                if toks[p].is_punct(close) {
                    depth += 1;
                } else if toks[p].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if p == a {
                    break;
                }
                p -= 1;
            }
            if p > a && toks[p - 1].kind == TokKind::Ident {
                k = p - 1;
            } else {
                k = p;
            }
        } else {
            break;
        }
    }
    k
}

/// `no-alloc-region`: fenced regions reject allocating constructs.
pub fn no_alloc_region(file: &str, lexed: &Lexed, directives: &[SourcedDirective]) -> Vec<Finding> {
    const RULE: &str = "no-alloc-region";
    let mut findings = Vec::new();
    let mut open: Option<u32> = None;
    let mut regions: Vec<(u32, u32)> = Vec::new();
    for d in directives {
        match &d.directive {
            Directive::NoAllocBegin => {
                if open.is_some() {
                    findings.push(finding(
                        RULE,
                        file,
                        d.line,
                        "nested begin-no-alloc (previous region never closed)".to_string(),
                    ));
                } else {
                    open = Some(d.line);
                }
            }
            Directive::NoAllocEnd => match open.take() {
                Some(begin) => regions.push((begin, d.line)),
                None => findings.push(finding(
                    RULE,
                    file,
                    d.line,
                    "end-no-alloc without a matching begin-no-alloc".to_string(),
                )),
            },
            _ => {}
        }
    }
    if let Some(begin) = open {
        findings.push(finding(
            RULE,
            file,
            begin,
            "begin-no-alloc never closed".to_string(),
        ));
    }

    let toks = &lexed.toks;
    for (begin, end) in regions {
        let (a, b) = span_between(toks, begin, end);
        for i in a..b {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = |off: usize| toks.get(i + off).filter(|n| n.line < end);
            let construct: Option<&str> = match t.text.as_str() {
                "Vec" | "Box"
                    if next(1).is_some_and(|n| n.is_punct(':'))
                        && next(2).is_some_and(|n| n.is_punct(':'))
                        && next(3).is_some_and(|n| n.is_ident("new")) =>
                {
                    Some(if t.text == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    })
                }
                "vec" if next(1).is_some_and(|n| n.is_punct('!')) => Some("vec!"),
                "format" if next(1).is_some_and(|n| n.is_punct('!')) => Some("format!"),
                "to_vec" if next(1).is_some_and(|n| n.is_punct('(')) => Some("to_vec()"),
                "with_capacity" if next(1).is_some_and(|n| n.is_punct('(')) => {
                    Some("with_capacity()")
                }
                "collect"
                    if next(1).is_some_and(|n| n.is_punct('('))
                        || (next(1).is_some_and(|n| n.is_punct(':'))
                            && next(2).is_some_and(|n| n.is_punct(':'))
                            && next(3).is_some_and(|n| n.is_punct('<'))) =>
                {
                    Some("collect()")
                }
                "clone"
                    if i > 0
                        && toks[i - 1].is_punct('.')
                        && next(1).is_some_and(|n| n.is_punct('(')) =>
                {
                    Some(".clone()")
                }
                _ => None,
            };
            if let Some(c) = construct {
                findings.push(finding(
                    RULE,
                    file,
                    t.line,
                    format!(
                        "allocating construct `{c}` inside no-alloc region begun at line {begin}"
                    ),
                ));
            }
        }
    }
    findings
}

/// `schema-literal`: schema-id strings may only be defined in the
/// `radio_bench::schemas` constants module.
pub fn schema_literal(file: &str, lexed: &Lexed, test_spans: &[LineRange]) -> Vec<Finding> {
    const RULE: &str = "schema-literal";
    // lint:allow(schema-literal) rule pattern definitions, not schema ids
    const PREFIXES: [&str; 2] = ["radio-lab/", "bench-engine/"];
    const HOME: &str = "crates/bench/src/schemas.rs";
    if file == HOME {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for t in &lexed.toks {
        if t.kind != TokKind::Str {
            continue;
        }
        if !PREFIXES.iter().any(|p| t.text.starts_with(p)) {
            continue;
        }
        if test_spans.iter().any(|s| s.contains(t.line)) {
            continue;
        }
        findings.push(finding(
            RULE,
            file,
            t.line,
            format!(
                "schema-id literal \"{}\" outside radio_bench::schemas — use the named constant",
                t.text
            ),
        ));
    }
    findings
}

/// `no-panic-serve`: the serve/checkpoint layers must degrade instead of
/// panic.
pub fn no_panic_serve(file: &str, lexed: &Lexed, test_spans: &[LineRange]) -> Vec<Finding> {
    const RULE: &str = "no-panic-serve";
    let scoped =
        file.starts_with("crates/bench/src/serve/") || file == "crates/bench/src/checkpoint.rs";
    if !scoped {
        return Vec::new();
    }
    let toks = &lexed.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let construct: Option<&str> = match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                Some(if t.text == "unwrap" {
                    ".unwrap()"
                } else {
                    ".expect("
                })
            }
            "panic" if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => Some("panic!"),
            _ => None,
        };
        let Some(c) = construct else { continue };
        if test_spans.iter().any(|s| s.contains(t.line)) {
            continue;
        }
        findings.push(finding(
            RULE,
            file,
            t.line,
            format!("`{c}` in serve/checkpoint layer — degrade with an error value instead"),
        ));
    }
    findings
}

/// `forbid-unsafe`: every crate root (`src/lib.rs`, `src/main.rs`,
/// `src/bin/*.rs`) must carry `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe(file: &str, lexed: &Lexed) -> Vec<Finding> {
    const RULE: &str = "forbid-unsafe";
    let is_root = file == "src/lib.rs"
        || file == "src/main.rs"
        || file.ends_with("/src/lib.rs")
        || file.ends_with("/src/main.rs")
        || file.contains("/src/bin/");
    if !is_root {
        return Vec::new();
    }
    let t = &lexed.toks;
    for i in 0..t.len().saturating_sub(7) {
        if t[i].is_punct('#')
            && t[i + 1].is_punct('!')
            && t[i + 2].is_punct('[')
            && t[i + 3].is_ident("forbid")
            && t[i + 4].is_punct('(')
            && t[i + 5].is_ident("unsafe_code")
            && t[i + 6].is_punct(')')
            && t[i + 7].is_punct(']')
        {
            return Vec::new();
        }
    }
    vec![finding(
        RULE,
        file,
        1,
        "crate root is missing #![forbid(unsafe_code)]".to_string(),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse_directives;

    fn run_rng(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let (ds, _) = parse_directives("f.rs", &lexed.comments);
        rng_order_sync("f.rs", &lexed, &ds)
    }

    #[test]
    fn rng_event_extraction_captures_wiring_and_calls() {
        let src = "\
// lint: rng-order(g)
let mut ctx = Context {
    local_round: r,
    rng: &mut self.rngs[v],
};
match self.procs[v].decide(&mut ctx) { _ => {} }
// lint: end-rng-order(g)
";
        let lexed = lex(src);
        let events = rng_events(&lexed.toks, 0, lexed.toks.len());
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0], "rng : & mut self . rngs [ v ]");
        assert_eq!(events[1], "self . procs [ v ] . decide ( & mut ctx )");
        assert!(run_rng(src).is_empty());
    }

    #[test]
    fn rng_order_divergence_is_flagged() {
        let src = "\
// lint: rng-order(g)
let x = rng.gen_range(0..n);
// lint: end-rng-order(g)
// lint: rng-order(g)
let x = rng.gen_bool(0.5);
// lint: end-rng-order(g)
";
        let f = run_rng(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn fn_definitions_are_not_events() {
        let src = "\
// lint: rng-order(g)
fn decide(&mut self) {}
// lint: end-rng-order(g)
// lint: rng-order(g)
// lint: end-rng-order(g)
";
        assert!(run_rng(src).is_empty());
    }

    #[test]
    fn unmatched_markers_are_findings() {
        assert_eq!(run_rng("// lint: rng-order(g)\n").len(), 1);
        assert_eq!(run_rng("// lint: end-rng-order(g)\n").len(), 1);
    }

    #[test]
    fn no_alloc_flags_each_construct() {
        let src = "\
// lint: begin-no-alloc
let a = Vec::new();
let b = vec![0; n];
let c = xs.to_vec();
let d: Vec<_> = it.collect();
let e = it.collect::<Vec<_>>();
let f = format!(\"x\");
let g = h.clone();
let i = Box::new(0);
let j = Vec::with_capacity(n);
// lint: end-no-alloc
";
        let lexed = lex(src);
        let (ds, _) = parse_directives("f.rs", &lexed.comments);
        let f = no_alloc_region("f.rs", &lexed, &ds);
        assert_eq!(f.len(), 9, "{f:?}");
    }

    #[test]
    fn no_alloc_allows_clean_code() {
        let src = "\
// lint: begin-no-alloc
let mut x = 0u64;
buf.clear();
buf.push(1);
let cloned = derived_name();
// lint: end-no-alloc
";
        let lexed = lex(src);
        let (ds, _) = parse_directives("f.rs", &lexed.comments);
        assert!(no_alloc_region("f.rs", &lexed, &ds).is_empty());
    }

    #[test]
    fn schema_literal_scoping() {
        let src = "const S: &str = \"radio-lab/v2\";";
        let lexed = lex(src);
        assert_eq!(
            schema_literal("crates/bench/src/bin/x.rs", &lexed, &[]).len(),
            1
        );
        assert!(schema_literal("crates/bench/src/schemas.rs", &lexed, &[]).is_empty());
    }

    #[test]
    fn no_panic_serve_scoping_and_idents() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"z\"); x.unwrap_or(0); }";
        let lexed = lex(src);
        let f = no_panic_serve("crates/bench/src/serve/spool.rs", &lexed, &[]);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(no_panic_serve("crates/sim/src/engine.rs", &lexed, &[]).is_empty());
    }

    #[test]
    fn forbid_unsafe_detects_attribute() {
        let with = lex("#![forbid(unsafe_code)]\nfn main() {}");
        let without = lex("fn main() {}");
        assert!(forbid_unsafe("crates/x/src/main.rs", &with).is_empty());
        assert_eq!(forbid_unsafe("crates/x/src/main.rs", &without).len(), 1);
        assert!(forbid_unsafe("crates/x/src/other.rs", &without).is_empty());
    }
}
