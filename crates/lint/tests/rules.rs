//! The fixture battery plus the workspace self-test.
//!
//! Each rule is demonstrated three ways: a seeded violation (`fail.rs`),
//! a compliant form (`pass.rs`), and a violation carrying a written
//! waiver (`waived.rs`). Fixtures live in `fixtures/` (not `tests/`, so
//! the test-path exemption cannot neuter them) and are linted under
//! *virtual* workspace paths so the path-scoped rules fire. On top of
//! that, the self-tests lint the real workspace — asserting zero
//! unwaived findings, that the engine carries the full marker set, and
//! that seeded violations in the real `engine.rs` are caught.

use radio_lint::{lint_source, lint_workspace, Finding};
use std::path::{Path, PathBuf};

/// Lints fixture text under a claimed workspace path, returning only the
/// named rule's findings.
fn lint_fixture(rule: &str, fixture: &str, virtual_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(fixture);
    let src = std::fs::read_to_string(&path).unwrap();
    lint_source(virtual_path, &src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

fn check_rule(rule: &str, virtual_path: &str) {
    let fail = lint_fixture(rule, "fail.rs", virtual_path);
    assert!(
        fail.iter().any(|f| f.waived.is_none()),
        "{rule}: fail.rs should produce an unwaived finding, got {fail:?}"
    );
    let pass = lint_fixture(rule, "pass.rs", virtual_path);
    assert!(
        pass.is_empty(),
        "{rule}: pass.rs should be clean, got {pass:?}"
    );
    let waived = lint_fixture(rule, "waived.rs", virtual_path);
    assert!(!waived.is_empty(), "{rule}: waived.rs should still report");
    assert!(
        waived.iter().all(|f| f.waived.is_some()),
        "{rule}: waived.rs findings should all carry a waiver, got {waived:?}"
    );
}

#[test]
fn rng_order_sync_fixtures() {
    check_rule("rng-order-sync", "crates/sim/src/engine.rs");
}

#[test]
fn no_alloc_region_fixtures() {
    check_rule("no-alloc-region", "crates/sim/src/engine.rs");
}

#[test]
fn schema_literal_fixtures() {
    check_rule("schema-literal", "crates/bench/src/serve/cli.rs");
}

#[test]
fn no_panic_serve_fixtures() {
    check_rule("no-panic-serve", "crates/bench/src/serve/spool.rs");
}

#[test]
fn forbid_unsafe_fixtures() {
    check_rule("forbid-unsafe", "crates/bench/src/bin/tool.rs");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn engine_src() -> String {
    std::fs::read_to_string(workspace_root().join("crates/sim/src/engine.rs")).unwrap()
}

/// The whole repo passes its own lint: no unwaived findings anywhere.
#[test]
fn workspace_is_clean() {
    let findings = lint_workspace(&workspace_root()).unwrap();
    let unwaived: Vec<&Finding> = findings.iter().filter(|f| f.waived.is_none()).collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        unwaived
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The engine carries the full marker set: a decide and a receive
/// rng-order block for each of the four tiers, and no-alloc fences.
#[test]
fn engine_marker_coverage() {
    let src = engine_src();
    assert_eq!(
        src.matches("// lint: rng-order(decide)").count(),
        4,
        "each of the four tiers must tag its decide phase"
    );
    assert_eq!(
        src.matches("// lint: rng-order(receive)").count(),
        4,
        "each of the four tiers must tag its receive phase"
    );
    assert_eq!(
        src.matches("// lint: begin-no-alloc").count(),
        src.matches("// lint: end-no-alloc").count(),
        "no-alloc fences must pair up"
    );
    assert!(
        src.matches("// lint: begin-no-alloc").count() >= 10,
        "the step tiers, their phase helpers, and RoundScratch are fenced"
    );
}

/// Seeding a real divergence into the engine's receive phase is caught:
/// change the reference block's receive call and the other three tiers
/// no longer match it.
#[test]
fn seeded_rng_divergence_in_real_engine_is_caught() {
    let src = engine_src().replacen(
        "self.procs[v].receive(&mut ctx, msg);",
        "self.procs[v].receive(&mut ctx, msg.or(fallback));",
        1,
    );
    let findings = lint_source("crates/sim/src/engine.rs", &src);
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "rng-order-sync" && f.waived.is_none())
        .collect();
    assert_eq!(
        hits.len(),
        3,
        "three receive blocks should diverge from the tampered reference, got {findings:?}"
    );
}

/// Seeding an allocation into `step`'s fenced body is caught.
#[test]
fn seeded_allocation_in_real_engine_is_caught() {
    let src = engine_src().replacen(
        "let epoch = self.scratch.epoch;",
        "let boom = vec![0u8; 1];\n        let epoch = self.scratch.epoch;",
        1,
    );
    let findings = lint_source("crates/sim/src/engine.rs", &src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "no-alloc-region" && f.waived.is_none()),
        "the seeded vec! should be flagged, got {findings:?}"
    );
}

/// End-to-end through the binary: the fixtures tree fails `--check` (and
/// writes the report artifact), the real workspace passes it.
#[test]
fn binary_check_mode() {
    let bin = env!("CARGO_BIN_EXE_radio-lint");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = std::env::temp_dir().join(format!("radio_lint_report_{}.txt", std::process::id()));
    let out = std::process::Command::new(bin)
        .args(["--check", "--root"])
        .arg(&fixtures)
        .arg("--report")
        .arg(&report)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "seeded fixtures must fail --check: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let written = std::fs::read_to_string(&report).unwrap();
    let _ = std::fs::remove_file(&report);
    assert!(written.contains("unwaived"), "report artifact is written");

    let out = std::process::Command::new(bin)
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "the workspace must pass --check:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
