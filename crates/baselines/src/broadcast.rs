//! Broadcast baselines: Decay and Round-Robin.
//!
//! The dual graph model was introduced (as the *dynamic fault* model) to
//! show that multihop broadcast gets strictly harder with unreliable links
//! [Clementi–Monti–Silvestri; Kuhn–Lynch–Newport]. These two classic
//! protocols bracket the trade-off the paper's introduction motivates:
//!
//! * [`DecayBroadcast`] — the randomized Decay protocol (Bar-Yehuda,
//!   Goldreich, Itai): fast (`O(D·log n)` expected in the classic model) but
//!   its contention reduction can be thwarted by adversarial unreliable
//!   links;
//! * [`RoundRobinBroadcast`] — each process transmits only in its own slot
//!   of an `n`-round cycle: slow (`Θ(n)` per hop) but **immune to any
//!   adversary**, because a slot owner always broadcasts alone. Clementi et
//!   al. proved round robin optimal for fault-tolerant broadcast, which is
//!   exactly why link detectors are needed to do better.

use radio_sim::{Action, Context, MessageSize, Process};
use radio_structures::params::ceil_log2;
use rand::Rng as _;

/// The broadcast payload: a hop counter (standing in for application data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flood {
    /// Hops traveled so far.
    pub hops: u32,
}

impl MessageSize for Flood {
    fn bits(&self) -> u64 {
        32
    }
}

/// The Decay broadcast process.
///
/// Informed processes run repeated decay phases of `⌈log₂ n⌉ + 1` rounds;
/// in round `j` of a phase they broadcast with probability `2^{-j}`
/// (starting at 1 and halving). A process outputs once informed, so an
/// engine run ends when the flood has covered the network.
#[derive(Debug, Clone)]
pub struct DecayBroadcast {
    phase_len: u64,
    informed: Option<u32>,
}

impl DecayBroadcast {
    /// Creates a process; `source` processes start informed (hop 0).
    pub fn new(n: usize, source: bool) -> Self {
        DecayBroadcast {
            phase_len: u64::from(ceil_log2(n)) + 1,
            informed: if source { Some(0) } else { None },
        }
    }

    /// Hops at which this process was informed, if it has been.
    pub fn informed_at(&self) -> Option<u32> {
        self.informed
    }
}

impl Process for DecayBroadcast {
    type Msg = Flood;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Flood> {
        let Some(hops) = self.informed else {
            return Action::Idle;
        };
        let j = (ctx.local_round - 1) % self.phase_len;
        let p = 0.5f64.powi(j as i32);
        if ctx.rng.gen_bool(p) {
            Action::Broadcast(Flood { hops: hops + 1 })
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, msg: Option<&Flood>) {
        if let Some(f) = msg {
            if self.informed.is_none() {
                self.informed = Some(f.hops);
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.informed.map(|_| true)
    }
}

/// The round-robin broadcast process: process `i` transmits only in rounds
/// `r ≡ i−1 (mod n)`, so every transmission is collision-free no matter
/// what the adversary does with unreliable edges.
#[derive(Debug, Clone)]
pub struct RoundRobinBroadcast {
    informed: Option<u32>,
}

impl RoundRobinBroadcast {
    /// Creates a process; `source` processes start informed (hop 0).
    pub fn new(source: bool) -> Self {
        RoundRobinBroadcast {
            informed: if source { Some(0) } else { None },
        }
    }

    /// Hops at which this process was informed, if it has been.
    pub fn informed_at(&self) -> Option<u32> {
        self.informed
    }
}

impl Process for RoundRobinBroadcast {
    type Msg = Flood;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Flood> {
        let Some(hops) = self.informed else {
            return Action::Idle;
        };
        let n = ctx.n as u64;
        if (ctx.local_round - 1) % n == u64::from(ctx.my_id.get() - 1) {
            Action::Broadcast(Flood { hops: hops + 1 })
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, msg: Option<&Flood>) {
        if let Some(f) = msg {
            if self.informed.is_none() {
                self.informed = Some(f.hops);
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.informed.map(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::adversary::Collider;
    use radio_sim::{DualGraph, EngineBuilder, Graph, StopReason};

    fn line_net(n: usize) -> DualGraph {
        DualGraph::classic(Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()).unwrap()
    }

    #[test]
    fn decay_floods_a_line() {
        let mut e = EngineBuilder::new(line_net(12))
            .seed(1)
            .spawn(|info| DecayBroadcast::new(info.n, info.node.index() == 0))
            .unwrap();
        let out = e.run(10_000);
        assert_eq!(out.stop, StopReason::AllDone);
        assert!(e.procs().iter().all(|p| p.informed_at().is_some()));
    }

    #[test]
    fn round_robin_floods_within_n_times_diameter() {
        let n = 12;
        let mut e = EngineBuilder::new(line_net(n))
            .seed(1)
            .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
            .unwrap();
        let out = e.run((n as u64) * (n as u64 + 1));
        assert_eq!(out.stop, StopReason::AllDone);
        // A line has diameter n-1; each cycle advances the frontier by >= 1.
        assert!(out.rounds <= (n as u64) * (n as u64));
    }

    #[test]
    fn round_robin_is_adversary_immune() {
        // Line in G plus dense unreliable chords; the collider cannot stop
        // round robin because slot owners always broadcast alone.
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let mut gp = g.clone();
        for i in 0..8 {
            gp.add_edge(i, i + 2);
        }
        let net = DualGraph::new(g, gp).unwrap();
        let mut e = EngineBuilder::new(net)
            .seed(2)
            .adversary(Collider)
            .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
            .unwrap();
        let out = e.run(10 * 10 + 10);
        assert_eq!(out.stop, StopReason::AllDone);
    }

    #[test]
    fn decay_beats_round_robin_in_classic_model() {
        // With sequential ids along the line, round robin's slot order
        // coincidentally rides the wavefront; reverse the assignment so each
        // hop costs it a full n-round cycle (the generic case).
        let n = 24usize;
        let ids = radio_sim::IdAssignment::from_ids((1..=n as u32).rev().collect()).unwrap();
        let rounds_of = |decay: bool| {
            if decay {
                let mut e = EngineBuilder::new(line_net(n))
                    .seed(7)
                    .ids(ids.clone())
                    .spawn(|info| DecayBroadcast::new(info.n, info.node.index() == 0))
                    .unwrap();
                e.run(1_000_000).rounds
            } else {
                let mut e = EngineBuilder::new(line_net(n))
                    .seed(7)
                    .ids(ids.clone())
                    .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
                    .unwrap();
                e.run(1_000_000).rounds
            }
        };
        assert!(rounds_of(true) < rounds_of(false));
    }
}
