//! The "simple approach" CCDS: explore through **every** neighbor.
//!
//! Section 5 motivates the banned list by contrast with the obvious
//! algorithm: after the MIS, each MIS node gives each of its `Δ` neighbors
//! a chance to explore whether it leads to a nearby MIS node — `Θ(Δ)`
//! exploration turns, `O(Δ·polylog n)` rounds, *regardless of message
//! size*. That obvious algorithm is structurally the Section 6 algorithm
//! run at `τ = 0` (dedicated per-neighbor announcement slots), so this
//! module implements the baseline as exactly that, with the accounting made
//! explicit for the E8 ablation.

use radio_sim::ProcessId;
use radio_structures::{TauCcds, TauConfig, TauParams};
use serde::{Deserialize, Serialize};

/// Configuration of the naive (explore-everyone) CCDS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveCcdsConfig {
    /// The underlying per-neighbor-slot configuration (τ = 0).
    pub inner: TauConfig,
}

impl NaiveCcdsConfig {
    /// Builds the baseline configuration for network size `n` and degree
    /// bound `delta_bound`.
    pub fn new(n: usize, delta_bound: usize) -> Self {
        NaiveCcdsConfig {
            inner: TauConfig::new(n, delta_bound, 0),
        }
    }

    /// With explicit phase constants.
    pub fn with_params(n: usize, delta_bound: usize, params: TauParams) -> Self {
        NaiveCcdsConfig {
            inner: TauConfig {
                n,
                delta_bound,
                tau: 0,
                params,
            },
        }
    }

    /// Exploration turns each MIS node pays for: one per (potential)
    /// neighbor — the `Θ(Δ)` the banned list avoids.
    pub fn exploration_turns(&self) -> u64 {
        self.inner.schedule().slots
    }

    /// Total rounds of the baseline — linear in `Δ` by construction.
    pub fn total_rounds(&self) -> u64 {
        self.inner.schedule().total
    }

    /// Creates the process for one node.
    pub fn spawn(&self, id: ProcessId) -> TauCcds {
        TauCcds::new(&self.inner, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::{DualGraph, EngineBuilder, Graph};
    use radio_structures::checker::check_ccds;

    #[test]
    fn naive_turns_scale_with_delta() {
        let thin = NaiveCcdsConfig::new(64, 8);
        let thick = NaiveCcdsConfig::new(64, 32);
        assert_eq!(thin.exploration_turns(), 8);
        assert_eq!(thick.exploration_turns(), 32);
        assert!(thick.total_rounds() > thin.total_rounds());
    }

    #[test]
    fn naive_ccds_is_correct() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let cfg = NaiveCcdsConfig::new(10, net.max_degree_g());
        let h = net.g().clone();
        let mut engine = EngineBuilder::new(net.clone())
            .seed(3)
            .spawn(|info| cfg.spawn(info.id))
            .unwrap();
        engine.run(cfg.total_rounds() + 1);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(report.terminated && report.connected && report.dominating);
    }
}
