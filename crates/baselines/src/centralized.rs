//! Centralized (offline) reference constructions.
//!
//! These are not radio algorithms — they see the whole graph — and serve as
//! quality yardsticks for the distributed structures: how large is the MIS,
//! how many connectors does a CDS really need, how close do the paper's
//! algorithms get.

use radio_sim::Graph;

/// Greedy maximal independent set in id order: scan vertices, take any not
/// adjacent to an already-taken vertex.
///
/// # Examples
///
/// ```
/// use radio_sim::Graph;
/// use radio_baselines::centralized::greedy_mis;
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(greedy_mis(&g), vec![true, false, true, false]);
/// # Ok::<(), radio_sim::GraphError>(())
/// ```
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in 0..g.n() {
        if !blocked[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

/// Greedy connected dominating set: a greedy MIS plus shortest connector
/// paths merged until the set is connected.
///
/// Returns the membership vector. For a connected input the result is a
/// valid CDS: dominating (the MIS dominates) and connected (by
/// construction). Runs in `O(n · (n + m))`.
///
/// # Panics
///
/// Panics if `g` is disconnected (a CDS does not exist).
pub fn greedy_cds(g: &Graph) -> Vec<bool> {
    assert!(g.is_connected(), "CDS requires a connected graph");
    let mut member = greedy_mis(g);
    if g.n() == 0 {
        return member;
    }
    // Repeatedly find the closest pair of member-components and merge them
    // along a shortest path.
    loop {
        let comp = components(g, &member);
        let Some(max_comp) = comp.iter().filter_map(|c| *c).max() else {
            return member;
        };
        if max_comp == 0 {
            return member; // single component (labels are 0-based)
        }
        // BFS from all of component 0 to the nearest node of any other
        // component, tracking parents through non-member vertices.
        let mut dist = vec![u32::MAX; g.n()];
        let mut parent = vec![usize::MAX; g.n()];
        let mut queue = std::collections::VecDeque::new();
        for v in 0..g.n() {
            if comp[v] == Some(0) {
                dist[v] = 0;
                queue.push_back(v);
            }
        }
        let mut join = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = u;
                    if comp[v].is_some_and(|c| c != 0) {
                        join = Some(v);
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        let Some(mut v) = join else {
            return member; // should not happen on connected graphs
        };
        // Add the interior of the connecting path.
        while parent[v] != usize::MAX {
            member[v] = true;
            v = parent[v];
        }
        member[v] = true;
    }
}

/// Component labels of the subgraph induced by `member` (`None` for
/// non-members).
fn components(g: &Graph, member: &[bool]) -> Vec<Option<usize>> {
    let mut comp = vec![None; g.n()];
    let mut next = 0usize;
    for start in 0..g.n() {
        if !member[start] || comp[start].is_some() {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        comp[start] = Some(next);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if member[v] && comp[v].is_none() {
                    comp[v] = Some(next);
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Size statistics for comparing structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureStats {
    /// Number of members.
    pub size: usize,
    /// Maximum number of members adjacent to any vertex.
    pub max_member_degree: usize,
}

/// Computes [`StructureStats`] for a membership vector over `g`.
pub fn structure_stats(g: &Graph, member: &[bool]) -> StructureStats {
    StructureStats {
        size: member.iter().filter(|&&m| m).count(),
        max_member_degree: (0..g.n())
            .map(|v| g.neighbors(v).iter().filter(|&&u| member[u]).count())
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn greedy_mis_is_valid() {
        let g = path(7);
        let mis = greedy_mis(&g);
        for (u, v) in g.edges() {
            assert!(!(mis[u] && mis[v]));
        }
        for v in 0..7 {
            assert!(mis[v] || g.neighbors(v).iter().any(|&u| mis[u]));
        }
    }

    #[test]
    fn greedy_cds_is_connected_and_dominating() {
        let g = path(9);
        let cds = greedy_cds(&g);
        assert!(g.induced_connected(&cds));
        for v in 0..9 {
            assert!(cds[v] || g.neighbors(v).iter().any(|&u| cds[u]));
        }
    }

    #[test]
    fn greedy_cds_on_star_is_just_the_hub() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let cds = greedy_cds(&g);
        assert_eq!(cds, vec![true, false, false, false, false]);
    }

    #[test]
    fn cds_on_grid_like_graph() {
        // 3x3 king-less grid.
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < 3 {
                    g.add_edge(v, v + 3);
                }
            }
        }
        let cds = greedy_cds(&g);
        assert!(g.induced_connected(&cds));
        let stats = structure_stats(&g, &cds);
        assert!(stats.size < 9, "a CDS should be a strict subset here");
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn cds_rejects_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        greedy_cds(&g);
    }
}
