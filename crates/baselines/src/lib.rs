//! # radio-baselines — comparators for the unreliable-radio reproduction
//!
//! Baselines the paper references or implies, used by the experiment
//! harness for ablations and context:
//!
//! * [`broadcast`] — the Decay protocol (fast, adversary-fragile) and
//!   round-robin broadcast (slow, adversary-immune): the trade-off that
//!   motivates link detectors in the first place;
//! * [`naive_ccds`] — the "give every neighbor an exploration turn" CCDS,
//!   the `Θ(Δ)`-explorations foil for the banned list (E8);
//! * [`centralized`] — offline greedy MIS/CDS constructions as structure
//!   quality yardsticks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broadcast;
pub mod centralized;
pub mod naive_ccds;

pub use broadcast::{DecayBroadcast, Flood, RoundRobinBroadcast};
pub use naive_ccds::NaiveCcdsConfig;
