//! Execution traces and aggregate metrics.
//!
//! The engine always keeps cheap aggregate counters ([`ExecutionMetrics`]);
//! optionally it records a per-round [`Trace`] for debugging and for the
//! experiment harness's CSV/JSON exports.

use serde::{Deserialize, Serialize};

/// Per-round record of channel activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Global round number (first round is 1).
    pub round: u64,
    /// Number of nodes that broadcast.
    pub broadcasters: u32,
    /// Number of listeners that received a message.
    pub deliveries: u32,
    /// Number of listeners that experienced a collision (≥ 2 reachable
    /// broadcasters). Note processes themselves cannot see this — there is
    /// no collision detection; the trace is a referee-side view.
    pub collisions: u32,
    /// Number of unreliable edges the adversary activated.
    pub extra_edges: u32,
}

/// A sequence of per-round records.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Records in round order.
    pub rounds: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Serializes the trace to a JSON string (one object with a `rounds`
    /// array), for offline analysis.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (practically
    /// impossible for this plain data type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

/// Aggregate execution counters, always collected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Rounds executed so far.
    pub rounds: u64,
    /// Total broadcast actions.
    pub broadcasts: u64,
    /// Total successful deliveries (listener received a message).
    pub deliveries: u64,
    /// Total listener-side collisions.
    pub collisions: u64,
    /// Total bits across all broadcast messages.
    pub bits_broadcast: u64,
    /// Messages exceeding the configured bound `b` (should be 0 for a
    /// correctly chunking algorithm).
    pub oversize_messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_json() {
        let mut t = Trace::new();
        t.push(RoundRecord {
            round: 1,
            broadcasters: 2,
            deliveries: 1,
            collisions: 1,
            extra_edges: 0,
        });
        let s = t.to_json().unwrap();
        let back: Trace = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 1);
        assert!(!back.is_empty());
    }
}
