//! Reach-set adversaries: who controls the unreliable edges each round.
//!
//! In every round the adversary chooses a *reach set* consisting of all of
//! `E` plus an arbitrary subset of `E' \ E`; those links behave reliably for
//! the round. The adversary in this module is adaptive — it sees the current
//! broadcasters before choosing — which is exactly the power the paper's
//! lower-bound constructions exploit (Lemma 7.2).
//!
//! Implementations range from benign ([`ReliableOnly`], which renders `G'`
//! inert) to worst-case ([`Collider`], which uses unreliable edges to create
//! collisions wherever a clean delivery was about to happen;
//! [`CliqueIsolator`], the Lemma 7.2 adversary that prevents inter-clique
//! communication on the two-clique network).

use crate::network::DualGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses, each round, which unreliable edges (`E' \ E`) join the reach set.
///
/// The returned edges are filtered by the engine: anything not in `E' \ E`
/// is ignored defensively, so implementations may over-approximate.
pub trait Adversary {
    /// Select this round's extra (unreliable) reach edges.
    ///
    /// `broadcasting[v]` reports whether node `v` broadcasts this round —
    /// the adversary is adaptive. Edges are pushed into `out` (cleared by
    /// the caller) as unordered pairs.
    fn extra_edges(
        &mut self,
        round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    );

    /// Short name for traces and experiment tables.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

impl Adversary for Box<dyn Adversary> {
    fn extra_edges(
        &mut self,
        round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        (**self).extra_edges(round, net, broadcasting, out);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The benign adversary: unreliable edges never deliver. The execution
/// behaves exactly like the classic radio network on `G`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableOnly;

impl Adversary for ReliableOnly {
    fn extra_edges(
        &mut self,
        _round: u64,
        _net: &DualGraph,
        _broadcasting: &[bool],
        _out: &mut Vec<(usize, usize)>,
    ) {
    }

    fn name(&self) -> &'static str {
        "reliable-only"
    }
}

/// Every unreliable edge is always in the reach set: the execution behaves
/// like the classic radio network on `G'`. Maximizes contention (every
/// `G'`-neighbor can collide with you) without being adaptive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllUnreliable;

impl Adversary for AllUnreliable {
    fn extra_edges(
        &mut self,
        _round: u64,
        net: &DualGraph,
        _broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        out.extend(net.unreliable_edges());
    }

    fn name(&self) -> &'static str {
        "all-unreliable"
    }
}

/// Each unreliable edge joins the reach set independently with probability
/// `p` each round — the "fading links" regime observed in deployments.
#[derive(Debug, Clone)]
pub struct RandomUnreliable {
    p: f64,
    rng: StdRng,
}

impl RandomUnreliable {
    /// Creates the adversary with per-edge, per-round probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        RandomUnreliable {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomUnreliable {
    fn extra_edges(
        &mut self,
        _round: u64,
        net: &DualGraph,
        _broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        let edges = net.unreliable_edge_list();
        if self.p <= 0.0 {
            return;
        }
        if self.p >= 1.0 {
            out.extend_from_slice(edges);
            return;
        }
        if self.p < 0.25 {
            // Geometric skip sampling: draw the gap to the next activated
            // edge — one RNG call (plus an `ln`) per *activated* edge,
            // a large win when activations are sparse. The stream differs
            // from the coin-per-edge loop but is equally deterministic per
            // seed.
            let ln_q = (1.0 - self.p).ln();
            let mut i = 0usize;
            loop {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                // Geometric(p) number of skipped edges; 1 - u ∈ (0, 1].
                let skip = ((1.0 - u).ln() / ln_q) as usize;
                i = i.saturating_add(skip);
                if i >= edges.len() {
                    return;
                }
                out.push(edges[i]);
                i += 1;
            }
        }
        use rand::RngCore;
        if self.p == 0.5 {
            // The common experiment setting: every bit of a random word is
            // an exact Bernoulli(½) coin, so one RNG call covers 64 edges.
            for chunk in edges.chunks(64) {
                let mut word = self.rng.next_u64();
                for &e in chunk {
                    if word & 1 == 1 {
                        out.push(e);
                    }
                    word >>= 1;
                }
            }
            return;
        }
        // Dense activation: a coin per edge is cheaper than a logarithm
        // per activated edge. Hoist the 53-bit acceptance threshold out of
        // the loop (same acceptance rule as `Rng::gen_bool`).
        let threshold = (self.p * (1u64 << 53) as f64) as u64;
        for &e in edges {
            if (self.rng.next_u64() >> 11) < threshold {
                out.push(e);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random-unreliable"
    }
}

/// The adaptive collision adversary.
///
/// For each listening node that would receive a clean message over `E`
/// (exactly one reliable broadcaster in range), it looks for an unreliable
/// edge from *another* broadcaster and activates it, turning the clean
/// reception into a collision. This is the behaviour that breaks naive
/// exponential contention-reduction schemes in the dual graph model, and the
/// strongest general-purpose adversary short of problem-specific
/// constructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Collider;

impl Adversary for Collider {
    fn extra_edges(
        &mut self,
        _round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        for v in 0..net.n() {
            if broadcasting[v] {
                continue;
            }
            let reliable_hits = net
                .g_csr()
                .neighbors(v)
                .iter()
                .filter(|&&u| broadcasting[u as usize])
                .count();
            if reliable_hits != 1 {
                continue;
            }
            // Find an unreliable edge from a different broadcaster. The
            // unreliable CSR layer is exactly E' \ E, so no membership
            // re-check against G is needed.
            if let Some(&u) = net
                .unreliable_csr()
                .neighbors(v)
                .iter()
                .find(|&&u| broadcasting[u as usize])
            {
                out.push((u as usize, v));
            }
        }
    }

    fn name(&self) -> &'static str {
        "collider"
    }
}

/// Bursty unreliable links: a Gilbert–Elliott two-state Markov chain per
/// edge.
///
/// Measurement studies (e.g. the β-factor work the paper cites) show real
/// unreliable links are *bursty*: they deliver in runs and fail in runs
/// rather than independently per packet. Each unreliable edge here is in a
/// `Good` (delivering) or `Bad` (silent) state, flipping with probabilities
/// `p_gb` (Good→Bad) and `p_bg` (Bad→Good) each round; the stationary
/// delivery rate is `p_bg / (p_gb + p_bg)` with mean burst lengths `1/p_gb`
/// and `1/p_bg`.
#[derive(Debug, Clone)]
pub struct BurstyUnreliable {
    p_gb: f64,
    p_bg: f64,
    rng: StdRng,
    /// Edge states, lazily initialized on first use (keyed by the network's
    /// unreliable edge order).
    states: Vec<bool>,
    initialized: bool,
}

impl BurstyUnreliable {
    /// Creates the adversary with transition probabilities `p_gb`
    /// (Good→Bad) and `p_bg` (Bad→Good).
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb), "p_gb out of range");
        assert!((0.0..=1.0).contains(&p_bg), "p_bg out of range");
        BurstyUnreliable {
            p_gb,
            p_bg,
            rng: StdRng::seed_from_u64(seed),
            states: Vec::new(),
            initialized: false,
        }
    }

    /// The long-run fraction of rounds each edge delivers.
    pub fn stationary_delivery_rate(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            1.0
        } else {
            self.p_bg / (self.p_gb + self.p_bg)
        }
    }
}

impl Adversary for BurstyUnreliable {
    fn extra_edges(
        &mut self,
        _round: u64,
        net: &DualGraph,
        _broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        // The network precomputes the unreliable edge list, so per-round
        // work is allocation-free (modulo the one-time state vector).
        let edges = net.unreliable_edge_list();
        if !self.initialized || self.states.len() != edges.len() {
            // Start each edge at its stationary distribution.
            let rate = self.stationary_delivery_rate();
            self.states = (0..edges.len()).map(|_| self.rng.gen_bool(rate)).collect();
            self.initialized = true;
        }
        for (state, &edge) in self.states.iter_mut().zip(edges) {
            let flip = if *state { self.p_gb } else { self.p_bg };
            if self.rng.gen_bool(flip) {
                *state = !*state;
            }
            if *state {
                out.push(edge);
            }
        }
    }

    fn name(&self) -> &'static str {
        "bursty-unreliable"
    }
}

/// The Lemma 7.2 adversary for the two-clique network.
///
/// Keeps the two cliques informationally isolated: whenever two or more
/// nodes broadcast anywhere in the network, it activates enough unreliable
/// edges that *every* listener experiences a collision; when at most one
/// node broadcasts, it adds nothing, so the lone message is confined to the
/// broadcaster's `G`-neighborhood (its own clique, unless the broadcaster is
/// a bridge endpoint). This is precisely the strategy the reduction proof
/// uses to forbid inter-clique communication until a bridge endpoint
/// broadcasts alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliqueIsolator;

impl Adversary for CliqueIsolator {
    fn extra_edges(
        &mut self,
        _round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        if broadcasting.iter().filter(|&&b| b).count() < 2 {
            return;
        }
        // For every listener, ensure at least two broadcasters reach it by
        // activating unreliable edges from broadcasters as needed. Scanning
        // the listener's unreliable CSR row visits exactly the candidate
        // broadcasters in ascending order — same choices as enumerating all
        // broadcasters and testing edge membership, without materializing
        // the broadcaster list.
        for v in 0..net.n() {
            if broadcasting[v] {
                continue;
            }
            let mut reach = net
                .g_csr()
                .neighbors(v)
                .iter()
                .filter(|&&u| broadcasting[u as usize])
                .count();
            if reach >= 2 {
                continue;
            }
            for &u in net.unreliable_csr().neighbors(v) {
                if reach >= 2 {
                    break;
                }
                if broadcasting[u as usize] {
                    out.push((u as usize, v));
                    reach += 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "clique-isolator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn net_with_chord() -> DualGraph {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        gp.add_edge(0, 3);
        DualGraph::new(g, gp).unwrap()
    }

    #[test]
    fn reliable_only_adds_nothing() {
        let net = net_with_chord();
        let mut out = Vec::new();
        ReliableOnly.extra_edges(1, &net, &[true, false, false, false], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn all_unreliable_adds_everything() {
        let net = net_with_chord();
        let mut out = Vec::new();
        AllUnreliable.extra_edges(1, &net, &[false; 4], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 2), (0, 3)]);
    }

    #[test]
    fn random_respects_probability_extremes() {
        let net = net_with_chord();
        let mut out = Vec::new();
        RandomUnreliable::new(0.0, 9).extra_edges(1, &net, &[false; 4], &mut out);
        assert!(out.is_empty());
        RandomUnreliable::new(1.0, 9).extra_edges(1, &net, &[false; 4], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn collider_breaks_clean_reception() {
        let net = net_with_chord();
        // Nodes 1 and 3 broadcast. Node 2 hears both over E (collision
        // already) -> nothing added for it. Node 0 hears only node 1 over E;
        // the collider activates the unreliable edge (0, 3) wait — (0,3) is
        // from broadcaster 3 to listener 0, turning 0's clean reception into
        // a collision.
        let mut out = Vec::new();
        Collider.extra_edges(1, &net, &[false, true, false, true], &mut out);
        assert_eq!(out.len(), 1);
        let (a, b) = out[0];
        assert_eq!((a.min(b), a.max(b)), (0, 3));
    }

    #[test]
    fn collider_leaves_collisions_alone() {
        let net = net_with_chord();
        // Only node 1 broadcasts: nodes 0 and 2 get clean receptions, but no
        // *other* broadcaster exists, so nothing can be activated.
        let mut out = Vec::new();
        Collider.extra_edges(1, &net, &[false, true, false, false], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bursty_edges_have_runs() {
        let net = net_with_chord();
        let mut adv = BurstyUnreliable::new(0.05, 0.05, 3);
        assert!((adv.stationary_delivery_rate() - 0.5).abs() < 1e-12);
        // Count state flips for one edge across rounds: with p = 0.05 the
        // edge should persist in its state most rounds (bursts), far fewer
        // flips than a per-round Bernoulli coin would produce.
        let mut present_last = None;
        let mut flips = 0;
        let mut present_total = 0;
        let rounds = 2000;
        let mut out = Vec::new();
        for r in 0..rounds {
            out.clear();
            adv.extra_edges(r, &net, &[false; 4], &mut out);
            let present = out.contains(&(0, 2));
            if present {
                present_total += 1;
            }
            if let Some(last) = present_last {
                if last != present {
                    flips += 1;
                }
            }
            present_last = Some(present);
        }
        // Stationary rate ~0.5; expected flips ~ rounds * 0.05 * 2 = 200.
        assert!(
            (600..1400).contains(&present_total),
            "rate off: {present_total}"
        );
        assert!(flips < 400, "too many flips for bursty links: {flips}");
        assert!(flips > 20, "suspiciously static: {flips}");
    }

    #[test]
    fn bursty_extremes() {
        let net = net_with_chord();
        let mut out = Vec::new();
        // p_gb = 1, p_bg = 0: everything decays to Bad and stays there.
        let mut adv = BurstyUnreliable::new(1.0, 0.0, 1);
        for r in 0..10 {
            out.clear();
            adv.extra_edges(r, &net, &[false; 4], &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn isolator_quiet_when_single_broadcaster() {
        let net = net_with_chord();
        let mut out = Vec::new();
        CliqueIsolator.extra_edges(1, &net, &[true, false, false, false], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn isolator_collides_everyone_when_two_broadcast() {
        let net = net_with_chord();
        let mut out = Vec::new();
        // Nodes 2 and 3 broadcast; node 0 hears neither over E... node 0's E
        // neighbors: {1}. So reach 0; isolator activates (2,0)? (0,2) is
        // unreliable and 2 broadcasts; (0,3) also. It should add both to
        // reach 2.
        CliqueIsolator.extra_edges(1, &net, &[false, false, true, true], &mut out);
        let touching_zero = out.iter().filter(|&&(a, b)| a == 0 || b == 0).count();
        assert_eq!(touching_zero, 2);
    }
}
