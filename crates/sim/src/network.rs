//! The dual graph network `(G, G')` of the paper's model section.
//!
//! A network consists of two undirected graphs on the same vertex set: `G =
//! (V, E)` of *reliable* links (always deliver, absent collisions) and `G' =
//! (V, E')` of *all* links (`E ⊆ E'`); the edges of `E' \ E` are
//! *unreliable* and deliver only when the round's adversary places them in
//! the reach set. `G` must be connected.
//!
//! When nodes carry a planar embedding, the model additionally requires a
//! constant `d ≥ 1` such that `dist(u, v) ≤ 1 ⇒ (u, v) ∈ E` and `(u, v) ∈ E'
//! ⇒ dist(u, v) ≤ d` — a generalization of unit disk graphs with a gray zone
//! of unpredictable connectivity.

use crate::geometry::Point;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Errors from constructing or validating a [`DualGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// `E ⊄ E'`: some reliable edge is missing from the unreliable layer.
    ReliableNotSubset {
        /// A witness edge in `E \ E'`.
        edge: (usize, usize),
    },
    /// The reliable graph `G` is disconnected (the model assumes connectivity).
    ReliableDisconnected,
    /// Vertex counts of the two layers differ.
    LayerSizeMismatch {
        /// `|V|` of `G`.
        g: usize,
        /// `|V|` of `G'`.
        g_prime: usize,
    },
    /// The number of positions differs from the number of vertices.
    PositionCountMismatch {
        /// Number of positions provided.
        positions: usize,
        /// Number of vertices.
        n: usize,
    },
    /// Two nodes are within distance 1 but not `E`-adjacent.
    MissingShortEdge {
        /// The offending pair.
        pair: (usize, usize),
        /// Their distance.
        dist: f64,
    },
    /// An `E'` edge spans more than distance `d`.
    EdgeTooLong {
        /// The offending edge.
        edge: (usize, usize),
        /// Its length.
        dist: f64,
        /// The configured maximum `d`.
        d: f64,
    },
    /// The gray-zone constant was invalid (`d < 1` or not finite).
    InvalidGrayZone {
        /// The provided constant.
        d: f64,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::ReliableNotSubset { edge } => {
                write!(f, "reliable edge {edge:?} missing from G'")
            }
            NetworkError::ReliableDisconnected => write!(f, "reliable graph G is disconnected"),
            NetworkError::LayerSizeMismatch { g, g_prime } => {
                write!(f, "layer sizes differ: |V(G)| = {g}, |V(G')| = {g_prime}")
            }
            NetworkError::PositionCountMismatch { positions, n } => {
                write!(f, "{positions} positions for {n} vertices")
            }
            NetworkError::MissingShortEdge { pair, dist } => {
                write!(f, "nodes {pair:?} at distance {dist:.3} <= 1 lack a reliable edge")
            }
            NetworkError::EdgeTooLong { edge, dist, d } => {
                write!(f, "edge {edge:?} has length {dist:.3} > d = {d}")
            }
            NetworkError::InvalidGrayZone { d } => write!(f, "invalid gray zone constant d = {d}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A dual graph radio network `(G, G')`, optionally embedded in the plane.
///
/// # Examples
///
/// ```
/// use radio_sim::{DualGraph, Graph};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let mut gp = g.clone();
/// gp.add_edge(0, 2); // one unreliable link
/// let net = DualGraph::new(g, gp)?;
/// assert_eq!(net.n(), 3);
/// assert!(net.is_unreliable_edge(0, 2));
/// assert!(!net.is_unreliable_edge(0, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualGraph {
    g: Graph,
    g_prime: Graph,
    positions: Option<Vec<Point>>,
    d: f64,
}

impl DualGraph {
    /// Builds a dual graph without an embedding.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the layers have different vertex counts,
    /// `E ⊄ E'`, or `G` is disconnected.
    pub fn new(g: Graph, g_prime: Graph) -> Result<Self, NetworkError> {
        Self::validate_layers(&g, &g_prime)?;
        Ok(DualGraph {
            g,
            g_prime,
            positions: None,
            d: 1.0,
        })
    }

    /// Builds an embedded dual graph and checks the geometric constraints:
    /// every pair within distance 1 is `E`-adjacent, and every `E'` edge has
    /// length at most `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on any violated model constraint.
    pub fn with_embedding(
        g: Graph,
        g_prime: Graph,
        positions: Vec<Point>,
        d: f64,
    ) -> Result<Self, NetworkError> {
        if !(d.is_finite() && d >= 1.0) {
            return Err(NetworkError::InvalidGrayZone { d });
        }
        Self::validate_layers(&g, &g_prime)?;
        if positions.len() != g.n() {
            return Err(NetworkError::PositionCountMismatch {
                positions: positions.len(),
                n: g.n(),
            });
        }
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let dist = positions[u].dist(positions[v]);
                if dist <= 1.0 && !g.has_edge(u, v) {
                    return Err(NetworkError::MissingShortEdge { pair: (u, v), dist });
                }
            }
        }
        for (u, v) in g_prime.edges() {
            let dist = positions[u].dist(positions[v]);
            if dist > d + 1e-9 {
                return Err(NetworkError::EdgeTooLong { edge: (u, v), dist, d });
            }
        }
        Ok(DualGraph {
            g,
            g_prime,
            positions: Some(positions),
            d,
        })
    }

    /// The classic radio network model: `G = G'` (no unreliable links).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ReliableDisconnected`] if `g` is disconnected.
    pub fn classic(g: Graph) -> Result<Self, NetworkError> {
        let gp = g.clone();
        Self::new(g, gp)
    }

    fn validate_layers(g: &Graph, g_prime: &Graph) -> Result<(), NetworkError> {
        if g.n() != g_prime.n() {
            return Err(NetworkError::LayerSizeMismatch {
                g: g.n(),
                g_prime: g_prime.n(),
            });
        }
        if let Some(edge) = g.edges().find(|&(u, v)| !g_prime.has_edge(u, v)) {
            return Err(NetworkError::ReliableNotSubset { edge });
        }
        if !g.is_connected() {
            return Err(NetworkError::ReliableDisconnected);
        }
        Ok(())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The reliable layer `G`.
    #[inline]
    pub fn g(&self) -> &Graph {
        &self.g
    }

    /// The full layer `G'` (reliable plus unreliable links).
    #[inline]
    pub fn g_prime(&self) -> &Graph {
        &self.g_prime
    }

    /// Maximum degree `Δ` in the reliable graph.
    #[inline]
    pub fn max_degree_g(&self) -> usize {
        self.g.max_degree()
    }

    /// Maximum degree `Δ'` in `G'`.
    #[inline]
    pub fn max_degree_g_prime(&self) -> usize {
        self.g_prime.max_degree()
    }

    /// Whether `{u, v}` is an unreliable link (in `E' \ E`).
    #[inline]
    pub fn is_unreliable_edge(&self, u: usize, v: usize) -> bool {
        self.g_prime.has_edge(u, v) && !self.g.has_edge(u, v)
    }

    /// Iterates the unreliable edges `E' \ E` as pairs with `u < v`.
    pub fn unreliable_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.g_prime
            .edges()
            .filter(move |&(u, v)| !self.g.has_edge(u, v))
    }

    /// Number of unreliable edges.
    pub fn unreliable_edge_count(&self) -> usize {
        self.g_prime.edge_count() - self.g.edge_count()
    }

    /// Node positions if the network is embedded.
    #[inline]
    pub fn positions(&self) -> Option<&[Point]> {
        self.positions.as_deref()
    }

    /// The gray-zone constant `d` (only meaningful for embedded networks;
    /// `1.0` otherwise).
    #[inline]
    pub fn gray_zone(&self) -> f64 {
        self.d
    }

    /// Whether the network is the classic model (`G = G'`).
    pub fn is_classic(&self) -> bool {
        self.unreliable_edge_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn valid_dual_graph() {
        let g = path(4);
        let mut gp = g.clone();
        gp.add_edge(0, 3);
        let net = DualGraph::new(g, gp).unwrap();
        assert_eq!(net.unreliable_edge_count(), 1);
        assert!(net.is_unreliable_edge(0, 3));
        assert_eq!(net.unreliable_edges().collect::<Vec<_>>(), vec![(0, 3)]);
        assert!(!net.is_classic());
    }

    #[test]
    fn rejects_non_subset() {
        let g = path(3);
        let gp = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        assert_eq!(
            DualGraph::new(g, gp).unwrap_err(),
            NetworkError::ReliableNotSubset { edge: (1, 2) }
        );
    }

    #[test]
    fn rejects_disconnected_g() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let gp = Graph::complete(4);
        assert_eq!(
            DualGraph::new(g, gp).unwrap_err(),
            NetworkError::ReliableDisconnected
        );
    }

    #[test]
    fn rejects_size_mismatch() {
        let g = path(3);
        let gp = Graph::complete(4);
        assert!(matches!(
            DualGraph::new(g, gp),
            Err(NetworkError::LayerSizeMismatch { .. })
        ));
    }

    #[test]
    fn classic_has_no_unreliable_edges() {
        let net = DualGraph::classic(path(5)).unwrap();
        assert!(net.is_classic());
        assert_eq!(net.unreliable_edge_count(), 0);
    }

    #[test]
    fn embedding_constraints() {
        // Two nodes at distance 0.5 must share a reliable edge.
        let g = Graph::new(2);
        let gp = Graph::new(2);
        let pos = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        // g is "connected" only for n<=1; a 2-node edgeless graph is
        // disconnected, so that error fires first — use an edge in G' only.
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert_eq!(err, NetworkError::ReliableDisconnected);

        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let gp = g.clone();
        let pos = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert!(matches!(err, NetworkError::EdgeTooLong { .. }));
    }

    #[test]
    fn embedding_missing_short_edge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let gp = g.clone();
        // Nodes 0 and 2 are within distance 1 but not adjacent in G.
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.0),
        ];
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert!(matches!(err, NetworkError::MissingShortEdge { .. }));
    }

    #[test]
    fn rejects_invalid_gray_zone() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let gp = g.clone();
        let pos = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        assert!(matches!(
            DualGraph::with_embedding(g, gp, pos, 0.5),
            Err(NetworkError::InvalidGrayZone { .. })
        ));
    }
}
