//! The dual graph network `(G, G')` of the paper's model section.
//!
//! A network consists of two undirected graphs on the same vertex set: `G =
//! (V, E)` of *reliable* links (always deliver, absent collisions) and `G' =
//! (V, E')` of *all* links (`E ⊆ E'`); the edges of `E' \ E` are
//! *unreliable* and deliver only when the round's adversary places them in
//! the reach set. `G` must be connected.
//!
//! When nodes carry a planar embedding, the model additionally requires a
//! constant `d ≥ 1` such that `dist(u, v) ≤ 1 ⇒ (u, v) ∈ E` and `(u, v) ∈ E'
//! ⇒ dist(u, v) ≤ d` — a generalization of unit disk graphs with a gray zone
//! of unpredictable connectivity.

use crate::geometry::Point;
use crate::graph::{BitRows, CsrGraph, Graph};
use serde::value::{field, DeError, Value};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Errors from constructing or validating a [`DualGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// `E ⊄ E'`: some reliable edge is missing from the unreliable layer.
    ReliableNotSubset {
        /// A witness edge in `E \ E'`.
        edge: (usize, usize),
    },
    /// The reliable graph `G` is disconnected (the model assumes connectivity).
    ReliableDisconnected,
    /// Vertex counts of the two layers differ.
    LayerSizeMismatch {
        /// `|V|` of `G`.
        g: usize,
        /// `|V|` of `G'`.
        g_prime: usize,
    },
    /// The number of positions differs from the number of vertices.
    PositionCountMismatch {
        /// Number of positions provided.
        positions: usize,
        /// Number of vertices.
        n: usize,
    },
    /// Two nodes are within distance 1 but not `E`-adjacent.
    MissingShortEdge {
        /// The offending pair.
        pair: (usize, usize),
        /// Their distance.
        dist: f64,
    },
    /// An `E'` edge spans more than distance `d`.
    EdgeTooLong {
        /// The offending edge.
        edge: (usize, usize),
        /// Its length.
        dist: f64,
        /// The configured maximum `d`.
        d: f64,
    },
    /// The gray-zone constant was invalid (`d < 1` or not finite).
    InvalidGrayZone {
        /// The provided constant.
        d: f64,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::ReliableNotSubset { edge } => {
                write!(f, "reliable edge {edge:?} missing from G'")
            }
            NetworkError::ReliableDisconnected => write!(f, "reliable graph G is disconnected"),
            NetworkError::LayerSizeMismatch { g, g_prime } => {
                write!(f, "layer sizes differ: |V(G)| = {g}, |V(G')| = {g_prime}")
            }
            NetworkError::PositionCountMismatch { positions, n } => {
                write!(f, "{positions} positions for {n} vertices")
            }
            NetworkError::MissingShortEdge { pair, dist } => {
                write!(
                    f,
                    "nodes {pair:?} at distance {dist:.3} <= 1 lack a reliable edge"
                )
            }
            NetworkError::EdgeTooLong { edge, dist, d } => {
                write!(f, "edge {edge:?} has length {dist:.3} > d = {d}")
            }
            NetworkError::InvalidGrayZone { d } => write!(f, "invalid gray zone constant d = {d}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A dual graph radio network `(G, G')`, optionally embedded in the plane.
///
/// Construction freezes both layers into flat CSR adjacency
/// ([`CsrGraph`]) and precomputes the unreliable difference `E' \ E` as
/// both a CSR layer and a flat edge list — the forms the engine's
/// per-round hot path consumes without further allocation or `O(log deg)`
/// membership searches. A classic network (`G = G'`) stores the reliable
/// layer once.
///
/// # Examples
///
/// ```
/// use radio_sim::{DualGraph, Graph};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let mut gp = g.clone();
/// gp.add_edge(0, 2); // one unreliable link
/// let net = DualGraph::new(g, gp)?;
/// assert_eq!(net.n(), 3);
/// assert!(net.is_unreliable_edge(0, 2));
/// assert!(!net.is_unreliable_edge(0, 1));
/// assert_eq!(net.unreliable_csr().neighbors(0), &[2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DualGraph {
    g: Graph,
    /// `None` for classic networks (`G' = G`), avoiding a full duplicate
    /// adjacency; [`DualGraph::g_prime`] falls back to `g`.
    g_prime: Option<Graph>,
    positions: Option<Vec<Point>>,
    d: f64,
    // Frozen hot-path forms, built once at construction.
    csr_g: CsrGraph,
    csr_g_prime: Option<CsrGraph>,
    csr_unreliable: CsrGraph,
    unreliable_list: Vec<(usize, usize)>,
    /// Word-packed reliable-layer adjacency for the bit-parallel delivery
    /// engine. Built on first use (rows cost `n·⌈n/64⌉` words, which
    /// scalar-only runs should never pay); one layer suffices because the
    /// adversary's unreliable picks arrive as an edge list each round.
    bit_g: OnceLock<BitRows>,
}

impl DualGraph {
    /// Builds a dual graph without an embedding.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the layers have different vertex counts,
    /// `E ⊄ E'`, or `G` is disconnected.
    pub fn new(g: Graph, g_prime: Graph) -> Result<Self, NetworkError> {
        Self::validate_layers(&g, &g_prime)?;
        Ok(Self::assemble(g, Some(g_prime), None, 1.0))
    }

    /// Freezes the CSR forms and the unreliable edge list (layers already
    /// validated).
    fn assemble(g: Graph, g_prime: Option<Graph>, positions: Option<Vec<Point>>, d: f64) -> Self {
        let n = g.n();
        let csr_g = g.to_csr();
        // Normalize G' = G to the classic representation.
        let g_prime = g_prime.filter(|gp| gp.edge_count() != g.edge_count());
        let (csr_g_prime, csr_unreliable, unreliable_list) = match &g_prime {
            None => (None, Graph::new(n).to_csr(), Vec::new()),
            Some(gp) => {
                let mut unreliable = Graph::new(n);
                for (u, v) in gp.edges() {
                    if !g.has_edge(u, v) {
                        unreliable.add_edge(u, v);
                    }
                }
                let list = unreliable.edges().collect();
                (Some(gp.to_csr()), unreliable.to_csr(), list)
            }
        };
        DualGraph {
            g,
            g_prime,
            positions,
            d,
            csr_g,
            csr_g_prime,
            csr_unreliable,
            unreliable_list,
            bit_g: OnceLock::new(),
        }
    }

    /// Builds an embedded dual graph and checks the geometric constraints:
    /// every pair within distance 1 is `E`-adjacent, and every `E'` edge has
    /// length at most `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on any violated model constraint.
    pub fn with_embedding(
        g: Graph,
        g_prime: Graph,
        positions: Vec<Point>,
        d: f64,
    ) -> Result<Self, NetworkError> {
        if !(d.is_finite() && d >= 1.0) {
            return Err(NetworkError::InvalidGrayZone { d });
        }
        Self::validate_layers(&g, &g_prime)?;
        if positions.len() != g.n() {
            return Err(NetworkError::PositionCountMismatch {
                positions: positions.len(),
                n: g.n(),
            });
        }
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let dist = positions[u].dist(positions[v]);
                if dist <= 1.0 && !g.has_edge(u, v) {
                    return Err(NetworkError::MissingShortEdge { pair: (u, v), dist });
                }
            }
        }
        for (u, v) in g_prime.edges() {
            let dist = positions[u].dist(positions[v]);
            if dist > d + 1e-9 {
                return Err(NetworkError::EdgeTooLong {
                    edge: (u, v),
                    dist,
                    d,
                });
            }
        }
        Ok(Self::assemble(g, Some(g_prime), Some(positions), d))
    }

    /// The classic radio network model: `G = G'` (no unreliable links).
    ///
    /// The reliable layer is stored once — no duplicate adjacency is built.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ReliableDisconnected`] if `g` is disconnected.
    pub fn classic(g: Graph) -> Result<Self, NetworkError> {
        if !g.is_connected() {
            return Err(NetworkError::ReliableDisconnected);
        }
        Ok(Self::assemble(g, None, None, 1.0))
    }

    fn validate_layers(g: &Graph, g_prime: &Graph) -> Result<(), NetworkError> {
        if g.n() != g_prime.n() {
            return Err(NetworkError::LayerSizeMismatch {
                g: g.n(),
                g_prime: g_prime.n(),
            });
        }
        if let Some(edge) = g.edges().find(|&(u, v)| !g_prime.has_edge(u, v)) {
            return Err(NetworkError::ReliableNotSubset { edge });
        }
        if !g.is_connected() {
            return Err(NetworkError::ReliableDisconnected);
        }
        Ok(())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The reliable layer `G`.
    #[inline]
    pub fn g(&self) -> &Graph {
        &self.g
    }

    /// The full layer `G'` (reliable plus unreliable links). For a classic
    /// network this is the reliable layer itself.
    #[inline]
    pub fn g_prime(&self) -> &Graph {
        self.g_prime.as_ref().unwrap_or(&self.g)
    }

    /// The reliable layer as frozen CSR adjacency (the engine's hot-path
    /// form).
    #[inline]
    pub fn g_csr(&self) -> &CsrGraph {
        &self.csr_g
    }

    /// The full layer `G'` as frozen CSR adjacency.
    #[inline]
    pub fn g_prime_csr(&self) -> &CsrGraph {
        self.csr_g_prime.as_ref().unwrap_or(&self.csr_g)
    }

    /// The unreliable difference `E' \ E` as frozen CSR adjacency (empty
    /// rows for a classic network).
    #[inline]
    pub fn unreliable_csr(&self) -> &CsrGraph {
        &self.csr_unreliable
    }

    /// The reliable layer as word-packed bitmask rows ([`BitRows`]), the
    /// form `Engine::step_bitset` delivers from. Built from the CSR on
    /// first call and cached for the network's lifetime, so trials that
    /// share a network also share one build.
    pub fn g_bit_rows(&self) -> &BitRows {
        self.bit_g.get_or_init(|| BitRows::from_csr(&self.csr_g))
    }

    /// The unreliable edges as a precomputed flat list of pairs `u < v`.
    #[inline]
    pub fn unreliable_edge_list(&self) -> &[(usize, usize)] {
        &self.unreliable_list
    }

    /// Maximum degree `Δ` in the reliable graph.
    #[inline]
    pub fn max_degree_g(&self) -> usize {
        self.g.max_degree()
    }

    /// Maximum degree `Δ'` in `G'`.
    #[inline]
    pub fn max_degree_g_prime(&self) -> usize {
        self.g_prime().max_degree()
    }

    /// Whether `{u, v}` is an unreliable link (in `E' \ E`).
    #[inline]
    pub fn is_unreliable_edge(&self, u: usize, v: usize) -> bool {
        self.csr_unreliable.has_edge(u, v)
    }

    /// Iterates the unreliable edges `E' \ E` as pairs with `u < v`.
    pub fn unreliable_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.unreliable_list.iter().copied()
    }

    /// Number of unreliable edges.
    pub fn unreliable_edge_count(&self) -> usize {
        self.unreliable_list.len()
    }

    /// Node positions if the network is embedded.
    #[inline]
    pub fn positions(&self) -> Option<&[Point]> {
        self.positions.as_deref()
    }

    /// The gray-zone constant `d` (only meaningful for embedded networks;
    /// `1.0` otherwise).
    #[inline]
    pub fn gray_zone(&self) -> f64 {
        self.d
    }

    /// Whether the network is the classic model (`G = G'`).
    pub fn is_classic(&self) -> bool {
        self.unreliable_edge_count() == 0
    }
}

// Serialization carries only the defining data (layers, embedding, gray
// zone); the CSR caches are rebuilt — and the model constraints revalidated
// — on deserialization.
impl Serialize for DualGraph {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("g".to_string(), self.g.to_value()),
            ("g_prime".to_string(), self.g_prime.to_value()),
            ("positions".to_string(), self.positions.to_value()),
            ("d".to_string(), self.d.to_value()),
        ])
    }
}

impl Deserialize for DualGraph {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        let g: Graph = Deserialize::from_value(field(fields, "g"))?;
        let g_prime: Option<Graph> = Deserialize::from_value(field(fields, "g_prime"))?;
        let positions: Option<Vec<Point>> = Deserialize::from_value(field(fields, "positions"))?;
        let d: f64 = Deserialize::from_value(field(fields, "d"))?;
        let net = match (g_prime, positions) {
            (None, None) => DualGraph::classic(g),
            (None, Some(pos)) => {
                let gp = g.clone();
                DualGraph::with_embedding(g, gp, pos, d)
            }
            (Some(gp), None) => DualGraph::new(g, gp),
            (Some(gp), Some(pos)) => DualGraph::with_embedding(g, gp, pos, d),
        }
        .map_err(|e| DeError::msg(format!("invalid dual graph: {e}")))?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn valid_dual_graph() {
        let g = path(4);
        let mut gp = g.clone();
        gp.add_edge(0, 3);
        let net = DualGraph::new(g, gp).unwrap();
        assert_eq!(net.unreliable_edge_count(), 1);
        assert!(net.is_unreliable_edge(0, 3));
        assert_eq!(net.unreliable_edges().collect::<Vec<_>>(), vec![(0, 3)]);
        assert!(!net.is_classic());
    }

    #[test]
    fn rejects_non_subset() {
        let g = path(3);
        let gp = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        assert_eq!(
            DualGraph::new(g, gp).unwrap_err(),
            NetworkError::ReliableNotSubset { edge: (1, 2) }
        );
    }

    #[test]
    fn rejects_disconnected_g() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let gp = Graph::complete(4);
        assert_eq!(
            DualGraph::new(g, gp).unwrap_err(),
            NetworkError::ReliableDisconnected
        );
    }

    #[test]
    fn rejects_size_mismatch() {
        let g = path(3);
        let gp = Graph::complete(4);
        assert!(matches!(
            DualGraph::new(g, gp),
            Err(NetworkError::LayerSizeMismatch { .. })
        ));
    }

    #[test]
    fn bit_rows_lazily_built_and_match_g() {
        let g = path(5);
        let mut gp = g.clone();
        gp.add_edge(0, 4);
        let net = DualGraph::new(g, gp).unwrap();
        let rows = net.g_bit_rows();
        assert_eq!(rows.n(), 5);
        for u in 0..5 {
            for v in 0..5 {
                let bit = rows.row(u)[v >> 6] >> (v & 63) & 1 == 1;
                assert_eq!(bit, net.g().has_edge(u, v), "bit ({u}, {v})");
            }
        }
        // Unreliable edges are not in the reliable rows.
        assert_eq!(rows.row(0)[0] >> 4 & 1, 0);
        // Repeated calls return the same cached build.
        assert!(std::ptr::eq(net.g_bit_rows(), rows));
    }

    #[test]
    fn classic_has_no_unreliable_edges() {
        let net = DualGraph::classic(path(5)).unwrap();
        assert!(net.is_classic());
        assert_eq!(net.unreliable_edge_count(), 0);
    }

    #[test]
    fn embedding_constraints() {
        // Two nodes at distance 0.5 must share a reliable edge.
        let g = Graph::new(2);
        let gp = Graph::new(2);
        let pos = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        // g is "connected" only for n<=1; a 2-node edgeless graph is
        // disconnected, so that error fires first — use an edge in G' only.
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert_eq!(err, NetworkError::ReliableDisconnected);

        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let gp = g.clone();
        let pos = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert!(matches!(err, NetworkError::EdgeTooLong { .. }));
    }

    #[test]
    fn embedding_missing_short_edge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let gp = g.clone();
        // Nodes 0 and 2 are within distance 1 but not adjacent in G.
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.0),
        ];
        let err = DualGraph::with_embedding(g, gp, pos, 2.0).unwrap_err();
        assert!(matches!(err, NetworkError::MissingShortEdge { .. }));
    }

    #[test]
    fn rejects_invalid_gray_zone() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let gp = g.clone();
        let pos = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        assert!(matches!(
            DualGraph::with_embedding(g, gp, pos, 0.5),
            Err(NetworkError::InvalidGrayZone { .. })
        ));
    }
}
