//! The process abstraction: the per-node automata that algorithms implement.
//!
//! An algorithm in the paper is a collection of `n` processes; an execution
//! assigns them to nodes and proceeds in synchronous rounds. Each round a
//! process decides whether to broadcast ([`Process::decide`]); afterwards
//! non-broadcasters learn what the channel delivered
//! ([`Process::receive`]) — either a single message or `⊥` (silence and
//! collision are indistinguishable: there is no collision detection).

use crate::ids::ProcessId;
use std::collections::BTreeSet;

/// The generator backing each process's private randomness.
///
/// Process randomness is the highest-volume RNG use in the simulator (every
/// `gen_bool` coin of every process of every round), so it uses the cheap
/// single-word [`rand::rngs::SmallRng`]. Per-process *seeds* are still
/// derived from the engine's master [`rand::rngs::StdRng`], so executions
/// remain deterministic per engine seed.
pub type ProcessRng = rand::rngs::SmallRng;

/// Sizing of messages in bits, used to enforce the model's bound `b`.
///
/// The paper parameterizes results by the maximum message size `b` (e.g. the
/// CCDS running time `O(Δ·log²n / b + log³n)`). Implementations should
/// return the size of the *encoded* message: ids count as `⌈log₂ n⌉` bits
/// (the standard convention), so a message carrying `k` ids plus a
/// constant-size tag reports roughly `k·⌈log₂ n⌉ + O(1)` bits.
pub trait MessageSize {
    /// Encoded size of this message in bits.
    fn bits(&self) -> u64;
}

impl MessageSize for () {
    fn bits(&self) -> u64 {
        1
    }
}

impl MessageSize for u32 {
    fn bits(&self) -> u64 {
        32
    }
}

/// A process's decision for one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Stay silent and listen this round.
    Idle,
    /// Broadcast the message this round.
    Broadcast(M),
}

impl<M> Action<M> {
    /// Whether this action is a broadcast.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Action::Broadcast(_))
    }
}

/// Per-round execution context handed to a process.
///
/// Contains everything the model lets a process see: the global network size
/// `n`, its own id, its link detector output *for this round* (static
/// detectors never change; dynamic ones may), its private randomness, and
/// the number of rounds it has been awake (processes with asynchronous
/// starts cannot see the global round number, so that is all we expose).
#[derive(Debug)]
pub struct Context<'a> {
    /// Rounds since this process woke (1 for its first round).
    pub local_round: u64,
    /// Network size `n`, known to all processes (standard assumption).
    pub n: usize,
    /// This process's unique id.
    pub my_id: ProcessId,
    /// Current link detector output `L_u` (raw process-id numbers).
    pub detector: &'a BTreeSet<u32>,
    /// Private randomness for this process.
    pub rng: &'a mut ProcessRng,
}

/// A per-node automaton participating in a synchronous execution.
///
/// The engine calls [`Process::decide`] for every awake process at the start
/// of each round, then [`Process::receive`] for every awake process that did
/// *not* broadcast. Broadcasters receive only their own message (the model's
/// rule), so they get no `receive` call — they already know what they sent.
///
/// Implementations should be deterministic given the context's RNG so
/// executions are reproducible from the engine seed.
pub trait Process {
    /// Message type broadcast by this algorithm.
    type Msg: Clone + MessageSize;

    /// Choose this round's action.
    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg>;

    /// Observe the channel: `Some(m)` if exactly one reachable neighbor
    /// broadcast, `None` for `⊥` (silence or collision — indistinguishable).
    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>);

    /// The process's problem output (`1` = in the structure), once decided.
    ///
    /// `None` while undecided. Outputs are irrevocable in the one-shot
    /// problems; the continuous CCDS wrapper manages transitions itself.
    fn output(&self) -> Option<bool>;

    /// Whether the process has finished its protocol. Defaults to "has
    /// output", which is right for one-shot algorithms; long-lived
    /// algorithms (e.g. perpetual MIS announcement, Section 9) override
    /// this.
    fn is_done(&self) -> bool {
        self.output().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_message_size() {
        assert_eq!(().bits(), 1);
        assert_eq!(7u32.bits(), 32);
    }

    #[test]
    fn action_kind() {
        assert!(Action::Broadcast(()).is_broadcast());
        assert!(!Action::<()>::Idle.is_broadcast());
    }
}
