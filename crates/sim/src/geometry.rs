//! Plane geometry: points, distances, and the hexagonal disk overlay used in
//! the paper's probabilistic analysis.
//!
//! The correctness proofs of the MIS and CCDS algorithms (Sections 4–5) cover
//! the plane with disks of radius 1/2 whose centers sit on a hexagonal
//! (triangular) lattice, and repeatedly use the constant `I_r`: the maximum
//! number of overlay disks that can intersect a disk of radius `r`
//! (Fact 4.1: `I_c = O(1)` for constant `c`). This module provides that
//! overlay ([`DiskOverlay`]) and a numeric evaluation of `I_r`
//! ([`overlap_bound`]), which the experiment suite uses to check the MIS
//! density bound of Corollary 4.7.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the two-dimensional plane where nodes are embedded.
///
/// # Examples
///
/// ```
/// use radio_sim::geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert!((a.dist(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; use for comparisons).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// Identifier of a cell (disk) of the hexagonal overlay.
///
/// Cells are indexed by axial lattice coordinates; two points share a cell id
/// exactly when they are assigned to the same overlay disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Lattice row.
    pub row: i64,
    /// Lattice column (within the row).
    pub col: i64,
}

/// The hexagonal overlay of disks of radius `r` covering the plane.
///
/// Centers sit on a triangular lattice chosen so the disks cover the plane
/// with minimal overlap: rows are `1.5·r` apart, centers within a row are
/// `√3·r` apart, and odd rows are offset by half a column. Every point of the
/// plane is within distance `r` of the nearest center (the Voronoi cells are
/// hexagons of circumradius `r`).
///
/// The paper's proofs use `r = 1/2`; [`DiskOverlay::paper`] builds exactly
/// that overlay.
///
/// # Examples
///
/// ```
/// use radio_sim::geometry::{DiskOverlay, Point};
/// let overlay = DiskOverlay::paper();
/// let c = overlay.cell_of(Point::new(0.3, 0.1));
/// // The assigned center is within the disk radius.
/// assert!(overlay.center(c).dist(Point::new(0.3, 0.1)) <= overlay.radius() + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskOverlay {
    radius: f64,
    row_step: f64,
    col_step: f64,
}

impl DiskOverlay {
    /// An overlay of disks of radius `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive and finite.
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "overlay radius must be positive");
        DiskOverlay {
            radius: r,
            row_step: 1.5 * r,
            col_step: 3.0_f64.sqrt() * r,
        }
    }

    /// The radius-1/2 overlay used throughout the paper's analysis.
    pub fn paper() -> Self {
        Self::new(0.5)
    }

    /// Disk radius of this overlay.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The overlay disk (cell) containing `p`.
    ///
    /// Points are assigned to the lattice center of their hexagonal Voronoi
    /// cell; ties on cell boundaries are broken deterministically.
    pub fn cell_of(&self, p: Point) -> CellId {
        // Candidate rows around p.y; candidate columns around p.x, accounting
        // for the half-column offset of odd rows. Pick the nearest center.
        let row_guess = (p.y / self.row_step).floor() as i64;
        let mut best = CellId { row: 0, col: 0 };
        let mut best_d = f64::INFINITY;
        for row in (row_guess - 1)..=(row_guess + 2) {
            let off = self.row_offset(row);
            let col_guess = ((p.x - off) / self.col_step).floor() as i64;
            for col in (col_guess - 1)..=(col_guess + 2) {
                let c = CellId { row, col };
                let d = self.center(c).dist_sq(p);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
        }
        best
    }

    /// The center point of cell `c`.
    pub fn center(&self, c: CellId) -> Point {
        Point::new(
            c.col as f64 * self.col_step + self.row_offset(c.row),
            c.row as f64 * self.row_step,
        )
    }

    #[inline]
    fn row_offset(&self, row: i64) -> f64 {
        if row.rem_euclid(2) == 1 {
            self.col_step / 2.0
        } else {
            0.0
        }
    }

    /// Numeric evaluation of the paper's constant `I_r` for this overlay: the
    /// maximum number of overlay disks intersecting a disk of radius `r`.
    ///
    /// An overlay disk (radius `ρ`, center `c`) intersects a query disk
    /// (radius `r`, center `q`) iff `dist(c, q) ≤ r + ρ`. We maximize the
    /// count of lattice centers within `r + ρ` over a dense grid of query
    /// centers inside one lattice fundamental domain (the count is periodic
    /// in the query center).
    ///
    /// This matches Fact 4.1: the returned value is a constant depending only
    /// on `r` (and the overlay radius), not on the network size.
    pub fn overlap_bound(&self, r: f64) -> usize {
        assert!(
            r.is_finite() && r >= 0.0,
            "query radius must be nonnegative"
        );
        let reach = r + self.radius;
        let row_span = (reach / self.row_step).ceil() as i64 + 2;
        let col_span = (reach / self.col_step).ceil() as i64 + 2;
        let mut best = 0usize;
        // Sample query centers across one fundamental domain (two rows by one
        // column, sampled at a resolution fine enough for the radii we use).
        const SAMPLES: i64 = 24;
        for sy in 0..SAMPLES {
            for sx in 0..SAMPLES {
                let q = Point::new(
                    sx as f64 / SAMPLES as f64 * self.col_step,
                    sy as f64 / SAMPLES as f64 * (2.0 * self.row_step),
                );
                let mut count = 0usize;
                for row in -row_span..=row_span {
                    for col in -col_span..=col_span {
                        let c = self.center(CellId { row, col });
                        if c.dist(q) <= reach + 1e-9 {
                            count += 1;
                        }
                    }
                }
                best = best.max(count);
            }
        }
        best
    }
}

/// `I_r` for the paper's radius-1/2 overlay (Fact 4.1).
///
/// Convenience wrapper over [`DiskOverlay::overlap_bound`] on
/// [`DiskOverlay::paper`].
///
/// # Examples
///
/// ```
/// use radio_sim::geometry::overlap_bound;
/// // A disk of radius 0 still intersects at least one overlay disk.
/// assert!(overlap_bound(0.0) >= 1);
/// // Monotone in r.
/// assert!(overlap_bound(2.0) >= overlap_bound(1.0));
/// ```
pub fn overlap_bound(r: f64) -> usize {
    DiskOverlay::paper().overlap_bound(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_covers_plane() {
        // Every sampled point must lie within the radius of its assigned cell
        // center — that is what "covering" means.
        let overlay = DiskOverlay::paper();
        for i in -20..20 {
            for j in -20..20 {
                let p = Point::new(i as f64 * 0.37, j as f64 * 0.29);
                let c = overlay.cell_of(p);
                assert!(
                    overlay.center(c).dist(p) <= overlay.radius() + 1e-9,
                    "point {p} not covered by its cell"
                );
            }
        }
    }

    #[test]
    fn cell_assignment_picks_nearest_center() {
        let overlay = DiskOverlay::paper();
        let p = Point::new(1.234, -0.567);
        let c = overlay.cell_of(p);
        let d = overlay.center(c).dist(p);
        // No lattice center in a local window is strictly closer.
        for row in -10..10 {
            for col in -10..10 {
                let other = CellId { row, col };
                assert!(overlay.center(other).dist(p) >= d - 1e-9);
            }
        }
    }

    #[test]
    fn overlap_bound_small_radii() {
        // A radius-0 disk can touch at most 3 hexagonal cells' disks in
        // degenerate positions but must touch at least 1.
        let b0 = overlap_bound(0.0);
        assert!((1..=4).contains(&b0), "I_0 = {b0}");
        // Known ballpark: a unit-radius query disk intersects a handful of
        // radius-1/2 overlay disks; certainly constant and > I_0.
        let b1 = overlap_bound(1.0);
        assert!(b1 > b0 && b1 < 30, "I_1 = {b1}");
    }

    #[test]
    fn overlap_bound_monotone() {
        let mut last = 0;
        for k in 0..6 {
            let b = overlap_bound(k as f64 * 0.5);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn distances() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(b) - 25.0).abs() < 1e-12);
    }
}
