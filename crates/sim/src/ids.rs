//! Identifier newtypes for graph nodes and processes.
//!
//! The paper distinguishes between *nodes* (vertices of the dual graph,
//! embedded in the plane) and *processes* (the automata of an algorithm,
//! each with a unique identifier in `1..=n`). An execution fixes a bijection
//! `proc` from processes to nodes, chosen by the adversary; see
//! [`IdAssignment`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a vertex in the dual graph (`0..n`).
///
/// Node ids are positional: they index adjacency lists, position vectors and
/// link-detector tables. They are *not* the identifiers processes use to name
/// each other — those are [`ProcessId`]s.
///
/// # Examples
///
/// ```
/// use radio_sim::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Unique process identifier, in `1..=n` as in the paper's model section.
///
/// Process ids appear in messages and link-detector sets. The value `0` is
/// never a valid process id; constructors enforce this.
///
/// # Examples
///
/// ```
/// use radio_sim::ProcessId;
/// let p = ProcessId::new(1).unwrap();
/// assert_eq!(p.get(), 1);
/// assert!(ProcessId::new(0).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id, returning `None` for the invalid value `0`.
    #[inline]
    pub fn new(id: u32) -> Option<Self> {
        if id == 0 {
            None
        } else {
            Some(ProcessId(id))
        }
    }

    /// Creates a process id without checking that it is nonzero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id == 0`.
    #[inline]
    pub fn new_unchecked(id: u32) -> Self {
        debug_assert!(id != 0, "process ids start at 1");
        ProcessId(id)
    }

    /// The numeric identifier (`>= 1`).
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Zero-based index for dense tables keyed by process id.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The bijection `proc` from processes to nodes (and back).
///
/// The paper lets an adversary pick which process runs at which node; all the
/// algorithms must work for every assignment. [`IdAssignment::identity`] maps
/// process `i+1` to node `i`; [`IdAssignment::random`] draws a uniformly
/// random bijection; arbitrary permutations model adversarial placement.
///
/// # Examples
///
/// ```
/// use radio_sim::{IdAssignment, NodeId, ProcessId};
/// let a = IdAssignment::identity(4);
/// assert_eq!(a.id_of(NodeId(2)), ProcessId::new(3).unwrap());
/// assert_eq!(a.node_of(ProcessId::new(3).unwrap()), NodeId(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAssignment {
    /// `id_of[v]` = process id assigned to node `v` (value in `1..=n`).
    id_of: Vec<u32>,
    /// `node_of[i]` = node hosting process `i+1`.
    node_of: Vec<usize>,
}

impl IdAssignment {
    /// The identity assignment: process `i+1` runs at node `i`.
    pub fn identity(n: usize) -> Self {
        IdAssignment {
            id_of: (1..=n as u32).collect(),
            node_of: (0..n).collect(),
        }
    }

    /// A uniformly random bijection drawn from `rng`.
    pub fn random<R: rand::Rng>(n: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let mut ids: Vec<u32> = (1..=n as u32).collect();
        ids.shuffle(rng);
        Self::from_ids(ids).expect("shuffled identity permutation is valid")
    }

    /// Builds an assignment from `id_of` (node index → process id).
    ///
    /// Returns `None` unless `id_of` is a permutation of `1..=n`.
    pub fn from_ids(id_of: Vec<u32>) -> Option<Self> {
        let n = id_of.len();
        let mut node_of = vec![usize::MAX; n];
        for (v, &id) in id_of.iter().enumerate() {
            if id == 0 || id as usize > n {
                return None;
            }
            let slot = &mut node_of[(id - 1) as usize];
            if *slot != usize::MAX {
                return None; // duplicate id
            }
            *slot = v;
        }
        Some(IdAssignment { id_of, node_of })
    }

    /// Number of processes/nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.id_of.len()
    }

    /// The process id assigned to node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn id_of(&self, v: NodeId) -> ProcessId {
        ProcessId::new_unchecked(self.id_of[v.index()])
    }

    /// The node hosting process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn node_of(&self, p: ProcessId) -> NodeId {
        NodeId(self.node_of[p.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_roundtrip() {
        let a = IdAssignment::identity(5);
        for v in 0..5 {
            let p = a.id_of(NodeId(v));
            assert_eq!(a.node_of(p), NodeId(v));
            assert_eq!(p.get() as usize, v + 1);
        }
    }

    #[test]
    fn random_is_bijection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = IdAssignment::random(64, &mut rng);
        let mut seen = [false; 64];
        for v in 0..64 {
            let p = a.id_of(NodeId(v));
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
            assert_eq!(a.node_of(p), NodeId(v));
        }
    }

    #[test]
    fn from_ids_rejects_bad_permutations() {
        assert!(IdAssignment::from_ids(vec![1, 1, 3]).is_none());
        assert!(IdAssignment::from_ids(vec![0, 2, 3]).is_none());
        assert!(IdAssignment::from_ids(vec![1, 2, 4]).is_none());
        assert!(IdAssignment::from_ids(vec![3, 1, 2]).is_some());
    }

    #[test]
    fn process_id_rejects_zero() {
        assert!(ProcessId::new(0).is_none());
        assert_eq!(ProcessId::new(9).unwrap().index(), 8);
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(NodeId(2).to_string(), "v2");
        assert_eq!(ProcessId::new(2).unwrap().to_string(), "p2");
    }
}
