//! One-dimensional chain deployments.
//!
//! Lines maximize diameter for a given `n`, stressing the multi-hop aspects
//! of structure building (e.g. CCDS connectivity along a corridor
//! deployment).

use super::dual_graph_from_points;
use super::random_geometric::TopologyError;
use crate::geometry::Point;
use crate::network::DualGraph;
use rand::Rng;

/// Generates `n` nodes on a line at the given spacing (must be in `(0, 1]`),
/// with gray-zone pairs (distance in `(1, d]`, here the next-but-k
/// neighbors) becoming unreliable links with probability `gray_prob`.
///
/// # Errors
///
/// Returns [`TopologyError::BadConfig`] for `n = 0`, spacing outside
/// `(0, 1]`, `d < 1`, or `gray_prob` outside `[0, 1]`.
pub fn line<R: Rng>(
    n: usize,
    spacing: f64,
    d: f64,
    gray_prob: f64,
    rng: &mut R,
) -> Result<DualGraph, TopologyError> {
    if n == 0 {
        return Err(TopologyError::BadConfig {
            what: "n must be positive",
        });
    }
    if !(spacing > 0.0 && spacing <= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "spacing must be in (0, 1]",
        });
    }
    if !(d.is_finite() && d >= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "d must be >= 1",
        });
    }
    if !(0.0..=1.0).contains(&gray_prob) {
        return Err(TopologyError::BadConfig {
            what: "gray_prob must be in [0, 1]",
        });
    }
    let points = (0..n)
        .map(|i| Point::new(i as f64 * spacing, 0.0))
        .collect();
    Ok(dual_graph_from_points(points, d, gray_prob, rng)
        .expect("a chain with spacing <= 1 is connected"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn line_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let net = line(10, 0.8, 2.0, 0.0, &mut rng).unwrap();
        assert_eq!(net.n(), 10);
        assert!(net.g().is_connected());
        // spacing 0.8: nodes i, i+1 adjacent (0.8 <= 1); i, i+2 not (1.6 > 1).
        assert!(net.g().has_edge(0, 1));
        assert!(!net.g().has_edge(0, 2));
        assert_eq!(net.g().hop_distance(0, 9), Some(9));
    }

    #[test]
    fn gray_zone_on_line() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let net = line(10, 0.8, 2.0, 1.0, &mut rng).unwrap();
        // distance(i, i+2) = 1.6 in (1, 2] -> unreliable link exists.
        assert!(net.is_unreliable_edge(0, 2));
    }

    #[test]
    fn rejects_bad_config() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert!(line(0, 0.5, 2.0, 0.5, &mut rng).is_err());
        assert!(line(5, 2.0, 2.0, 0.5, &mut rng).is_err());
    }
}
