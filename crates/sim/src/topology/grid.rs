//! Regular grid deployments with a gray zone.
//!
//! Deterministic connectivity (spacing < 1 keeps lattice neighbors within
//! reliable range) makes grids the workload of choice for controlled `Δ`
//! sweeps: density is `1/spacing²`, so `Δ` grows as spacing shrinks.

use super::dual_graph_from_points;
use super::random_geometric::TopologyError;
use crate::geometry::Point;
use crate::network::DualGraph;
use rand::Rng;

/// Configuration for [`grid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Grid width in nodes.
    pub cols: usize,
    /// Grid height in nodes.
    pub rows: usize,
    /// Distance between adjacent lattice points; must be in `(0, 1]` so the
    /// lattice is reliably connected.
    pub spacing: f64,
    /// Gray-zone constant `d ≥ 1`.
    pub d: f64,
    /// Probability that each gray-zone pair becomes an unreliable link.
    pub gray_prob: f64,
}

impl GridConfig {
    /// A `cols × rows` grid at the given spacing with `d = 2` and half the
    /// gray-zone pairs unreliable.
    pub fn new(cols: usize, rows: usize, spacing: f64) -> Self {
        GridConfig {
            cols,
            rows,
            spacing,
            d: 2.0,
            gray_prob: 0.5,
        }
    }
}

/// Generates a grid dual graph.
///
/// # Errors
///
/// Returns [`TopologyError::BadConfig`] for empty grids, spacing outside
/// `(0, 1]`, `d < 1`, or `gray_prob` outside `[0, 1]`.
pub fn grid<R: Rng>(config: &GridConfig, rng: &mut R) -> Result<DualGraph, TopologyError> {
    if config.cols == 0 || config.rows == 0 {
        return Err(TopologyError::BadConfig {
            what: "grid must be nonempty",
        });
    }
    if !(config.spacing > 0.0 && config.spacing <= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "spacing must be in (0, 1]",
        });
    }
    if !(config.d.is_finite() && config.d >= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "d must be >= 1",
        });
    }
    if !(0.0..=1.0).contains(&config.gray_prob) {
        return Err(TopologyError::BadConfig {
            what: "gray_prob must be in [0, 1]",
        });
    }
    let mut points = Vec::with_capacity(config.cols * config.rows);
    for r in 0..config.rows {
        for c in 0..config.cols {
            points.push(Point::new(
                c as f64 * config.spacing,
                r as f64 * config.spacing,
            ));
        }
    }
    Ok(
        dual_graph_from_points(points, config.d, config.gray_prob, rng)
            .expect("lattice with spacing <= 1 is connected"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grid_is_connected_and_sized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = grid(&GridConfig::new(6, 5, 0.9), &mut rng).unwrap();
        assert_eq!(net.n(), 30);
        assert!(net.g().is_connected());
    }

    #[test]
    fn tighter_spacing_raises_degree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let loose = grid(&GridConfig::new(8, 8, 0.95), &mut rng).unwrap();
        let tight = grid(&GridConfig::new(8, 8, 0.3), &mut rng).unwrap();
        assert!(tight.max_degree_g() > loose.max_degree_g());
    }

    #[test]
    fn rejects_bad_spacing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(matches!(
            grid(&GridConfig::new(3, 3, 1.5), &mut rng),
            Err(TopologyError::BadConfig { .. })
        ));
        assert!(matches!(
            grid(&GridConfig::new(0, 3, 0.5), &mut rng),
            Err(TopologyError::BadConfig { .. })
        ));
    }
}
