//! Network topology generators.
//!
//! All generators return validated [`DualGraph`]s. The geometric family
//! ([`random_geometric`], [`grid`], [`line`], [`clustered`]) produces
//! embedded networks with a gray zone: `E = {dist ≤ 1}` and `E' ⊇ E` plus a
//! configurable subset of the pairs at distance in `(1, d]`. The
//! [`two_clique`] module builds the adversarial reduction network of
//! Lemma 7.2.

mod clustered;
mod grid;
mod line;
mod random_geometric;
mod two_clique;

pub use clustered::{clustered, ClusteredConfig};
pub use grid::{grid, GridConfig};
pub use line::line;
pub use random_geometric::{
    random_geometric, random_geometric_decay, RandomGeometricConfig, TopologyError,
};
pub use two_clique::{TwoClique, TwoCliqueError};

use crate::geometry::Point;
use crate::graph::Graph;
use crate::network::DualGraph;
use rand::Rng;

/// Builds the dual graph induced by a point set: reliable edges for pairs at
/// distance ≤ 1, unreliable candidates for pairs in the gray zone `(1, d]`,
/// each included independently with probability `gray_prob`.
///
/// Returns `None` if the resulting reliable graph is disconnected (callers
/// typically resample).
pub(crate) fn dual_graph_from_points<R: Rng>(
    points: Vec<Point>,
    d: f64,
    gray_prob: f64,
    rng: &mut R,
) -> Option<DualGraph> {
    let n = points.len();
    let mut g = Graph::new(n);
    let mut gp = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dist = points[u].dist(points[v]);
            if dist <= 1.0 {
                g.add_edge(u, v);
                gp.add_edge(u, v);
            } else if dist <= d && rng.gen_bool(gray_prob) {
                gp.add_edge(u, v);
            }
        }
    }
    if !g.is_connected() {
        return None;
    }
    Some(
        DualGraph::with_embedding(g, gp, points, d)
            .expect("construction satisfies the geometric constraints"),
    )
}
