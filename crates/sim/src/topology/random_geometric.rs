//! Random geometric dual graphs: the paper's implicit workload.
//!
//! Nodes are placed uniformly at random in a square; reliable links connect
//! pairs within distance 1, and each gray-zone pair (distance in `(1, d]`)
//! becomes an unreliable link independently with probability `gray_prob`.
//! This realizes the paper's generalized unit disk model with its
//! "potentially large gray zone of unpredictable connectivity".

use super::dual_graph_from_points;
use crate::geometry::Point;
use crate::network::DualGraph;
use rand::Rng;

/// Failure to generate a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No connected placement found within the attempt budget; densify (more
    /// nodes or smaller area) or raise `max_attempts`.
    Disconnected {
        /// Number of placements tried.
        attempts: u32,
    },
    /// A configuration field was out of range.
    BadConfig {
        /// Human-readable description of the offending field.
        what: &'static str,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Disconnected { attempts } => {
                write!(f, "no connected placement in {attempts} attempts")
            }
            TopologyError::BadConfig { what } => write!(f, "bad topology config: {what}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Configuration for [`random_geometric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomGeometricConfig {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the deployment square. Density (and hence `Δ`) scales
    /// as `n / side²`; keep `side` proportional to `√n` for constant
    /// density, or shrink it to raise `Δ`.
    pub side: f64,
    /// Gray-zone constant `d ≥ 1`: unreliable links may span up to this
    /// distance.
    pub d: f64,
    /// Probability that each gray-zone pair becomes an unreliable link.
    pub gray_prob: f64,
    /// Placements to try before giving up on connectivity.
    pub max_attempts: u32,
}

impl RandomGeometricConfig {
    /// A dense-enough default for `n` nodes: side `√(n / 4)` (expected
    /// reliable degree ≈ π·4 ≈ 12), `d = 2`, half the gray-zone pairs
    /// unreliable.
    pub fn dense(n: usize) -> Self {
        RandomGeometricConfig {
            n,
            side: ((n as f64) / 4.0).sqrt().max(1.0),
            d: 2.0,
            gray_prob: 0.5,
            max_attempts: 64,
        }
    }

    /// Like [`RandomGeometricConfig::dense`] but with a target expected
    /// reliable degree: side is chosen so `n·π/side² ≈ degree`.
    pub fn with_expected_degree(n: usize, degree: f64) -> Self {
        let side = ((n as f64) * std::f64::consts::PI / degree).sqrt().max(1.0);
        RandomGeometricConfig {
            n,
            side,
            d: 2.0,
            gray_prob: 0.5,
            max_attempts: 64,
        }
    }
}

/// Generates a connected random geometric dual graph.
///
/// # Errors
///
/// Returns [`TopologyError::BadConfig`] for invalid parameters and
/// [`TopologyError::Disconnected`] when no connected placement is found
/// within `max_attempts` (the configuration is too sparse).
pub fn random_geometric<R: Rng>(
    config: &RandomGeometricConfig,
    rng: &mut R,
) -> Result<DualGraph, TopologyError> {
    if config.n == 0 {
        return Err(TopologyError::BadConfig {
            what: "n must be positive",
        });
    }
    if !(config.side.is_finite() && config.side > 0.0) {
        return Err(TopologyError::BadConfig {
            what: "side must be positive",
        });
    }
    if !(config.d.is_finite() && config.d >= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "d must be >= 1",
        });
    }
    if !(0.0..=1.0).contains(&config.gray_prob) {
        return Err(TopologyError::BadConfig {
            what: "gray_prob must be in [0, 1]",
        });
    }
    for _ in 0..config.max_attempts.max(1) {
        let points: Vec<Point> = (0..config.n)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..config.side),
                    rng.gen_range(0.0..config.side),
                )
            })
            .collect();
        if let Some(net) = dual_graph_from_points(points, config.d, config.gray_prob, rng) {
            return Ok(net);
        }
    }
    Err(TopologyError::Disconnected {
        attempts: config.max_attempts.max(1),
    })
}

/// Like [`random_geometric`], but with a **distance-decaying** gray zone:
/// a pair at distance `x ∈ (1, d]` becomes an unreliable link with
/// probability interpolated linearly from `p_near` (just past the reliable
/// radius) down to `p_far` (at distance `d`). This matches the measured
/// shape of real gray zones, where link quality falls off with distance
/// rather than being uniform.
///
/// # Errors
///
/// Same conditions as [`random_geometric`], plus both probabilities must be
/// in `[0, 1]`.
pub fn random_geometric_decay<R: Rng>(
    config: &RandomGeometricConfig,
    p_near: f64,
    p_far: f64,
    rng: &mut R,
) -> Result<crate::network::DualGraph, TopologyError> {
    if config.n == 0 {
        return Err(TopologyError::BadConfig {
            what: "n must be positive",
        });
    }
    if !(config.side.is_finite() && config.side > 0.0) {
        return Err(TopologyError::BadConfig {
            what: "side must be positive",
        });
    }
    if !(config.d.is_finite() && config.d >= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "d must be >= 1",
        });
    }
    if !(0.0..=1.0).contains(&p_near) || !(0.0..=1.0).contains(&p_far) {
        return Err(TopologyError::BadConfig {
            what: "probabilities must be in [0, 1]",
        });
    }
    for _ in 0..config.max_attempts.max(1) {
        let points: Vec<Point> = (0..config.n)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..config.side),
                    rng.gen_range(0.0..config.side),
                )
            })
            .collect();
        let n = config.n;
        let mut g = crate::graph::Graph::new(n);
        let mut gp = crate::graph::Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let dist = points[u].dist(points[v]);
                if dist <= 1.0 {
                    g.add_edge(u, v);
                    gp.add_edge(u, v);
                } else if dist <= config.d {
                    let t = if config.d > 1.0 {
                        (dist - 1.0) / (config.d - 1.0)
                    } else {
                        0.0
                    };
                    let prob = p_near + t * (p_far - p_near);
                    if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                        gp.add_edge(u, v);
                    }
                }
            }
        }
        if !g.is_connected() {
            continue;
        }
        return Ok(
            crate::network::DualGraph::with_embedding(g, gp, points, config.d)
                .expect("construction satisfies the geometric constraints"),
        );
    }
    Err(TopologyError::Disconnected {
        attempts: config.max_attempts.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_config_connects() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng).unwrap();
        assert_eq!(net.n(), 64);
        assert!(net.g().is_connected());
        assert!(net.g().is_subgraph_of(net.g_prime()));
    }

    #[test]
    fn gray_zone_produces_unreliable_links() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut cfg = RandomGeometricConfig::dense(96);
        cfg.gray_prob = 1.0;
        let net = random_geometric(&cfg, &mut rng).unwrap();
        assert!(net.unreliable_edge_count() > 0);
        // All unreliable edges span (1, d].
        let pos = net.positions().unwrap();
        for (u, v) in net.unreliable_edges() {
            let dist = pos[u].dist(pos[v]);
            assert!(dist > 1.0 && dist <= cfg.d + 1e-9);
        }
    }

    #[test]
    fn zero_gray_prob_is_classic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut cfg = RandomGeometricConfig::dense(48);
        cfg.gray_prob = 0.0;
        let net = random_geometric(&cfg, &mut rng).unwrap();
        assert!(net.is_classic());
    }

    #[test]
    fn expected_degree_scales_density() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sparse = random_geometric(
            &RandomGeometricConfig::with_expected_degree(128, 8.0),
            &mut rng,
        );
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let dense = random_geometric(
            &RandomGeometricConfig::with_expected_degree(128, 24.0),
            &mut rng2,
        )
        .unwrap();
        if let Ok(sparse) = sparse {
            assert!(dense.max_degree_g() > sparse.max_degree_g());
        }
    }

    #[test]
    fn decay_gray_zone_prefers_short_links() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let cfg = RandomGeometricConfig::dense(128);
        let net = random_geometric_decay(&cfg, 0.9, 0.05, &mut rng).unwrap();
        let pos = net.positions().unwrap();
        // Split unreliable links at the gray-zone midpoint: the near half
        // should dominate.
        let mid = (1.0 + cfg.d) / 2.0;
        let (mut near, mut far) = (0usize, 0usize);
        for (u, v) in net.unreliable_edges() {
            if pos[u].dist(pos[v]) <= mid {
                near += 1;
            } else {
                far += 1;
            }
        }
        assert!(near > 2 * far, "near = {near}, far = {far}");
    }

    #[test]
    fn decay_rejects_bad_probabilities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let cfg = RandomGeometricConfig::dense(8);
        assert!(matches!(
            random_geometric_decay(&cfg, 1.5, 0.0, &mut rng),
            Err(TopologyError::BadConfig { .. })
        ));
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut cfg = RandomGeometricConfig::dense(8);
        cfg.d = 0.5;
        assert!(matches!(
            random_geometric(&cfg, &mut rng),
            Err(TopologyError::BadConfig { .. })
        ));
        let mut cfg = RandomGeometricConfig::dense(8);
        cfg.gray_prob = 1.5;
        assert!(matches!(
            random_geometric(&cfg, &mut rng),
            Err(TopologyError::BadConfig { .. })
        ));
    }

    #[test]
    fn impossible_configs_report_disconnected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cfg = RandomGeometricConfig {
            n: 10,
            side: 1000.0,
            d: 2.0,
            gray_prob: 0.0,
            max_attempts: 3,
        };
        assert_eq!(
            random_geometric(&cfg, &mut rng).unwrap_err(),
            TopologyError::Disconnected { attempts: 3 }
        );
    }
}
