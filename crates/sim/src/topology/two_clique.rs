//! The two-clique bridge network of Lemma 7.2.
//!
//! `G` consists of two cliques of size β connected by a single *bridge*
//! edge; `G'` is the complete graph. With 1-complete link detectors whose
//! one spurious entry points every node at the opposite clique's bridge
//! endpoint, a CCDS algorithm cannot move information between the cliques
//! until a bridge endpoint broadcasts *alone* — which is the event the
//! hitting-game reduction counts. This module builds the network, the
//! embedding that witnesses its geometric validity, and the adversarial
//! detector assignment from the proof.

use crate::detector::LinkDetectorAssignment;
use crate::geometry::Point;
use crate::graph::Graph;
use crate::ids::{IdAssignment, NodeId};
use crate::network::DualGraph;
use std::collections::BTreeSet;

/// The Lemma 7.2 reduction network: two β-cliques joined by one bridge.
///
/// Nodes `0..β` form clique A, nodes `β..2β` form clique B. The bridge
/// connects `bridge_a ∈ A` to `bridge_b ∈ B`.
///
/// # Examples
///
/// ```
/// use radio_sim::topology::TwoClique;
/// let tc = TwoClique::new(4, 0, 0)?;
/// let net = tc.network();
/// assert_eq!(net.n(), 8);
/// // Exactly one reliable edge crosses the cliques.
/// let cross = net.g().edges().filter(|&(u, v)| (u < 4) != (v < 4)).count();
/// assert_eq!(cross, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoClique {
    beta: usize,
    bridge_a: usize,
    bridge_b: usize,
    net: DualGraph,
}

/// Error building a [`TwoClique`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoCliqueError {
    /// β must be at least 2 for the construction to be meaningful.
    BetaTooSmall,
    /// A bridge endpoint index was `>= β`.
    BridgeOutOfRange,
}

impl std::fmt::Display for TwoCliqueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoCliqueError::BetaTooSmall => write!(f, "two-clique network needs beta >= 2"),
            TwoCliqueError::BridgeOutOfRange => write!(f, "bridge endpoint index must be < beta"),
        }
    }
}

impl std::error::Error for TwoCliqueError {}

impl TwoClique {
    /// Builds the network with cliques of size `beta`; the bridge joins the
    /// `bridge_a`-th node of clique A to the `bridge_b`-th node of clique B
    /// (both indices local to their clique, in `0..beta`).
    ///
    /// # Errors
    ///
    /// Returns [`TwoCliqueError`] for `beta < 2` or out-of-range endpoints.
    pub fn new(beta: usize, bridge_a: usize, bridge_b: usize) -> Result<Self, TwoCliqueError> {
        if beta < 2 {
            return Err(TwoCliqueError::BetaTooSmall);
        }
        if bridge_a >= beta || bridge_b >= beta {
            return Err(TwoCliqueError::BridgeOutOfRange);
        }
        let n = 2 * beta;
        let mut g = Graph::new(n);
        for u in 0..beta {
            for v in (u + 1)..beta {
                g.add_edge(u, v);
                g.add_edge(beta + u, beta + v);
            }
        }
        let a = bridge_a;
        let b = beta + bridge_b;
        g.add_edge(a, b);
        let gp = Graph::complete(n);

        // Embedding witnessing model validity: clique A packed in a disk of
        // radius 0.4 at the origin, clique B likewise at (2, 0). All
        // intra-clique distances are <= 0.8 <= 1 (consistent with the
        // complete E inside cliques); all cross distances are >= 1.2 > 1 (so
        // no E edge is *forced* across, and the bridge is a legitimate
        // choice); all distances are <= 2.8 <= d = 3 (so the complete E' is
        // legal).
        let positions = Self::positions(beta);
        let net = DualGraph::with_embedding(g, gp, positions, 3.0)
            .expect("two-clique construction satisfies the geometric model");
        Ok(TwoClique {
            beta,
            bridge_a: a,
            bridge_b: b,
            net,
        })
    }

    fn positions(beta: usize) -> Vec<Point> {
        // Sunflower layout inside a radius-0.4 disk.
        let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        let disk = |center_x: f64, i: usize| {
            let r = 0.4 * ((i as f64 + 0.5) / beta as f64).sqrt();
            let theta = golden * i as f64;
            Point::new(center_x + r * theta.cos(), r * theta.sin())
        };
        let mut pts: Vec<Point> = (0..beta).map(|i| disk(0.0, i)).collect();
        pts.extend((0..beta).map(|i| disk(2.0, i)));
        pts
    }

    /// The assembled dual graph.
    pub fn network(&self) -> &DualGraph {
        &self.net
    }

    /// Consumes the builder, returning the dual graph.
    pub fn into_network(self) -> DualGraph {
        self.net
    }

    /// Clique size β (so `Δ = β`: bridge endpoints have β−1 clique
    /// neighbors plus the bridge).
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Global node index of the bridge endpoint in clique A.
    pub fn bridge_a(&self) -> NodeId {
        NodeId(self.bridge_a)
    }

    /// Global node index of the bridge endpoint in clique B.
    pub fn bridge_b(&self) -> NodeId {
        NodeId(self.bridge_b)
    }

    /// Whether a node belongs to clique A.
    pub fn in_clique_a(&self, v: NodeId) -> bool {
        v.index() < self.beta
    }

    /// The 1-complete detector assignment from the Lemma 7.2 proof: every
    /// clique-A node's set holds the ids of all of clique A plus the id of
    /// clique B's bridge endpoint (and symmetrically for clique B). For the
    /// actual bridge endpoints the extra id names a true `G`-neighbor; for
    /// everyone else it is the single permitted misclassification.
    pub fn proof_detectors(&self, ids: &IdAssignment) -> LinkDetectorAssignment {
        let n = self.net.n();
        let id_of = |v: usize| ids.id_of(NodeId(v)).get();
        let a_ids: BTreeSet<u32> = (0..self.beta).map(id_of).collect();
        let b_ids: BTreeSet<u32> = (self.beta..n).map(id_of).collect();
        let sets = (0..n)
            .map(|v| {
                let mut s = if v < self.beta {
                    a_ids.clone()
                } else {
                    b_ids.clone()
                };
                s.remove(&id_of(v)); // never contains the node's own id
                if v < self.beta {
                    s.insert(id_of(self.bridge_b));
                } else {
                    s.insert(id_of(self.bridge_a));
                }
                s
            })
            .collect();
        LinkDetectorAssignment::from_sets(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_correct() {
        let tc = TwoClique::new(5, 2, 3).unwrap();
        let net = tc.network();
        assert_eq!(net.n(), 10);
        // Cliques are complete in G.
        for u in 0..5 {
            for v in (u + 1)..5 {
                assert!(net.g().has_edge(u, v));
                assert!(net.g().has_edge(5 + u, 5 + v));
            }
        }
        // Exactly one cross edge: the bridge (2, 8).
        let cross: Vec<_> = net
            .g()
            .edges()
            .filter(|&(u, v)| (u < 5) != (v < 5))
            .collect();
        assert_eq!(cross, vec![(2, 8)]);
        assert_eq!(tc.bridge_a(), NodeId(2));
        assert_eq!(tc.bridge_b(), NodeId(8));
        // G' is complete.
        assert_eq!(net.g_prime().edge_count(), 10 * 9 / 2);
    }

    #[test]
    fn delta_is_beta() {
        let tc = TwoClique::new(6, 0, 0).unwrap();
        assert_eq!(tc.network().max_degree_g(), 6);
    }

    #[test]
    fn proof_detectors_are_one_complete() {
        let tc = TwoClique::new(5, 1, 4).unwrap();
        let ids = IdAssignment::identity(10);
        let det = tc.proof_detectors(&ids);
        assert!(det.is_tau_complete(tc.network(), &ids, 1));
        assert!(!det.is_tau_complete(tc.network(), &ids, 0));
        // H equals G: the spurious entries are one-sided except at the
        // bridge, where they are real neighbors anyway.
        let h = det.h_graph(&ids);
        assert_eq!(&h, tc.network().g());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            TwoClique::new(1, 0, 0).unwrap_err(),
            TwoCliqueError::BetaTooSmall
        );
        assert_eq!(
            TwoClique::new(3, 3, 0).unwrap_err(),
            TwoCliqueError::BridgeOutOfRange
        );
    }
}
