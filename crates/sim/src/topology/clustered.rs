//! Clustered deployments: dense pockets joined by sparse corridors.
//!
//! Clusters stress the CCDS algorithms where they are weakest — the MIS is
//! dense inside clusters and the connecting paths are few — and they are the
//! common shape of real sensor deployments (rooms, buildings, road
//! segments).

use super::dual_graph_from_points;
use super::random_geometric::TopologyError;
use crate::geometry::Point;
use crate::network::DualGraph;
use rand::Rng;

/// Configuration for [`clustered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredConfig {
    /// Number of clusters, arranged on a ring.
    pub clusters: usize,
    /// Nodes per cluster.
    pub nodes_per_cluster: usize,
    /// Radius of each cluster's disk.
    pub cluster_radius: f64,
    /// Distance between adjacent cluster centers; bridged by chains of
    /// relay nodes so the reliable graph connects.
    pub center_spacing: f64,
    /// Gray-zone constant `d ≥ 1`.
    pub d: f64,
    /// Probability that each gray-zone pair becomes an unreliable link.
    pub gray_prob: f64,
    /// Placements to try before giving up on connectivity.
    pub max_attempts: u32,
}

impl ClusteredConfig {
    /// A reasonable default: `clusters` pockets of `nodes_per_cluster` nodes
    /// with radius 0.75, centers 2.5 apart, `d = 2`, half the gray-zone
    /// pairs unreliable.
    pub fn new(clusters: usize, nodes_per_cluster: usize) -> Self {
        ClusteredConfig {
            clusters,
            nodes_per_cluster,
            cluster_radius: 0.75,
            center_spacing: 2.5,
            d: 2.0,
            gray_prob: 0.5,
            max_attempts: 64,
        }
    }
}

/// Generates a clustered dual graph: clusters on a ring plus relay chains
/// between adjacent clusters.
///
/// # Errors
///
/// Returns [`TopologyError::BadConfig`] for degenerate parameters and
/// [`TopologyError::Disconnected`] if no connected placement was found.
pub fn clustered<R: Rng>(
    config: &ClusteredConfig,
    rng: &mut R,
) -> Result<DualGraph, TopologyError> {
    if config.clusters == 0 || config.nodes_per_cluster == 0 {
        return Err(TopologyError::BadConfig {
            what: "clusters and nodes_per_cluster must be positive",
        });
    }
    if !(config.cluster_radius > 0.0 && config.cluster_radius.is_finite()) {
        return Err(TopologyError::BadConfig {
            what: "cluster_radius must be positive",
        });
    }
    if !(config.d.is_finite() && config.d >= 1.0) {
        return Err(TopologyError::BadConfig {
            what: "d must be >= 1",
        });
    }
    if !(0.0..=1.0).contains(&config.gray_prob) {
        return Err(TopologyError::BadConfig {
            what: "gray_prob must be in [0, 1]",
        });
    }
    // Cluster centers on a ring sized so adjacent centers are
    // `center_spacing` apart.
    let k = config.clusters;
    let ring_radius = if k == 1 {
        0.0
    } else {
        config.center_spacing / (2.0 * (std::f64::consts::PI / k as f64).sin())
    };
    let centers: Vec<Point> = (0..k)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
            Point::new(ring_radius * theta.cos(), ring_radius * theta.sin())
        })
        .collect();

    for _ in 0..config.max_attempts.max(1) {
        let mut points = Vec::new();
        for c in &centers {
            for _ in 0..config.nodes_per_cluster {
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let rad = config.cluster_radius * rng.gen_range(0.0f64..1.0).sqrt();
                points.push(Point::new(c.x + rad * theta.cos(), c.y + rad * theta.sin()));
            }
        }
        // Relay chains between adjacent clusters (every ~0.9 along the
        // segment between centers) keep the reliable graph connected.
        if k > 1 {
            for i in 0..k {
                let a = centers[i];
                let b = centers[(i + 1) % k];
                let dist = a.dist(b);
                let hops = (dist / 0.9).ceil() as usize;
                for h in 1..hops {
                    let t = h as f64 / hops as f64;
                    points.push(Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)));
                }
            }
        }
        if let Some(net) = dual_graph_from_points(points, config.d, config.gray_prob, rng) {
            return Ok(net);
        }
    }
    Err(TopologyError::Disconnected {
        attempts: config.max_attempts.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clustered_connects() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = clustered(&ClusteredConfig::new(4, 12), &mut rng).unwrap();
        assert!(net.g().is_connected());
        // 4 clusters of 12 plus relay nodes.
        assert!(net.n() >= 48);
    }

    #[test]
    fn clusters_are_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = clustered(&ClusteredConfig::new(3, 16), &mut rng).unwrap();
        // Inside a radius-0.75 disk every pair is within 1.5; many pairs are
        // within 1, so the max reliable degree is large.
        assert!(net.max_degree_g() >= 8);
    }

    #[test]
    fn single_cluster_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = clustered(&ClusteredConfig::new(1, 10), &mut rng).unwrap();
        assert_eq!(net.n(), 10);
        assert!(net.g().is_connected());
    }

    #[test]
    fn rejects_bad_config() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert!(clustered(&ClusteredConfig::new(0, 10), &mut rng).is_err());
        let mut cfg = ClusteredConfig::new(2, 4);
        cfg.gray_prob = -0.1;
        assert!(clustered(&cfg, &mut rng).is_err());
    }
}
