//! Dynamic link detectors (Section 8).
//!
//! Long-lived networks see link quality change: a link that behaved reliably
//! for a long time may degrade (multipath changes, interference). Section 8
//! models this by redefining the link detector as a *service* that outputs a
//! set every round. A dynamic detector **stabilizes** at round `r` if from
//! `r` on its output matches a static τ-complete detector and never changes
//! again.
//!
//! [`DetectorProvider`] is the round-indexed interface the engine consumes;
//! a static [`LinkDetectorAssignment`] trivially implements it, and
//! [`DynamicDetector`] implements a piecewise-constant schedule of
//! assignments.

use crate::detector::LinkDetectorAssignment;
use crate::ids::NodeId;
use std::collections::BTreeSet;

/// Round-indexed source of link detector sets.
pub trait DetectorProvider {
    /// The detector set of node `u` at round `round`.
    fn set_at(&self, u: NodeId, round: u64) -> &BTreeSet<u32>;

    /// Number of nodes covered.
    fn n(&self) -> usize;

    /// The round at which output stops changing, if known. Static detectors
    /// return `Some(1)`.
    fn stabilization_round(&self) -> Option<u64>;
}

impl DetectorProvider for LinkDetectorAssignment {
    fn set_at(&self, u: NodeId, _round: u64) -> &BTreeSet<u32> {
        self.set(u)
    }

    fn n(&self) -> usize {
        LinkDetectorAssignment::n(self)
    }

    fn stabilization_round(&self) -> Option<u64> {
        Some(1)
    }
}

/// A piecewise-constant dynamic link detector.
///
/// The schedule is a sequence of `(start_round, assignment)` stages; the
/// detector outputs the assignment of the last stage whose start is `≤` the
/// query round. The final stage's start round is the stabilization round.
///
/// # Examples
///
/// ```
/// use radio_sim::{DynamicDetector, DetectorProvider, LinkDetectorAssignment, NodeId};
/// use std::collections::BTreeSet;
/// let early = LinkDetectorAssignment::from_sets(vec![BTreeSet::from([2u32]); 2]);
/// let late = LinkDetectorAssignment::from_sets(vec![BTreeSet::from([1u32]); 2]);
/// let dyn_det = DynamicDetector::new(vec![(1, early), (10, late)]).unwrap();
/// assert!(dyn_det.set_at(NodeId(0), 5).contains(&2));
/// assert!(dyn_det.set_at(NodeId(0), 10).contains(&1));
/// assert_eq!(dyn_det.stabilization_round(), Some(10));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicDetector {
    stages: Vec<(u64, LinkDetectorAssignment)>,
}

/// Error building a [`DynamicDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicDetectorError {
    /// No stages were provided.
    Empty,
    /// Stage start rounds were not strictly increasing, or the first stage
    /// did not start at round 1.
    BadSchedule,
    /// Stages cover different numbers of nodes.
    SizeMismatch,
}

impl std::fmt::Display for DynamicDetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicDetectorError::Empty => write!(f, "dynamic detector needs at least one stage"),
            DynamicDetectorError::BadSchedule => write!(
                f,
                "stage starts must begin at round 1 and strictly increase"
            ),
            DynamicDetectorError::SizeMismatch => write!(f, "stages cover different node counts"),
        }
    }
}

impl std::error::Error for DynamicDetectorError {}

impl DynamicDetector {
    /// Builds a dynamic detector from `(start_round, assignment)` stages.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicDetectorError`] if the schedule is empty, does not
    /// start at round 1, is not strictly increasing, or mixes node counts.
    pub fn new(stages: Vec<(u64, LinkDetectorAssignment)>) -> Result<Self, DynamicDetectorError> {
        if stages.is_empty() {
            return Err(DynamicDetectorError::Empty);
        }
        if stages[0].0 != 1 {
            return Err(DynamicDetectorError::BadSchedule);
        }
        for w in stages.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(DynamicDetectorError::BadSchedule);
            }
        }
        let n = stages[0].1.n();
        if stages.iter().any(|(_, a)| a.n() != n) {
            return Err(DynamicDetectorError::SizeMismatch);
        }
        Ok(DynamicDetector { stages })
    }

    /// The assignment active at `round`.
    pub fn assignment_at(&self, round: u64) -> &LinkDetectorAssignment {
        let idx = match self.stages.binary_search_by_key(&round, |(r, _)| *r) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        &self.stages[idx].1
    }

    /// The final (stable) assignment.
    pub fn final_assignment(&self) -> &LinkDetectorAssignment {
        &self.stages.last().expect("nonempty by construction").1
    }
}

impl DetectorProvider for DynamicDetector {
    fn set_at(&self, u: NodeId, round: u64) -> &BTreeSet<u32> {
        self.assignment_at(round).set(u)
    }

    fn n(&self) -> usize {
        self.stages[0].1.n()
    }

    fn stabilization_round(&self) -> Option<u64> {
        Some(self.stages.last().expect("nonempty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(v: u32, n: usize) -> LinkDetectorAssignment {
        LinkDetectorAssignment::from_sets(vec![BTreeSet::from([v]); n])
    }

    #[test]
    fn schedule_lookup() {
        let d = DynamicDetector::new(vec![
            (1, assignment(10, 3)),
            (5, assignment(20, 3)),
            (9, assignment(30, 3)),
        ])
        .unwrap();
        assert!(d.set_at(NodeId(0), 1).contains(&10));
        assert!(d.set_at(NodeId(0), 4).contains(&10));
        assert!(d.set_at(NodeId(0), 5).contains(&20));
        assert!(d.set_at(NodeId(0), 100).contains(&30));
        assert_eq!(d.stabilization_round(), Some(9));
        assert!(d.final_assignment().set(NodeId(2)).contains(&30));
    }

    #[test]
    fn rejects_bad_schedules() {
        assert_eq!(
            DynamicDetector::new(vec![]).unwrap_err(),
            DynamicDetectorError::Empty
        );
        assert_eq!(
            DynamicDetector::new(vec![(2, assignment(1, 2))]).unwrap_err(),
            DynamicDetectorError::BadSchedule
        );
        assert_eq!(
            DynamicDetector::new(vec![(1, assignment(1, 2)), (1, assignment(2, 2))]).unwrap_err(),
            DynamicDetectorError::BadSchedule
        );
        assert_eq!(
            DynamicDetector::new(vec![(1, assignment(1, 2)), (3, assignment(2, 3))]).unwrap_err(),
            DynamicDetectorError::SizeMismatch
        );
    }

    #[test]
    fn static_assignment_is_a_provider() {
        let a = assignment(7, 2);
        assert_eq!(DetectorProvider::n(&a), 2);
        assert_eq!(a.stabilization_round(), Some(1));
        assert!(a.set_at(NodeId(1), 99).contains(&7));
    }
}
