//! CSV export for traces and metrics.
//!
//! The experiment harness emits JSON via serde; CSV is the convenient
//! format for plotting round-by-round channel activity (broadcasters,
//! deliveries, collisions) in external tools.

use crate::trace::{ExecutionMetrics, Trace};
use std::fmt::Write as _;

/// Renders a [`Trace`] as CSV with a header row
/// (`round,broadcasters,deliveries,collisions,extra_edges`).
///
/// # Examples
///
/// ```
/// use radio_sim::{export::trace_to_csv, RoundRecord, Trace};
/// let mut t = Trace::new();
/// t.push(RoundRecord { round: 1, broadcasters: 2, deliveries: 1, collisions: 0, extra_edges: 3 });
/// let csv = trace_to_csv(&t);
/// assert!(csv.starts_with("round,broadcasters,deliveries,collisions,extra_edges\n"));
/// assert!(csv.contains("1,2,1,0,3"));
/// ```
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("round,broadcasters,deliveries,collisions,extra_edges\n");
    for r in &trace.rounds {
        writeln!(
            out,
            "{},{},{},{},{}",
            r.round, r.broadcasters, r.deliveries, r.collisions, r.extra_edges
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Renders [`ExecutionMetrics`] as a one-row CSV (with header).
pub fn metrics_to_csv(metrics: &ExecutionMetrics) -> String {
    format!(
        "rounds,broadcasts,deliveries,collisions,bits_broadcast,oversize_messages\n{},{},{},{},{},{}\n",
        metrics.rounds,
        metrics.broadcasts,
        metrics.deliveries,
        metrics.collisions,
        metrics.bits_broadcast,
        metrics.oversize_messages
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RoundRecord;

    #[test]
    fn csv_shapes() {
        let mut t = Trace::new();
        for round in 1..=3 {
            t.push(RoundRecord {
                round,
                broadcasters: round as u32,
                deliveries: 0,
                collisions: 1,
                extra_edges: 0,
            });
        }
        let csv = trace_to_csv(&t);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(2).unwrap().starts_with("2,2,0,1,0"));

        let m = ExecutionMetrics {
            rounds: 9,
            broadcasts: 8,
            deliveries: 7,
            collisions: 6,
            bits_broadcast: 5,
            oversize_messages: 0,
        };
        let mc = metrics_to_csv(&m);
        assert_eq!(mc.lines().count(), 2);
        assert!(mc.ends_with("9,8,7,6,5,0\n"));
    }

    #[test]
    fn empty_trace_is_header_only() {
        assert_eq!(trace_to_csv(&Trace::new()).lines().count(), 1);
    }
}
