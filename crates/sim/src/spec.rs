//! Value-level, serde-serializable descriptions of simulator inputs.
//!
//! The simulator's builders are functions (`topology::random_geometric`,
//! `adversary::RandomUnreliable::new`, …); experiment configs want plain
//! *data*. This module provides the value-level mirrors: [`TopologyKind`]
//! names every topology generator with its parameters, [`AdversaryKind`]
//! names every reach-set adversary. Both serialize through the vendored
//! serde, so a whole scenario (topology × adversary × algorithm grid) can
//! live in a JSON file and round-trip losslessly.
//!
//! Randomized builders take a seed rather than an `&mut Rng` at this level;
//! [`TopologyKind::build`] derives a fresh `StdRng` from it, and
//! [`TopologyKind::build_with`] threads a caller-owned generator for the
//! experiments whose detector construction continues the topology stream.

use crate::adversary::{
    Adversary, AllUnreliable, BurstyUnreliable, CliqueIsolator, Collider, RandomUnreliable,
    ReliableOnly,
};
use crate::graph::Graph;
use crate::network::DualGraph;
use crate::topology::{
    clustered, grid, line, random_geometric, ClusteredConfig, GridConfig, RandomGeometricConfig,
    TopologyError, TwoClique,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A selectable reach-set adversary (value-level mirror of the
/// [`crate::adversary`] types, so experiment configs can be plain data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Unreliable edges never deliver.
    ReliableOnly,
    /// Unreliable edges always deliver.
    AllUnreliable,
    /// Each unreliable edge delivers independently with probability `p`.
    Random {
        /// Per-edge, per-round activation probability.
        p: f64,
    },
    /// Adaptive: manufactures collisions wherever a clean reception was
    /// about to happen.
    Collider,
    /// Gilbert–Elliott bursty links: per-edge Good/Bad Markov chains.
    Bursty {
        /// Good→Bad transition probability per round.
        p_gb: f64,
        /// Bad→Good transition probability per round.
        p_bg: f64,
    },
    /// The Lemma 7.2 clique-isolating adversary.
    CliqueIsolator,
}

impl AdversaryKind {
    /// Instantiates the adversary (randomized kinds derive their stream
    /// from `seed`).
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::ReliableOnly => Box::new(ReliableOnly),
            AdversaryKind::AllUnreliable => Box::new(AllUnreliable),
            AdversaryKind::Random { p } => Box::new(RandomUnreliable::new(p, seed)),
            AdversaryKind::Collider => Box::new(Collider),
            AdversaryKind::Bursty { p_gb, p_bg } => {
                Box::new(BurstyUnreliable::new(p_gb, p_bg, seed))
            }
            AdversaryKind::CliqueIsolator => Box::new(CliqueIsolator),
        }
    }

    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::ReliableOnly => "reliable-only",
            AdversaryKind::AllUnreliable => "all-unreliable",
            AdversaryKind::Random { .. } => "random-unreliable",
            AdversaryKind::Collider => "collider",
            AdversaryKind::Bursty { .. } => "bursty-unreliable",
            AdversaryKind::CliqueIsolator => "clique-isolator",
        }
    }
}

/// A selectable network topology (value-level mirror of the builders under
/// [`crate::topology`], plus the classic structured graphs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The complete classic network (`G = G'` with all edges): the densest
    /// single-hop regime.
    Clique {
        /// Number of nodes.
        n: usize,
    },
    /// A classic path `0 — 1 — … — n-1` with no unreliable layer.
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// A path with unreliable next-but-one chords: `G` is the path,
    /// `E' \ E = {(i, i+2)}` — the sparse adversary-heavy regime.
    PathChords {
        /// Number of nodes.
        n: usize,
    },
    /// `n` nodes on a line at fixed spacing with a geometric gray zone
    /// (see [`crate::topology::line`]).
    Line {
        /// Number of nodes.
        n: usize,
        /// Distance between consecutive nodes, in `(0, 1]`.
        spacing: f64,
        /// Gray-zone constant `d ≥ 1`.
        d: f64,
        /// Probability that each gray-zone pair becomes an unreliable link.
        gray_prob: f64,
    },
    /// A jittered grid deployment (see [`crate::topology::grid`]).
    Grid {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
        /// Distance between adjacent grid positions.
        spacing: f64,
    },
    /// Random geometric dual graph at the default dense configuration
    /// ([`RandomGeometricConfig::dense`]): the paper's implicit workload.
    GeometricDense {
        /// Number of nodes.
        n: usize,
    },
    /// [`TopologyKind::GeometricDense`] with the gray zone disabled — a
    /// classic (`G = G'`) random geometric graph.
    GeometricClassic {
        /// Number of nodes.
        n: usize,
    },
    /// Random geometric dual graph sized for a target expected reliable
    /// degree ([`RandomGeometricConfig::with_expected_degree`]).
    GeometricDegree {
        /// Number of nodes.
        n: usize,
        /// Target expected reliable degree.
        degree: f64,
    },
    /// Fully explicit random geometric configuration.
    Geometric {
        /// Number of nodes.
        n: usize,
        /// Side length of the deployment square.
        side: f64,
        /// Gray-zone constant `d ≥ 1`.
        d: f64,
        /// Probability that each gray-zone pair becomes an unreliable link.
        gray_prob: f64,
        /// Placements to try before giving up on connectivity.
        max_attempts: u32,
    },
    /// Clustered deployment: dense pockets joined by relay corridors
    /// (see [`crate::topology::clustered`]).
    Clustered {
        /// Number of clusters, arranged on a ring.
        clusters: usize,
        /// Nodes per cluster.
        nodes_per_cluster: usize,
    },
    /// The Lemma 7.2 two-clique reduction network with explicit bridge
    /// endpoints.
    TwoCliqueBridge {
        /// Clique size `β = Δ`.
        beta: usize,
        /// Bridge endpoint's local index in clique A.
        bridge_a: usize,
        /// Bridge endpoint's local index in clique B.
        bridge_b: usize,
    },
}

impl TopologyKind {
    /// Builds the network, drawing any required randomness from `rng`.
    ///
    /// Deterministic kinds (clique, path, two-clique) ignore `rng`; using
    /// this entry point for every kind keeps the caller's stream position
    /// independent of which topology a sweep axis selected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for out-of-range parameters or when no
    /// connected placement exists within the attempt budget.
    pub fn build_with<R: Rng>(&self, rng: &mut R) -> Result<DualGraph, TopologyError> {
        let bad = |what: &'static str| TopologyError::BadConfig { what };
        match *self {
            TopologyKind::Clique { n } => {
                if n == 0 {
                    return Err(bad("n must be positive"));
                }
                DualGraph::classic(Graph::complete(n)).map_err(|_| bad("clique must connect"))
            }
            TopologyKind::Path { n } => {
                if n == 0 {
                    return Err(bad("n must be positive"));
                }
                let g = Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
                    .map_err(|_| bad("path edges must be simple"))?;
                DualGraph::classic(g).map_err(|_| bad("path must connect"))
            }
            TopologyKind::PathChords { n } => {
                if n < 3 {
                    return Err(bad("chorded path needs n >= 3"));
                }
                let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
                    .map_err(|_| bad("path edges must be simple"))?;
                let mut gp = g.clone();
                for i in 0..n - 2 {
                    gp.add_edge(i, i + 2);
                }
                DualGraph::new(g, gp).map_err(|_| bad("chorded path must be a valid dual graph"))
            }
            TopologyKind::Line {
                n,
                spacing,
                d,
                gray_prob,
            } => line(n, spacing, d, gray_prob, rng),
            TopologyKind::Grid {
                cols,
                rows,
                spacing,
            } => grid(&GridConfig::new(cols, rows, spacing), rng),
            TopologyKind::GeometricDense { n } => {
                random_geometric(&RandomGeometricConfig::dense(n), rng)
            }
            TopologyKind::GeometricClassic { n } => {
                let mut cfg = RandomGeometricConfig::dense(n);
                cfg.gray_prob = 0.0;
                random_geometric(&cfg, rng)
            }
            TopologyKind::GeometricDegree { n, degree } => {
                random_geometric(&RandomGeometricConfig::with_expected_degree(n, degree), rng)
            }
            TopologyKind::Geometric {
                n,
                side,
                d,
                gray_prob,
                max_attempts,
            } => random_geometric(
                &RandomGeometricConfig {
                    n,
                    side,
                    d,
                    gray_prob,
                    max_attempts,
                },
                rng,
            ),
            TopologyKind::Clustered {
                clusters,
                nodes_per_cluster,
            } => clustered(&ClusteredConfig::new(clusters, nodes_per_cluster), rng),
            TopologyKind::TwoCliqueBridge {
                beta,
                bridge_a,
                bridge_b,
            } => TwoClique::new(beta, bridge_a, bridge_b)
                .map(TwoClique::into_network)
                .map_err(|_| bad("two-clique parameters out of range")),
        }
    }

    /// Builds the network from a fresh `StdRng` stream derived from `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TopologyKind::build_with`].
    pub fn build(&self, seed: u64) -> Result<DualGraph, TopologyError> {
        self.build_with(&mut StdRng::seed_from_u64(seed))
    }

    /// Whether [`TopologyKind::build_with`] ignores its RNG: deterministic
    /// kinds build the same network for every seed **and leave the stream
    /// untouched**, so a sweep may freeze one instance and share it across
    /// trials (the batched runner's contract) without perturbing the
    /// detector streams that continue the topology stream.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            *self,
            TopologyKind::Clique { .. }
                | TopologyKind::Path { .. }
                | TopologyKind::PathChords { .. }
                | TopologyKind::TwoCliqueBridge { .. }
        )
    }

    /// The number of nodes this kind will produce (grid/clustered kinds
    /// compute it from their shape parameters).
    pub fn n(&self) -> usize {
        match *self {
            TopologyKind::Clique { n }
            | TopologyKind::Path { n }
            | TopologyKind::PathChords { n }
            | TopologyKind::Line { n, .. }
            | TopologyKind::GeometricDense { n }
            | TopologyKind::GeometricClassic { n }
            | TopologyKind::GeometricDegree { n, .. }
            | TopologyKind::Geometric { n, .. } => n,
            TopologyKind::Grid { cols, rows, .. } => cols * rows,
            // Relay chains add nodes beyond the clusters; report the floor.
            TopologyKind::Clustered {
                clusters,
                nodes_per_cluster,
            } => clusters * nodes_per_cluster,
            TopologyKind::TwoCliqueBridge { beta, .. } => 2 * beta,
        }
    }

    /// Short label for experiment tables and generic scenario output.
    pub fn label(&self) -> String {
        match *self {
            TopologyKind::Clique { n } => format!("clique-{n}"),
            TopologyKind::Path { n } => format!("path-{n}"),
            TopologyKind::PathChords { n } => format!("path-chords-{n}"),
            TopologyKind::Line { n, .. } => format!("line-{n}"),
            TopologyKind::Grid { cols, rows, .. } => format!("grid-{cols}x{rows}"),
            TopologyKind::GeometricDense { n } => format!("rgg-{n}"),
            TopologyKind::GeometricClassic { n } => format!("rgg-classic-{n}"),
            TopologyKind::GeometricDegree { n, degree } => format!("rgg-{n}-deg{degree:.0}"),
            TopologyKind::Geometric { n, .. } => format!("rgg-custom-{n}"),
            TopologyKind::Clustered {
                clusters,
                nodes_per_cluster,
            } => format!("clustered-{clusters}x{nodes_per_cluster}"),
            TopologyKind::TwoCliqueBridge { beta, .. } => format!("two-clique-{beta}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_kinds_build() {
        for kind in [
            AdversaryKind::ReliableOnly,
            AdversaryKind::AllUnreliable,
            AdversaryKind::Random { p: 0.5 },
            AdversaryKind::Collider,
            AdversaryKind::Bursty {
                p_gb: 0.1,
                p_bg: 0.1,
            },
            AdversaryKind::CliqueIsolator,
        ] {
            let a = kind.build(1);
            assert!(!a.name().is_empty());
            assert_eq!(a.name(), kind.name());
        }
    }

    #[test]
    fn every_topology_kind_builds() {
        let kinds = [
            TopologyKind::Clique { n: 8 },
            TopologyKind::Path { n: 8 },
            TopologyKind::PathChords { n: 8 },
            TopologyKind::Line {
                n: 8,
                spacing: 0.8,
                d: 2.0,
                gray_prob: 0.5,
            },
            TopologyKind::Grid {
                cols: 3,
                rows: 3,
                spacing: 0.9,
            },
            TopologyKind::GeometricDense { n: 24 },
            TopologyKind::GeometricClassic { n: 24 },
            TopologyKind::GeometricDegree {
                n: 24,
                degree: 10.0,
            },
            TopologyKind::Geometric {
                n: 24,
                side: 2.0,
                d: 2.0,
                gray_prob: 0.3,
                max_attempts: 64,
            },
            TopologyKind::Clustered {
                clusters: 3,
                nodes_per_cluster: 4,
            },
            TopologyKind::TwoCliqueBridge {
                beta: 4,
                bridge_a: 1,
                bridge_b: 2,
            },
        ];
        for kind in kinds {
            let net = kind.build(7).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(net.g().is_connected(), "{kind:?}");
            assert!(net.n() >= kind.n(), "{kind:?}: n() must be a floor");
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn classic_kind_is_classic_and_chords_are_unreliable() {
        let classic = TopologyKind::GeometricClassic { n: 16 }.build(3).unwrap();
        assert!(classic.is_classic());
        let chords = TopologyKind::PathChords { n: 8 }.build(3).unwrap();
        assert!(chords.is_unreliable_edge(0, 2));
        assert!(!chords.is_unreliable_edge(0, 1));
    }

    #[test]
    fn builds_reject_bad_parameters() {
        assert!(TopologyKind::Clique { n: 0 }.build(1).is_err());
        assert!(TopologyKind::PathChords { n: 2 }.build(1).is_err());
        assert!(TopologyKind::Geometric {
            n: 8,
            side: 2.0,
            d: 0.5,
            gray_prob: 0.5,
            max_attempts: 8,
        }
        .build(1)
        .is_err());
        assert!(TopologyKind::TwoCliqueBridge {
            beta: 1,
            bridge_a: 0,
            bridge_b: 0,
        }
        .build(1)
        .is_err());
    }

    #[test]
    fn spec_kinds_roundtrip_json() {
        let topo = TopologyKind::Geometric {
            n: 24,
            side: 2.5,
            d: 2.0,
            gray_prob: 0.3,
            max_attempts: 64,
        };
        let s = serde_json::to_string(&topo).unwrap();
        let back: TopologyKind = serde_json::from_str(&s).unwrap();
        assert_eq!(back, topo);
        let adv = AdversaryKind::Bursty {
            p_gb: 0.05,
            p_bg: 0.1,
        };
        let s = serde_json::to_string(&adv).unwrap();
        let back: AdversaryKind = serde_json::from_str(&s).unwrap();
        assert_eq!(back, adv);
        // A seed-for-seed rebuild is deterministic.
        let a = TopologyKind::GeometricDense { n: 24 }.build(9).unwrap();
        let b = TopologyKind::GeometricDense { n: 24 }.build(9).unwrap();
        assert_eq!(a.g().edge_count(), b.g().edge_count());
    }
}
