//! # radio-sim — a dual graph radio network simulator
//!
//! This crate implements the network model of *Structuring Unreliable Radio
//! Networks* (Censor-Hillel, Gilbert, Kuhn, Lynch, Newport; PODC 2011): a
//! static ad hoc radio network described by **two** graphs over the same
//! nodes — `G = (V, E)` of *reliable* links and `G' = (V, E')` with `E ⊆
//! E'` of all links, the extras being *unreliable*. Executions proceed in
//! synchronous rounds; each round an adversary chooses a *reach set* (all of
//! `E` plus any subset of `E' \ E`), and a listener receives a message iff
//! exactly one reachable neighbor broadcast — otherwise it observes `⊥`,
//! with no collision detection.
//!
//! The crate provides:
//!
//! - the model itself: [`DualGraph`], the delivery rule, adversaries
//!   ([`adversary`]), and the synchronous [`Engine`];
//! - the **link detector** formalism ([`LinkDetectorAssignment`]):
//!   τ-complete estimates of each node's reliable neighborhood, plus dynamic
//!   (per-round) detectors ([`DynamicDetector`]);
//! - topology generators ([`topology`]), including the two-clique reduction
//!   network used by the paper's Ω(Δ) lower bound;
//! - the geometric toolkit of the paper's analysis ([`geometry`]): the
//!   hexagonal disk overlay and the `I_r` constants.
//!
//! Algorithms (MIS, CCDS, …) live in the companion crate
//! `radio-structures`; this crate is the substrate they run on.
//!
//! ## Quickstart
//!
//! ```
//! use radio_sim::{
//!     topology::{random_geometric, RandomGeometricConfig},
//!     Action, Context, DualGraph, EngineBuilder, Process,
//! };
//! use rand::SeedableRng;
//!
//! // A process that broadcasts its id once, in its first round.
//! struct Hello { sent: bool }
//! impl Process for Hello {
//!     type Msg = u32;
//!     fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
//!         if !self.sent {
//!             self.sent = true;
//!             Action::Broadcast(ctx.my_id.get())
//!         } else {
//!             Action::Idle
//!         }
//!     }
//!     fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
//!     fn output(&self) -> Option<bool> { if self.sent { Some(false) } else { None } }
//! }
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng)?;
//! let mut engine = EngineBuilder::new(net).seed(7).spawn(|_| Hello { sent: false })?;
//! engine.run(10);
//! assert!(engine.outputs().iter().all(Option::is_some));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
mod detector;
mod dynamic;
mod engine;
pub mod export;
pub mod geometry;
mod graph;
mod ids;
mod network;
mod process;
pub mod spec;
pub mod topology;
mod trace;

pub use adversary::Adversary;
pub use detector::{LinkDetectorAssignment, SpuriousSource};
pub use dynamic::{DetectorProvider, DynamicDetector, DynamicDetectorError};
pub use engine::{
    BatchedEngine, Engine, EngineBuilder, EngineError, RunOutcome, SpawnInfo, StepMode, StopReason,
};
pub use graph::{BitRows, CsrGraph, Graph, GraphError, NeighborStamps};
pub use ids::{IdAssignment, NodeId, ProcessId};
pub use network::{DualGraph, NetworkError};
pub use process::{Action, Context, MessageSize, Process, ProcessRng};
pub use spec::{AdversaryKind, TopologyKind};
pub use trace::{ExecutionMetrics, RoundRecord, Trace};
