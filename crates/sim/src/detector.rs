//! The link detector formalism: per-process estimates of reliable neighbors.
//!
//! Real deployments run low-layer protocols (ETX-style measurement, signal
//! statistics, sometimes special hardware) to separate reliable from
//! unreliable links. The paper abstracts these as a *link detector*: each
//! process `u` receives a set `L_u ⊆ [n]` of process ids at the beginning of
//! the execution.
//!
//! A detector is **τ-complete** when `L_u = {id(v) : v ∈ N_G(u)} ∪ W_u` with
//! `W_u ⊆ {id(w) : w ∉ N_G(u)}` and `|W_u| ≤ τ`: it contains every reliable
//! neighbor plus at most τ misclassified extras. `τ = 0` is perfect
//! knowledge of the reliable neighborhood — which, importantly, does *not*
//! remove the unreliable edges themselves.
//!
//! The problem definitions reference the graph `H` whose edges are the
//! mutually-detected pairs (`u ∈ L_v` and `v ∈ L_u`); see
//! [`LinkDetectorAssignment::h_graph`].

use crate::graph::Graph;
use crate::ids::{IdAssignment, NodeId, ProcessId};
use crate::network::DualGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Where a τ-complete builder draws its misclassified (spurious) entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpuriousSource {
    /// Spurious ids are unreliable `G'`-neighbors (the realistic case: a
    /// flaky link measured as good). Falls back to no entry if a node has no
    /// unreliable neighbors.
    UnreliableNeighbors,
    /// Spurious ids are arbitrary non-neighbors, as the formal definition
    /// allows (`W_u ⊆ {id(w) : w ∉ N_G(u)}`).
    AnyNonNeighbor,
}

/// A complete assignment of link detector sets, one per node.
///
/// Sets contain raw process-id numbers (`u32`) for compact storage; use
/// [`LinkDetectorAssignment::contains`] for typed queries.
///
/// # Examples
///
/// ```
/// use radio_sim::{DualGraph, Graph, IdAssignment, LinkDetectorAssignment, NodeId};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let net = DualGraph::classic(g)?;
/// let ids = IdAssignment::identity(3);
/// let det = LinkDetectorAssignment::zero_complete(&net, &ids);
/// // Node 1's reliable neighbors are nodes 0 and 2, i.e. processes 1 and 3.
/// assert_eq!(det.set(NodeId(1)).iter().copied().collect::<Vec<u32>>(), vec![1, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDetectorAssignment {
    sets: Vec<BTreeSet<u32>>,
}

impl LinkDetectorAssignment {
    /// The 0-complete detector: each node sees exactly the ids of its
    /// `G`-neighbors.
    pub fn zero_complete(net: &DualGraph, ids: &IdAssignment) -> Self {
        let sets = (0..net.n())
            .map(|u| {
                net.g()
                    .neighbors(u)
                    .iter()
                    .map(|&v| ids.id_of(NodeId(v)).get())
                    .collect()
            })
            .collect();
        LinkDetectorAssignment { sets }
    }

    /// A τ-complete detector: the 0-complete sets plus up to `tau` spurious
    /// ids per node, drawn per `source`.
    ///
    /// The builder inserts exactly `min(tau, candidates)` spurious entries
    /// per node — the hardest case the definition allows — choosing the
    /// entries uniformly from the candidate pool.
    pub fn tau_complete<R: Rng>(
        net: &DualGraph,
        ids: &IdAssignment,
        tau: usize,
        source: SpuriousSource,
        rng: &mut R,
    ) -> Self {
        let mut det = Self::zero_complete(net, ids);
        for u in 0..net.n() {
            let mut pool: Vec<usize> = match source {
                SpuriousSource::UnreliableNeighbors => net
                    .g_prime()
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| !net.g().has_edge(u, v))
                    .collect(),
                SpuriousSource::AnyNonNeighbor => (0..net.n())
                    .filter(|&v| v != u && !net.g().has_edge(u, v))
                    .collect(),
            };
            pool.shuffle(rng);
            for &w in pool.iter().take(tau) {
                det.sets[u].insert(ids.id_of(NodeId(w)).get());
            }
        }
        det
    }

    /// Builds an assignment from explicit sets (one per node, containing raw
    /// process-id numbers). Used by adversarial constructions such as the
    /// two-clique network of Lemma 7.2.
    pub fn from_sets(sets: Vec<BTreeSet<u32>>) -> Self {
        LinkDetectorAssignment { sets }
    }

    /// Number of nodes covered by this assignment.
    #[inline]
    pub fn n(&self) -> usize {
        self.sets.len()
    }

    /// The detector set of node `u` (raw process-id numbers, sorted).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn set(&self, u: NodeId) -> &BTreeSet<u32> {
        &self.sets[u.index()]
    }

    /// Whether process `p` appears in node `u`'s detector set.
    #[inline]
    pub fn contains(&self, u: NodeId, p: ProcessId) -> bool {
        self.sets[u.index()].contains(&p.get())
    }

    /// The graph `H` from the problem definitions: an edge `(u, v)` exists
    /// iff `u` and `v` are in each other's detector sets.
    ///
    /// For any τ-complete detector, `G ⊆ H`; for `τ = 0`, `H = G`.
    pub fn h_graph(&self, ids: &IdAssignment) -> Graph {
        let n = self.sets.len();
        let mut h = Graph::new(n);
        for u in 0..n {
            let id_u = ids.id_of(NodeId(u)).get();
            for &pid in &self.sets[u] {
                let v = ids.node_of(ProcessId::new_unchecked(pid)).index();
                if v > u && self.sets[v].contains(&id_u) {
                    h.add_edge(u, v);
                }
            }
        }
        h
    }

    /// The graph `H` frozen into CSR form. This rebuilds `H` from the
    /// detector sets — `O(V + E)` — so call it once per assignment and
    /// reuse the result; per-round callers should freeze up front.
    pub fn h_csr(&self, ids: &IdAssignment) -> crate::graph::CsrGraph {
        self.h_graph(ids).to_csr()
    }

    /// Validates τ-completeness against a network: every `G`-neighbor id
    /// present, at most `tau` extras, and no extra is a `G`-neighbor or the
    /// node's own id.
    pub fn is_tau_complete(&self, net: &DualGraph, ids: &IdAssignment, tau: usize) -> bool {
        if self.sets.len() != net.n() {
            return false;
        }
        for u in 0..net.n() {
            let own = ids.id_of(NodeId(u)).get();
            let neighbor_ids: BTreeSet<u32> = net
                .g()
                .neighbors(u)
                .iter()
                .map(|&v| ids.id_of(NodeId(v)).get())
                .collect();
            if !neighbor_ids.is_subset(&self.sets[u]) {
                return false;
            }
            let extras: Vec<u32> = self.sets[u].difference(&neighbor_ids).copied().collect();
            if extras.len() > tau || extras.contains(&own) {
                return false;
            }
        }
        true
    }

    /// Total number of misclassified entries across all nodes (for metrics).
    pub fn spurious_count(&self, net: &DualGraph, ids: &IdAssignment) -> usize {
        (0..net.n())
            .map(|u| {
                self.sets[u]
                    .iter()
                    .filter(|&&pid| {
                        let v = ids.node_of(ProcessId::new_unchecked(pid)).index();
                        !net.g().has_edge(u, v)
                    })
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn diamond() -> (DualGraph, IdAssignment) {
        // G: path 0-1-2-3; G' adds the chord 0-2 and 1-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        gp.add_edge(1, 3);
        (DualGraph::new(g, gp).unwrap(), IdAssignment::identity(4))
    }

    #[test]
    fn zero_complete_matches_g() {
        let (net, ids) = diamond();
        let det = LinkDetectorAssignment::zero_complete(&net, &ids);
        assert!(det.is_tau_complete(&net, &ids, 0));
        let h = det.h_graph(&ids);
        assert_eq!(&h, net.g());
        assert_eq!(det.h_csr(&ids), h.to_csr());
    }

    #[test]
    fn tau_complete_has_bounded_extras() {
        let (net, ids) = diamond();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            1,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        assert!(det.is_tau_complete(&net, &ids, 1));
        assert!(!det.is_tau_complete(&net, &ids, 0));
        // Nodes 0..=3 each have exactly one unreliable neighbor here.
        assert_eq!(det.spurious_count(&net, &ids), 4);
    }

    #[test]
    fn h_contains_g_for_any_tau() {
        let (net, ids) = diamond();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            2,
            SpuriousSource::AnyNonNeighbor,
            &mut rng,
        );
        let h = det.h_graph(&ids);
        assert!(net.g().is_subgraph_of(&h));
    }

    #[test]
    fn h_requires_mutual_membership() {
        // Node 0 lists process 3 (node 2), but node 2 does not list node 0.
        let sets = vec![
            BTreeSet::from([2u32, 3]),
            BTreeSet::from([1u32, 3]),
            BTreeSet::from([2u32, 4]),
            BTreeSet::from([3u32]),
        ];
        let det = LinkDetectorAssignment::from_sets(sets);
        let ids = IdAssignment::identity(4);
        let h = det.h_graph(&ids);
        assert!(h.has_edge(0, 1)); // mutual
        assert!(!h.has_edge(0, 2)); // one-sided
    }

    #[test]
    fn respects_nonidentity_assignment() {
        let (net, _) = diamond();
        let ids = IdAssignment::from_ids(vec![4, 3, 2, 1]).unwrap();
        let det = LinkDetectorAssignment::zero_complete(&net, &ids);
        // Node 0's sole G-neighbor is node 1, whose process id is 3.
        assert_eq!(
            det.set(NodeId(0)).iter().copied().collect::<Vec<_>>(),
            vec![3]
        );
        assert!(det.is_tau_complete(&net, &ids, 0));
    }
}
