//! A compact undirected graph with sorted adjacency lists, plus the flat
//! CSR form the simulator's hot path runs on.
//!
//! Both layers of the dual graph (`G` and `G'`) and the detector-induced
//! graph `H` are represented by [`Graph`]. The representation favors the
//! access patterns of the simulator: neighbor iteration during delivery,
//! membership tests during filtering, and whole-graph checks (connectivity,
//! subgraph containment) during validation.
//!
//! # CSR layout
//!
//! [`Graph`] is built incrementally (sorted `Vec` per vertex — convenient
//! for generators), but the engine's delivery loop wants a single
//! contiguous allocation. [`CsrGraph`] is the frozen form: `offsets` has
//! `n + 1` entries and the neighbors of `u` are the slice
//! `neighbors[offsets[u]..offsets[u + 1]]`, sorted ascending and stored as
//! `u32`. Freeze a graph once with [`Graph::to_csr`]; `DualGraph` does this
//! at construction for both layers and for the unreliable difference
//! `E' \ E`.
//!
//! Membership tests against a CSR row use [`NeighborStamps`]: load a row
//! once (`O(deg)`), then each query is an `O(1)` epoch-stamp comparison —
//! amortized constant when queries are grouped by row, which is how the
//! engine filters the adversary's proposed unreliable edges.
//!
//! Node ids and row offsets are stored as `u32` throughout the frozen
//! forms — half the memory (and twice the cache reach) of `usize` on
//! 64-bit targets; construction debug-asserts `n ≤ u32::MAX`.
//!
//! # Bitmask rows
//!
//! [`BitRows`] is the third adjacency form, derived from a [`CsrGraph`]:
//! each node's neighborhood as a row of `⌈n/64⌉` `u64` words, one bit per
//! potential neighbor. The bit-parallel delivery engine
//! (`Engine::step_bitset`) ORs whole broadcaster rows into carry-save
//! seen/collide accumulators — a ~64× narrower inner loop than the scalar
//! scatter on dense graphs. Rows cost `n·⌈n/64⌉` words, so they are built
//! lazily (see `DualGraph::g_bit_rows`) and only make sense at moderate
//! `n`; the CSR remains the general-purpose form.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Errors produced when constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    EndpointOutOfRange {
        /// The offending endpoint.
        endpoint: usize,
        /// The number of vertices.
        n: usize,
    },
    /// An edge connected a vertex to itself.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { endpoint, n } => {
                write!(f, "edge endpoint {endpoint} out of range for {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph on vertices `0..n`.
///
/// Adjacency lists are kept sorted, so membership tests are `O(log deg)` and
/// neighbor iteration is cache-friendly. Parallel edges and self loops are
/// rejected/ignored.
///
/// # Examples
///
/// ```
/// use radio_sim::Graph;
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert!(g.has_edge(1, 2));
/// assert!(!g.has_edge(0, 3));
/// assert!(g.is_connected());
/// assert_eq!(g.max_degree(), 2);
/// # Ok::<(), radio_sim::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are deduplicated silently (they are common when
    /// generators enumerate unordered pairs).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge is a
    /// self loop.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.try_add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds the undirected edge `{u, v}`; a no-op if already present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.try_add_edge(u, v)
            .expect("invalid edge passed to add_edge");
    }

    /// Fallible form of [`Graph::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or `u == v`.
    pub fn try_add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::EndpointOutOfRange {
                endpoint: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::EndpointOutOfRange {
                endpoint: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if Self::insert_sorted(&mut self.adj[u], v) {
            Self::insert_sorted(&mut self.adj[v], u);
            self.edge_count += 1;
        }
        Ok(())
    }

    fn insert_sorted(list: &mut Vec<usize>, x: usize) -> bool {
        match list.binary_search(&x) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, x);
                true
            }
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the edge `{u, v}` is present. Out-of-range queries return
    /// `false`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].binary_search(&v).is_ok()
    }

    /// The sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree over all vertices (`Δ` for `G`, `Δ'` for `G'`). Zero
    /// for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates all edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let dist = self.bfs_distances(0);
        dist.iter().all(Option::is_some)
    }

    /// BFS hop distances from `src`; `None` for unreachable vertices.
    ///
    /// # Panics
    ///
    /// Panics if `src >= n`.
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<u32>> {
        assert!(src < self.n, "bfs source out of range");
        let mut dist = vec![None; self.n];
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertices have distances");
            for &v in &self.adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every edge of `self` is also an edge of `other`.
    ///
    /// Used to validate the dual-graph requirement `E ⊆ E'`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.n == other.n && self.edges().all(|(u, v)| other.has_edge(u, v))
    }

    /// Whether the subgraph induced by `{v : member[v]}` is connected.
    ///
    /// Vacuously true when at most one vertex is selected. Used by the CCDS
    /// checker (connectivity of the processes that output 1, in `H`).
    ///
    /// # Panics
    ///
    /// Panics if `member.len() != n`.
    pub fn induced_connected(&self, member: &[bool]) -> bool {
        assert_eq!(member.len(), self.n, "membership vector length mismatch");
        let Some(start) = (0..self.n).find(|&v| member[v]) else {
            return true;
        };
        let mut seen = vec![false; self.n];
        seen[start] = true;
        let mut queue = VecDeque::from([start]);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if member[v] && !seen[v] {
                    seen[v] = true;
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        reached == member.iter().filter(|&&m| m).count()
    }

    /// Hop distance between `u` and `v` (`None` if disconnected).
    pub fn hop_distance(&self, u: usize, v: usize) -> Option<u32> {
        self.bfs_distances(u)[v]
    }

    /// Neighbors of `u` as [`NodeId`]s.
    pub fn neighbor_ids(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[u.index()].iter().map(|&v| NodeId(v))
    }

    /// The complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Union of two graphs on the same vertex set.
    ///
    /// # Panics
    ///
    /// Panics if vertex counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "union requires equal vertex counts");
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// Freezes the adjacency into its flat [`CsrGraph`] form.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_rows(self.n, |u| self.adj[u].iter().map(|&v| v as u32))
    }
}

/// Frozen compressed-sparse-row adjacency: one offsets array, one neighbor
/// array, nothing else. The engine's per-round delivery loop iterates these
/// slices; see the module docs for the layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `n + 1` row boundaries into `neighbors`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each row sorted ascending.
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR from a per-row neighbor generator (rows already sorted).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices or more than
    /// `u32::MAX` directed edge slots. Node ids are stored as `u32`
    /// throughout ([`Graph::to_csr`] and [`CsrGraph::has_edge`] cast with
    /// `as u32`), so a larger vertex count would silently truncate ids in
    /// release builds; the check is therefore a real assertion, not a
    /// `debug_assert`.
    pub fn from_rows<I>(n: usize, mut row: impl FnMut(usize) -> I) -> Self
    where
        I: Iterator<Item = u32>,
    {
        assert!(
            u32::try_from(n).is_ok(),
            "CSR node ids are u32; graph has {n} vertices"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for u in 0..n {
            neighbors.extend(row(u));
            offsets.push(
                u32::try_from(neighbors.len()).expect("graph exceeds u32 edge-slot capacity"),
            );
        }
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Total directed edge slots (`2·|E|` for an undirected graph).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `{u, v}` is an edge (`O(log deg)`; for repeated queries
    /// against one row use [`NeighborStamps`]). Out-of-range queries return
    /// `false`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n() && v < self.n() && self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }
}

/// Word-packed adjacency: each node's neighborhood as a row of
/// `⌈n/64⌉` `u64` words, bit `v` of row `u` set iff `{u, v}` is an edge.
///
/// This is the layout the bit-parallel delivery engine consumes: delivery
/// for a round is a word-wise OR of the broadcasters' rows into carry-save
/// seen/collide accumulators, so the per-broadcaster cost is `⌈n/64⌉`
/// word operations regardless of degree. Rows occupy `n·⌈n/64⌉·8` bytes
/// (2 MiB at `n = 4096`), which is why they are derived on demand from
/// the CSR rather than built for every network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRows {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BitRows {
    /// Packs a [`CsrGraph`]'s adjacency into bitmask rows.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let n = csr.n();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for u in 0..n {
            let row = &mut bits[u * words..(u + 1) * words];
            for &v in csr.neighbors(u) {
                row[(v >> 6) as usize] |= 1u64 << (v & 63);
            }
        }
        BitRows { n, words, bits }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n/64⌉`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitmask row of `u`, `words()` long.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u64] {
        &self.bits[u * self.words..(u + 1) * self.words]
    }
}

/// Epoch-stamped row membership tester over a [`CsrGraph`].
///
/// `load_row(csr, u)` marks `u`'s neighbors in `O(deg(u))`; `contains(v)`
/// then answers in `O(1)`. Loading a new row invalidates the previous one
/// by bumping the epoch — the stamp array is never cleared, so a tester
/// allocates once and is free thereafter. This is the structure the engine
/// uses to filter adversary-proposed unreliable edges without the seed
/// implementation's per-edge binary search.
#[derive(Debug, Clone)]
pub struct NeighborStamps {
    stamps: Vec<u64>,
    epoch: u64,
}

impl NeighborStamps {
    /// A tester for graphs on `n` vertices.
    pub fn new(n: usize) -> Self {
        NeighborStamps {
            stamps: vec![0; n],
            epoch: 0,
        }
    }

    /// Loads the neighbor row of `u`, invalidating any previous row.
    ///
    /// # Panics
    ///
    /// Panics if `csr` covers more vertices than this tester.
    pub fn load_row(&mut self, csr: &CsrGraph, u: usize) {
        self.epoch += 1;
        for &v in csr.neighbors(u) {
            self.stamps[v as usize] = self.epoch;
        }
    }

    /// Whether `v` is in the currently loaded row.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        self.stamps[v] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_bad_edges() {
        assert_eq!(
            Graph::from_edges(3, [(0, 3)]),
            Err(GraphError::EndpointOutOfRange { endpoint: 3, n: 3 })
        );
        assert_eq!(
            Graph::from_edges(3, [(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
    }

    #[test]
    fn connectivity() {
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_connected());
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!split.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn bfs_and_hops() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = g.bfs_distances(0);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
        assert_eq!(g.hop_distance(0, 2), Some(2));
        assert_eq!(g.hop_distance(0, 4), None);
    }

    #[test]
    fn subgraph_check() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let big = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&g));
    }

    #[test]
    fn induced_connectivity() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(g.induced_connected(&[true, true, true, false, false]));
        assert!(!g.induced_connected(&[true, false, true, false, false]));
        assert!(g.induced_connected(&[false, false, false, false, false]));
        assert!(g.induced_connected(&[false, false, true, false, false]));
    }

    #[test]
    fn complete_and_union() {
        let k4 = Graph::complete(4);
        assert_eq!(k4.edge_count(), 6);
        let path = Graph::from_edges(4, [(0, 1)]).unwrap();
        let u = path.union(&k4);
        assert_eq!(u.edge_count(), 6);
    }

    #[test]
    fn edges_iterator_ordered() {
        let g = Graph::from_edges(4, [(2, 1), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn csr_matches_graph() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let csr = g.to_csr();
        assert_eq!(csr.n(), 5);
        assert_eq!(csr.edge_slots(), 2 * g.edge_count());
        for u in 0..5 {
            let from_csr: Vec<usize> = csr.neighbors(u).iter().map(|&v| v as usize).collect();
            assert_eq!(from_csr, g.neighbors(u));
            assert_eq!(csr.degree(u), g.degree(u));
            for v in 0..5 {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v));
            }
        }
        assert!(!csr.has_edge(0, 9));
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "CSR node ids are u32")]
    fn csr_rejects_vertex_counts_past_u32() {
        // The check must fire before any row is generated (and before the
        // offsets allocation), so an empty-row generator never runs and the
        // oversized `n` cannot reserve ~16 GiB: the panic happens first,
        // identically in debug and release builds.
        CsrGraph::from_rows(u32::MAX as usize + 2, |_| std::iter::empty());
    }

    #[test]
    fn bit_rows_match_csr() {
        // 70 vertices forces a two-word row, covering the word boundary.
        let mut g = Graph::new(70);
        for v in 1..70 {
            g.add_edge(0, v); // star keeps it connected-ish and dense at 0
        }
        g.add_edge(3, 65);
        g.add_edge(64, 69);
        let csr = g.to_csr();
        let rows = BitRows::from_csr(&csr);
        assert_eq!(rows.n(), 70);
        assert_eq!(rows.words(), 2);
        for u in 0..70 {
            let row = rows.row(u);
            for v in 0..70 {
                let bit = row[v >> 6] >> (v & 63) & 1 == 1;
                assert_eq!(bit, g.has_edge(u, v), "bit ({u}, {v})");
            }
        }
        // Exact multiples of 64 use no padding word.
        let k = Graph::complete(64).to_csr();
        assert_eq!(BitRows::from_csr(&k).words(), 1);
    }

    #[test]
    fn stamps_answer_row_membership() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let csr = g.to_csr();
        let mut stamps = NeighborStamps::new(4);
        stamps.load_row(&csr, 0);
        assert!(stamps.contains(1));
        assert!(stamps.contains(2));
        assert!(!stamps.contains(3));
        stamps.load_row(&csr, 3);
        assert!(stamps.contains(2));
        assert!(!stamps.contains(1), "old row must be invalidated");
        // An empty row invalidates everything.
        let lonely = Graph::new(4).to_csr();
        stamps.load_row(&lonely, 0);
        assert!(!stamps.contains(2));
    }
}
