//! The synchronous execution engine for dual graph radio networks.
//!
//! Each round the engine: (1) asks every awake process for an action; (2)
//! lets the adversary pick the round's reach set (all of `E` plus chosen
//! unreliable edges); (3) applies the model's delivery rule — a listener
//! receives a message iff *exactly one* reachable neighbor broadcast,
//! otherwise it observes `⊥` (there is no collision detection); broadcasters
//! receive only their own message. Processes that start asynchronously
//! (Section 9) are simply not scheduled before their wake round.
//!
//! Executions are deterministic given the engine seed: every process gets a
//! private RNG derived from it, and adversaries carry their own seeds.
//!
//! # Performance architecture
//!
//! Stepping is the hot path of every experiment, and it comes in **three
//! tiers**, each differentially pinned to the one below it by golden-trace
//! tests (identical traces, transcripts, metrics, and outputs for the same
//! seed):
//!
//! 1. [`Engine::step_legacy`] — the seed implementation, kept verbatim.
//!    Allocates per-round buffers and scans every listener's full
//!    neighborhood; the reference everything else is measured and tested
//!    against.
//! 2. [`Engine::step`] — the scalar scratch tier. **Steady-state zero heap
//!    allocation**: every per-round buffer lives in [`RoundScratch`],
//!    sized once at spawn and overwritten (never freed) each round.
//!    Delivery is *broadcaster-centric*: each broadcaster scatters into
//!    epoch-stamped reach counters over the frozen CSR adjacency
//!    ([`crate::CsrGraph`]), costing `O(Σ deg(broadcasters))` — on sparse
//!    broadcast schedules (MIS-style contention reduction) far below the
//!    seed's `O(Σ deg(listeners))` scan. Adversary proposals are validated
//!    with an `O(1)`-amortized [`crate::NeighborStamps`] row test.
//! 3. [`Engine::step_bitset`] — the word-packed tier. Delivery ORs each
//!    broadcaster's bitmask row ([`crate::BitRows`], `⌈n/64⌉` words per
//!    node) into carry-save seen/collide accumulators
//!    (`collide |= seen & row; seen |= row`), then overlays the
//!    adversary's activated unreliable edges bit by bit — `O(B·⌈n/64⌉)`
//!    word operations per round, a ~64× narrower inner loop than the
//!    scalar scatter on dense graphs.
//!
//! **Tier selection.** The run loops ([`Engine::run`] and friends) pick
//! between the scalar and bitset tiers once at spawn via
//! [`EngineBuilder::step_mode`]. The default, [`StepMode::Auto`], chooses
//! bitset when the reliable layer's average degree exceeds three row
//! widths (`edge_slots ≥ 3·n·⌈n/64⌉` — the break-even point of the
//! three row passes a bitset round makes against the scalar scatter) and
//! `n` is small enough that the rows' `n·⌈n/64⌉` words stay cache-friendly
//! (`n ≤ 16384`); otherwise the scalar tier runs. Dense workloads
//! (cliques, dense RGGs) land on bitset, sparse ones (paths, bounded
//! degree) on scalar. `step_legacy` is never auto-selected — it exists as
//! the differential reference and benchmark baseline.
//!
//! The scratch invariants:
//!
//! * `msgs`, `broadcasting`, `reach_*` are exactly `n` long from spawn and
//!   are overwritten (not reallocated) every round;
//! * `extra` holds the adversary's proposal; its capacity high-water-marks
//!   after the first few rounds, after which `clear()` frees nothing;
//! * `reach_stamp` equality with the current round epoch marks a listener
//!   as reached this round — stale entries are never cleared, just
//!   outdated, so no `O(n)` zeroing happens between rounds. The epoch
//!   advances **every round**, including broadcaster-less ones, where
//!   stale reach state from earlier rounds must not deliver;
//! * the bitset tier's `bit_seen`/`bit_collide` words are `⌈n/64⌉` long
//!   and cleared (not reallocated) every round — the same
//!   every-round-including-empty rule, enforced by a regression test that
//!   alternates empty and dense broadcast rounds.
//!
//! `BENCH_engine.json` tracks all three tiers' relative throughput
//! PR-over-PR.

use crate::adversary::{Adversary, ReliableOnly};
use crate::detector::LinkDetectorAssignment;
use crate::dynamic::DetectorProvider;
use crate::graph::NeighborStamps;
use crate::ids::{IdAssignment, NodeId, ProcessId};
use crate::network::DualGraph;
use crate::process::{Action, Context, MessageSize, Process, ProcessRng};
use crate::trace::{ExecutionMetrics, RoundRecord, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Errors from assembling an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The id assignment covers a different number of nodes than the network.
    IdSizeMismatch {
        /// Nodes in the network.
        n: usize,
        /// Nodes covered by the assignment.
        ids: usize,
    },
    /// The detector provider covers a different number of nodes.
    DetectorSizeMismatch {
        /// Nodes in the network.
        n: usize,
        /// Nodes covered by the provider.
        detector: usize,
    },
    /// The wake-round vector has the wrong length or contains round 0.
    BadWakeRounds,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::IdSizeMismatch { n, ids } => {
                write!(f, "id assignment covers {ids} nodes, network has {n}")
            }
            EngineError::DetectorSizeMismatch { n, detector } => {
                write!(f, "detector covers {detector} nodes, network has {n}")
            }
            EngineError::BadWakeRounds => {
                write!(f, "wake rounds must have one entry >= 1 per node")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Which delivery tier the run loops step through (see the module docs'
/// *Performance architecture*). `step_legacy` is not selectable — it is
/// the differential reference, not a production tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Resolve to [`StepMode::Scalar`] or [`StepMode::Bitset`] at spawn by
    /// the density rule in the module docs.
    #[default]
    Auto,
    /// Always step through the scalar scratch tier ([`Engine::step`]).
    Scalar,
    /// Always step through the word-packed tier ([`Engine::step_bitset`]).
    Bitset,
}

/// Largest `n` at which [`StepMode::Auto`] may pick the bitset tier: the
/// bitmask rows cost `n·⌈n/64⌉` words (33 MiB at this cap), past which
/// the CSR scatter's cache behavior wins and the million-node direction
/// wants implicit topologies anyway.
const MAX_AUTO_BITSET_N: usize = 16_384;

/// The density rule behind [`StepMode::Auto`]: a bitset round makes three
/// row passes of `⌈n/64⌉` words per broadcaster, so it pays off once the
/// average reliable degree exceeds three row widths.
fn auto_step_mode(net: &DualGraph) -> StepMode {
    let n = net.n();
    let words = n.div_ceil(64);
    if n > 0 && n <= MAX_AUTO_BITSET_N && net.g_csr().edge_slots() >= 3 * n * words {
        StepMode::Bitset
    } else {
        StepMode::Scalar
    }
}

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process reported [`Process::is_done`].
    AllDone,
    /// The caller's predicate returned true.
    Predicate,
    /// The round budget was exhausted first.
    MaxRounds,
}

/// Result of a run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total rounds executed so far (cumulative across run calls).
    pub rounds: u64,
    /// Why the loop stopped.
    pub stop: StopReason,
}

/// Everything a process factory gets to see when instantiating a process.
#[derive(Debug)]
pub struct SpawnInfo<'a> {
    /// The node the process is assigned to.
    pub node: NodeId,
    /// The process's unique id.
    pub id: ProcessId,
    /// Network size `n`.
    pub n: usize,
    /// The process's link detector output at its wake round.
    pub detector: &'a BTreeSet<u32>,
    /// The round the process wakes (1 = synchronous start).
    pub wake_round: u64,
}

/// Builder for [`Engine`]; start with [`EngineBuilder::new`].
pub struct EngineBuilder {
    net: DualGraph,
    ids: Option<IdAssignment>,
    adversary: Box<dyn Adversary>,
    detectors: Option<Box<dyn DetectorProvider>>,
    wake_rounds: Option<Vec<u64>>,
    seed: u64,
    max_message_bits: Option<u64>,
    record_trace: bool,
    step_mode: StepMode,
}

impl EngineBuilder {
    /// Starts building an engine for `net`.
    pub fn new(net: DualGraph) -> Self {
        EngineBuilder {
            net,
            ids: None,
            adversary: Box::new(ReliableOnly),
            detectors: None,
            wake_rounds: None,
            seed: 0,
            max_message_bits: None,
            record_trace: false,
            step_mode: StepMode::Auto,
        }
    }

    /// Sets the process-to-node assignment (default: identity).
    pub fn ids(mut self, ids: IdAssignment) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Sets the reach-set adversary (default: [`ReliableOnly`]).
    pub fn adversary(mut self, a: impl Adversary + 'static) -> Self {
        self.adversary = Box::new(a);
        self
    }

    /// Sets the link detector provider (default: the 0-complete detector for
    /// the network and id assignment).
    pub fn detector(mut self, d: impl DetectorProvider + 'static) -> Self {
        self.detectors = Some(Box::new(d));
        self
    }

    /// Sets per-node wake rounds (default: every node wakes at round 1).
    pub fn wake_rounds(mut self, w: Vec<u64>) -> Self {
        self.wake_rounds = Some(w);
        self
    }

    /// Sets the master seed for process randomness (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enforces a message-size bound `b` in bits; oversize broadcasts are
    /// counted in [`ExecutionMetrics::oversize_messages`].
    pub fn max_message_bits(mut self, b: u64) -> Self {
        self.max_message_bits = Some(b);
        self
    }

    /// Enables per-round trace recording (default: off).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Sets which delivery tier the run loops step through (default:
    /// [`StepMode::Auto`] — resolved by density at spawn). All tiers
    /// produce identical executions; this only selects the implementation.
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Instantiates one process per node via `factory` and assembles the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the id assignment, detector provider, or
    /// wake-round vector does not match the network size.
    pub fn spawn<P, F>(self, mut factory: F) -> Result<Engine<P>, EngineError>
    where
        P: Process,
        F: FnMut(SpawnInfo<'_>) -> P,
    {
        let n = self.net.n();
        let ids = self.ids.unwrap_or_else(|| IdAssignment::identity(n));
        if ids.n() != n {
            return Err(EngineError::IdSizeMismatch { n, ids: ids.n() });
        }
        let detectors: Box<dyn DetectorProvider> = match self.detectors {
            Some(d) => d,
            None => Box::new(LinkDetectorAssignment::zero_complete(&self.net, &ids)),
        };
        if detectors.n() != n {
            return Err(EngineError::DetectorSizeMismatch {
                n,
                detector: detectors.n(),
            });
        }
        let wake_rounds = self.wake_rounds.unwrap_or_else(|| vec![1; n]);
        if wake_rounds.len() != n || wake_rounds.contains(&0) {
            return Err(EngineError::BadWakeRounds);
        }
        // Size the adversary-proposal buffer for the built-in adversaries'
        // worst cases (full unreliable layer, or ≤ 2 edges per listener) so
        // steady state never grows it.
        let extra_capacity = self.net.unreliable_edge_count().max(2 * n);
        // Per-process seeds come from the master StdRng (pinned stream);
        // the per-process generators themselves are the cheap SmallRng —
        // process coins dominate RNG volume at steady state.
        let mut master = StdRng::seed_from_u64(self.seed);
        let rngs = (0..n)
            .map(|_| ProcessRng::seed_from_u64(master.gen()))
            .collect();
        let procs = (0..n)
            .map(|v| {
                factory(SpawnInfo {
                    node: NodeId(v),
                    id: ids.id_of(NodeId(v)),
                    n,
                    detector: detectors.set_at(NodeId(v), wake_rounds[v]),
                    wake_round: wake_rounds[v],
                })
            })
            .collect();
        // A detector that is static from round 1 never changes output:
        // copy its sets once so the per-node, per-round lookup is a plain
        // index instead of a virtual call.
        let static_sets = if detectors.stabilization_round() == Some(1) {
            Some(
                (0..n)
                    .map(|v| detectors.set_at(NodeId(v), 1).clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        let mode = match self.step_mode {
            StepMode::Auto => auto_step_mode(&self.net),
            m => m,
        };
        if mode == StepMode::Bitset {
            // Build (and cache on the network) the bitmask rows up front,
            // so the hot loop never pays the one-time cost mid-run.
            self.net.g_bit_rows();
        }
        Ok(Engine {
            net: self.net,
            ids,
            procs,
            adversary: self.adversary,
            detectors,
            wake_rounds,
            rngs,
            round: 0,
            metrics: ExecutionMetrics::default(),
            trace: if self.record_trace {
                Some(Trace::new())
            } else {
                None
            },
            max_message_bits: self.max_message_bits,
            decided_round: vec![None; n],
            static_sets,
            mode,
            scratch: RoundScratch::new(n, extra_capacity),
        })
    }
}

/// Reusable per-round buffers of the engine (see the module docs for the
/// invariants). Sized once at spawn; `step()` only overwrites.
struct RoundScratch<M> {
    /// This round's decisions, indexed by node. Only current-round
    /// broadcasters' slots are meaningful; idle slots go stale (never
    /// read, never cleared).
    msgs: Vec<Option<M>>,
    /// Whether each node broadcast this round.
    broadcasting: Vec<bool>,
    /// The nodes that broadcast this round, in node order.
    broadcasters: Vec<u32>,
    /// The adversary's proposed unreliable edges, normalized/filtered in
    /// place each round.
    extra: Vec<(usize, usize)>,
    /// Row tester validating proposals against `E' \ E` in `O(1)` amortized.
    unreliable_rows: NeighborStamps,
    /// Monotone round epoch for the reach counters below; stale entries are
    /// outdated by the bump, never cleared.
    epoch: u64,
    /// Last epoch in which each listener was reached by any broadcaster.
    reach_stamp: Vec<u64>,
    /// Reachable-broadcaster count per listener (valid iff stamp == epoch).
    reach_count: Vec<u32>,
    /// First reachable broadcaster per listener (valid iff stamp == epoch).
    /// The bitset tier reuses it as its delivering-source array: whenever a
    /// listener's seen bit is set cleanly, the slot holds the sender.
    reach_first: Vec<u32>,
    /// Bitset tier: listeners reached at least once this round, one bit
    /// per node. Cleared (never reallocated) every round.
    bit_seen: Vec<u64>,
    /// Bitset tier: listeners reached at least twice this round (the
    /// carry-save "seen twice" half of the pair).
    bit_collide: Vec<u64>,
}

impl<M> RoundScratch<M> {
    fn new(n: usize, extra_capacity: usize) -> Self {
        RoundScratch {
            msgs: (0..n).map(|_| None).collect(),
            broadcasting: vec![false; n],
            broadcasters: Vec::with_capacity(n),
            extra: Vec::with_capacity(extra_capacity),
            unreliable_rows: NeighborStamps::new(n),
            epoch: 0,
            reach_stamp: vec![0; n],
            reach_count: vec![0; n],
            reach_first: vec![0; n],
            bit_seen: vec![0; n.div_ceil(64)],
            bit_collide: vec![0; n.div_ceil(64)],
        }
    }
}

/// Executes an algorithm on a dual graph network, round by round.
///
/// # Examples
///
/// Run a trivial one-round algorithm in which everyone immediately outputs:
///
/// ```
/// use radio_sim::{Action, Context, DualGraph, EngineBuilder, Graph, Process};
///
/// struct Silent(Option<bool>);
/// impl Process for Silent {
///     type Msg = ();
///     fn decide(&mut self, _: &mut Context<'_>) -> Action<()> {
///         self.0 = Some(false);
///         Action::Idle
///     }
///     fn receive(&mut self, _: &mut Context<'_>, _: Option<&()>) {}
///     fn output(&self) -> Option<bool> { self.0 }
/// }
///
/// let net = DualGraph::classic(Graph::from_edges(2, [(0, 1)])?)?;
/// let mut engine = EngineBuilder::new(net).spawn(|_| Silent(None))?;
/// let outcome = engine.run(10);
/// assert_eq!(outcome.rounds, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine<P: Process> {
    net: DualGraph,
    ids: IdAssignment,
    procs: Vec<P>,
    adversary: Box<dyn Adversary>,
    detectors: Box<dyn DetectorProvider>,
    wake_rounds: Vec<u64>,
    rngs: Vec<ProcessRng>,
    round: u64,
    metrics: ExecutionMetrics,
    trace: Option<Trace>,
    max_message_bits: Option<u64>,
    decided_round: Vec<Option<u64>>,
    /// Detector sets copied at spawn when the provider is static (see
    /// [`EngineBuilder::spawn`]); `None` for genuinely dynamic detectors.
    static_sets: Option<Vec<BTreeSet<u32>>>,
    /// The resolved delivery tier the run loops step through (never
    /// [`StepMode::Auto`] after spawn).
    mode: StepMode,
    scratch: RoundScratch<P::Msg>,
}

/// The detector set of node `v` at round `r` — a plain index for static
/// detectors, the provider call otherwise. A free function over the two
/// fields so callers keep disjoint borrows of the rest of the engine.
#[inline]
fn detector_set<'a>(
    static_sets: &'a Option<Vec<BTreeSet<u32>>>,
    detectors: &'a dyn DetectorProvider,
    v: usize,
    r: u64,
) -> &'a BTreeSet<u32> {
    match static_sets {
        Some(sets) => &sets[v],
        None => detectors.set_at(NodeId(v), r),
    }
}

impl<P: Process> Engine<P> {
    /// Executes one synchronous round.
    ///
    /// Allocation-free in steady state: all per-round buffers live in the
    /// engine's scratch (see the module docs). Deliveries are computed by
    /// scattering each broadcaster's CSR neighborhood into epoch-stamped
    /// reach counters, `O(Σ deg(broadcasters) + extra edges + n)` per round.
    pub fn step(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides. Idle nodes' `msgs` slots
        // are left stale on purpose: delivery only ever dereferences the
        // slot of a *current-round* broadcaster (via `reach_first`), and
        // those slots are freshly written below.
        self.scratch.broadcasters.clear();
        for v in 0..n {
            if self.wake_rounds[v] > r {
                self.scratch.broadcasting[v] = false;
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => {
                    self.scratch.broadcasting[v] = false;
                }
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    self.scratch.broadcasting[v] = true;
                    self.scratch.broadcasters.push(v as u32);
                    self.scratch.msgs[v] = Some(m);
                }
            }
        }
        let broadcaster_count = self.scratch.broadcasters.len() as u32;

        // Phase 2: the adversary picks the round's unreliable reach edges.
        // Normalize, dedupe, then validate against E' \ E — one stamped row
        // load per distinct endpoint instead of a binary search per edge.
        self.scratch.extra.clear();
        self.adversary.extra_edges(
            r,
            &self.net,
            &self.scratch.broadcasting,
            &mut self.scratch.extra,
        );
        // With a trace recording, the full proposal must be normalized,
        // deduped, and validated up front so the recorded `extra_edges`
        // count matches the legacy engine exactly. Without one, only edges
        // with exactly one broadcasting endpoint are observable (they
        // alone can affect delivery), so all per-edge work happens in the
        // single fused scatter pass below.
        let tracing = self.trace.is_some();
        if tracing {
            for e in &mut self.scratch.extra {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            }
            self.sort_validate_extra(n);
        }
        let extra_count = self.scratch.extra.len() as u32;

        // Phase 3: reach. Each broadcaster scatters its CSR row into the
        // stamped counters; activated unreliable edges then add their
        // endpoints in a fused pass (incidence filter, duplicate skip,
        // `E' \ E` validation, bump — one traversal, no buffer writes).
        // The fused pass assumes the proposal is normalized and strictly
        // sorted, which holds for every built-in adversary; if a proposal
        // violates that, the pass aborts, the epoch bump discards all
        // partial reach state, and one retry runs on the sorted list.
        // The epoch advances every round — including broadcaster-less ones,
        // where stale reach state from earlier rounds must not deliver.
        self.scratch.epoch += 1;
        if broadcaster_count > 0 {
            let mut attempt = 0;
            loop {
                attempt += 1;
                if attempt > 1 {
                    self.scratch.epoch += 1;
                }
                let epoch = self.scratch.epoch;
                let csr_g = self.net.g_csr();
                for i in 0..self.scratch.broadcasters.len() {
                    let u = self.scratch.broadcasters[i] as usize;
                    for &v in csr_g.neighbors(u) {
                        let vi = v as usize;
                        if self.scratch.reach_stamp[vi] != epoch {
                            self.scratch.reach_stamp[vi] = epoch;
                            self.scratch.reach_count[vi] = 1;
                            self.scratch.reach_first[vi] = u as u32;
                        } else {
                            self.scratch.reach_count[vi] += 1;
                        }
                    }
                }
                let unreliable = self.net.unreliable_csr();
                let RoundScratch {
                    extra,
                    unreliable_rows,
                    broadcasting,
                    reach_stamp,
                    reach_count,
                    reach_first,
                    ..
                } = &mut self.scratch;
                let strict = attempt == 1;
                let mut loaded = usize::MAX;
                // Ordering/duplicate tracking only needs to cover pairs
                // that bump a counter, so the cheap incidence test runs
                // first and skips ~all proposals in one compare. (0, 0) is
                // below every normalized pair, so it works as "no prev".
                let mut prev = (0usize, 0usize);
                let mut disorder = false;
                for &(a, b) in extra.iter() {
                    if a >= n || b >= n {
                        continue;
                    }
                    // Also drops self-loops (equal flags on both sides).
                    if broadcasting[a] == broadcasting[b] {
                        continue;
                    }
                    let (u, v) = if a < b { (a, b) } else { (b, a) };
                    if strict {
                        if prev >= (u, v) {
                            // Out-of-order or duplicate among counted
                            // pairs: redo on the sorted list.
                            disorder = true;
                            break;
                        }
                        prev = (u, v);
                    }
                    if !tracing {
                        if loaded != u {
                            unreliable_rows.load_row(unreliable, u);
                            loaded = u;
                        }
                        if !unreliable_rows.contains(v) {
                            continue;
                        }
                    }
                    let (from, to) = if broadcasting[u] { (u, v) } else { (v, u) };
                    if reach_stamp[to] != epoch {
                        reach_stamp[to] = epoch;
                        reach_count[to] = 1;
                        reach_first[to] = from as u32;
                    } else {
                        reach_count[to] += 1;
                    }
                }
                if !disorder {
                    break;
                }
                for e in extra.iter_mut() {
                    if e.0 > e.1 {
                        *e = (e.1, e.0);
                    }
                }
                extra.sort_unstable();
                extra.dedup();
            }
        }

        // Delivery: exactly one reachable broadcaster => message; otherwise
        // ⊥. Sleeping nodes neither broadcast nor receive.
        let epoch = self.scratch.epoch;
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        for v in 0..n {
            if self.wake_rounds[v] > r || self.scratch.broadcasting[v] {
                continue;
            }
            let reach = if self.scratch.reach_stamp[v] == epoch {
                self.scratch.reach_count[v]
            } else {
                0
            };
            let delivered = if reach == 1 {
                deliveries += 1;
                Some(self.scratch.reach_first[v] as usize)
            } else {
                if reach >= 2 {
                    collisions += 1;
                }
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| self.scratch.msgs[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }

    /// The seed implementation of [`Engine::step`], kept verbatim as the
    /// reference for differential (golden-trace) testing and as the
    /// baseline side of `BENCH_engine.json`. Allocates its per-round
    /// buffers and scans every listener's full neighborhood; produces
    /// executions identical to [`Engine::step`] for the same seed.
    #[allow(clippy::needless_range_loop)] // kept structurally verbatim
    pub fn step_legacy(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides.
        let mut messages: Vec<Option<P::Msg>> = Vec::with_capacity(n);
        let mut broadcasting = vec![false; n];
        for v in 0..n {
            if self.wake_rounds[v] > r {
                messages.push(None);
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => messages.push(None),
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    broadcasting[v] = true;
                    messages.push(Some(m));
                }
            }
        }

        // Phase 2: the adversary picks the round's unreliable reach edges.
        self.scratch.extra.clear();
        self.adversary
            .extra_edges(r, &self.net, &broadcasting, &mut self.scratch.extra);
        // Defensive filtering: keep only genuine unreliable edges, dedupe.
        let net = &self.net;
        self.scratch
            .extra
            .retain(|&(u, v)| u < n && v < n && net.is_unreliable_edge(u, v));
        for e in &mut self.scratch.extra {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.scratch.extra.sort_unstable();
        self.scratch.extra.dedup();
        let extra_count = self.scratch.extra.len() as u32;

        // Per-listener extra reach: broadcasters connected by an activated
        // unreliable edge.
        let mut extra_from: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &self.scratch.extra {
            if broadcasting[u] && !broadcasting[v] {
                extra_from[v].push(u);
            }
            if broadcasting[v] && !broadcasting[u] {
                extra_from[u].push(v);
            }
        }

        // Phase 3: delivery. Exactly one reachable broadcaster => message;
        // otherwise ⊥. Sleeping nodes neither broadcast nor receive.
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        for v in 0..n {
            if self.wake_rounds[v] > r || broadcasting[v] {
                continue;
            }
            let mut reach = extra_from[v].len();
            let mut the_one = extra_from[v].first().copied();
            for &u in self.net.g().neighbors(v) {
                if broadcasting[u] {
                    reach += 1;
                    if the_one.is_none() {
                        the_one = Some(u);
                    }
                    if reach >= 2 {
                        break;
                    }
                }
            }
            let delivered = if reach == 1 {
                deliveries += 1;
                the_one
            } else {
                if reach >= 2 {
                    collisions += 1;
                }
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| messages[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        let broadcaster_count = broadcasting.iter().filter(|&&b| b).count() as u32;
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }

    /// Executes one synchronous round through the word-packed delivery
    /// tier (see the module docs' *Performance architecture*).
    ///
    /// Produces executions identical to [`Engine::step`] — same decide and
    /// receive call order (hence the same per-process RNG streams), same
    /// traces, transcripts, metrics, and outputs — for every adversary,
    /// including malformed proposals; the golden-trace differential tests
    /// pin the equivalence exactly the way `step` is pinned to
    /// [`Engine::step_legacy`].
    ///
    /// Reach is computed as a carry-save bit pair over `⌈n/64⌉`-word
    /// bitmask rows: for each broadcaster row,
    /// `collide |= seen & row; seen |= row` — one-bit saturating counters
    /// distinguishing "reached once" (clean delivery) from "reached twice
    /// or more" (collision), which is all the model's delivery rule needs.
    /// The adversary's activated unreliable edges overlay single bits, and
    /// a second row pass records each cleanly reached listener's unique
    /// source. Cost: `O(B·⌈n/64⌉ + extra + n)` word operations per round
    /// for `B` broadcasters.
    ///
    /// Allocation-free in steady state. The bitmask rows are built (and
    /// cached on the network) at spawn for engines resolved to
    /// [`StepMode::Bitset`], or on the first call otherwise.
    pub fn step_bitset(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides — identical to `step`, so
        // the RNG streams and broadcast metrics stay in lockstep.
        self.scratch.broadcasters.clear();
        for v in 0..n {
            if self.wake_rounds[v] > r {
                self.scratch.broadcasting[v] = false;
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => {
                    self.scratch.broadcasting[v] = false;
                }
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    self.scratch.broadcasting[v] = true;
                    self.scratch.broadcasters.push(v as u32);
                    self.scratch.msgs[v] = Some(m);
                }
            }
        }
        let broadcaster_count = self.scratch.broadcasters.len() as u32;

        // Phase 2: the adversary picks the round's unreliable reach edges.
        // The bitset path always normalizes, sorts, dedupes, and validates
        // the proposal up front: partial carry-save updates cannot be
        // rolled back the way the scalar path's epoch bump discards a
        // failed fused pass, and built-in adversaries emit near-sorted
        // lists so the allocation-free `sort_unstable` is cheap.
        self.scratch.extra.clear();
        self.adversary.extra_edges(
            r,
            &self.net,
            &self.scratch.broadcasting,
            &mut self.scratch.extra,
        );
        for e in &mut self.scratch.extra {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.sort_validate_extra(n);
        let extra_count = self.scratch.extra.len() as u32;

        // Phase 3: carry-save reach. seen/collide are cleared every round
        // — including broadcaster-less ones, where stale bits from an
        // earlier round must not deliver (the phantom-delivery bug class
        // the scalar path's unconditional epoch bump guards against).
        let words = n.div_ceil(64);
        self.scratch.bit_seen[..words].fill(0);
        self.scratch.bit_collide[..words].fill(0);
        if broadcaster_count > 0 {
            let rows = self.net.g_bit_rows();
            let RoundScratch {
                broadcasters,
                broadcasting,
                extra,
                bit_seen,
                bit_collide,
                reach_first,
                ..
            } = &mut self.scratch;
            for &u in broadcasters.iter() {
                let row = rows.row(u as usize);
                for w in 0..words {
                    bit_collide[w] |= bit_seen[w] & row[w];
                    bit_seen[w] |= row[w];
                }
            }
            // Unreliable overlay: each validated activated edge with
            // exactly one broadcasting endpoint adds a single bit (the
            // equality test also drops both-broadcasting pairs). E' \ E is
            // disjoint from E, so an extra edge never double-counts a row
            // delivery from the same broadcaster.
            for &(a, b) in extra.iter() {
                if broadcasting[a] == broadcasting[b] {
                    continue;
                }
                let (from, to) = if broadcasting[a] { (a, b) } else { (b, a) };
                let (w, bit) = (to >> 6, 1u64 << (to & 63));
                if bit_seen[w] & bit != 0 {
                    bit_collide[w] |= bit;
                } else {
                    bit_seen[w] |= bit;
                    reach_first[to] = from as u32;
                }
            }
            // Second row pass: record the delivering source of every
            // cleanly row-reached listener. A clean bit has exactly one
            // reaching broadcaster (a second row or extra hit would have
            // set collide), so exactly one row writes each slot.
            for &u in broadcasters.iter() {
                let row = rows.row(u as usize);
                for w in 0..words {
                    let mut hits = row[w] & bit_seen[w] & !bit_collide[w];
                    while hits != 0 {
                        let v = (w << 6) | hits.trailing_zeros() as usize;
                        reach_first[v] = u;
                        hits &= hits - 1;
                    }
                }
            }
        }

        // Delivery: read each listener's bit pair — collide => ⊥ with a
        // collision counted, seen => the recorded source's message,
        // neither => silence. Same receive-call order as `step`.
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        for v in 0..n {
            if self.wake_rounds[v] > r || self.scratch.broadcasting[v] {
                continue;
            }
            let (w, bit) = (v >> 6, 1u64 << (v & 63));
            let delivered = if self.scratch.bit_collide[w] & bit != 0 {
                collisions += 1;
                None
            } else if self.scratch.bit_seen[w] & bit != 0 {
                deliveries += 1;
                Some(self.scratch.reach_first[v] as usize)
            } else {
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| self.scratch.msgs[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }

    /// Sorts, dedupes, and validates the (already normalized) proposal in
    /// place — the full pass the tracing path needs so its recorded
    /// `extra_edges` count matches the legacy engine.
    fn sort_validate_extra(&mut self, n: usize) {
        self.scratch.extra.sort_unstable();
        self.scratch.extra.dedup();
        let unreliable = self.net.unreliable_csr();
        let RoundScratch {
            extra,
            unreliable_rows,
            ..
        } = &mut self.scratch;
        let mut loaded = usize::MAX;
        extra.retain(|&(u, v)| {
            u < n && v < n && {
                if loaded != u {
                    unreliable_rows.load_row(unreliable, u);
                    loaded = u;
                }
                unreliable_rows.contains(v)
            }
        });
    }

    /// Shared end-of-round bookkeeping: aggregate metrics, first-output
    /// rounds, and the optional trace record.
    fn finish_round(
        &mut self,
        r: u64,
        broadcasters: u32,
        deliveries: u32,
        collisions: u32,
        extra_edges: u32,
    ) {
        self.metrics.deliveries += u64::from(deliveries);
        self.metrics.collisions += u64::from(collisions);
        for v in 0..self.decided_round.len() {
            if self.decided_round[v].is_none() && self.procs[v].output().is_some() {
                self.decided_round[v] = Some(r);
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(RoundRecord {
                round: r,
                broadcasters,
                deliveries,
                collisions,
                extra_edges,
            });
        }
    }

    /// Runs until every process is done or `max_rounds` total rounds have
    /// been executed.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        self.run_until(max_rounds, |_| false)
    }

    /// Runs until every process is done, the predicate over the process
    /// array returns true, or the budget is exhausted — whichever first.
    pub fn run_until(&mut self, max_rounds: u64, mut pred: impl FnMut(&[P]) -> bool) -> RunOutcome {
        loop {
            if self.procs.iter().all(Process::is_done) {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::AllDone,
                };
            }
            if pred(&self.procs) {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::Predicate,
                };
            }
            if self.round >= max_rounds {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::MaxRounds,
                };
            }
            self.step_selected();
        }
    }

    /// Runs exactly `rounds` additional rounds (regardless of outputs).
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_selected();
        }
    }

    /// One round through the tier resolved at spawn (see [`StepMode`]).
    #[inline]
    fn step_selected(&mut self) {
        match self.mode {
            StepMode::Bitset => self.step_bitset(),
            _ => self.step(),
        }
    }

    /// The delivery tier the run loops step through, resolved at spawn
    /// (never [`StepMode::Auto`]).
    pub fn step_mode(&self) -> StepMode {
        self.mode
    }

    /// The network being simulated.
    pub fn net(&self) -> &DualGraph {
        &self.net
    }

    /// The process-to-node assignment.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// The processes, indexed by node.
    pub fn procs(&self) -> &[P] {
        &self.procs
    }

    /// Mutable access to the processes (used by wrappers such as the
    /// continuous CCDS that restart protocols between runs).
    pub fn procs_mut(&mut self) -> &mut [P] {
        &mut self.procs
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Aggregate execution counters.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Outputs by node (`None` while undecided).
    pub fn outputs(&self) -> Vec<Option<bool>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// The first round at which node `v` had an output, if it has one.
    pub fn decided_round(&self, v: NodeId) -> Option<u64> {
        self.decided_round[v.index()]
    }

    /// Latest first-output round across nodes that have decided; `None` if
    /// any node is still undecided.
    pub fn all_decided_round(&self) -> Option<u64> {
        self.decided_round
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Per-node rounds-from-wake until first output (Section 9's complexity
    /// measure); `None` for undecided nodes.
    pub fn decided_latency(&self, v: NodeId) -> Option<u64> {
        self.decided_round[v.index()].map(|r| r - self.wake_rounds[v.index()] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Broadcasts its id every round, never outputs.
    struct Chatter;
    impl Process for Chatter {
        type Msg = u32;
        fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            Action::Broadcast(ctx.my_id.get())
        }
        fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
        fn output(&self) -> Option<bool> {
            None
        }
    }

    /// Listens forever, recording what it hears.
    struct Listener {
        heard: Vec<Option<u32>>,
    }
    impl Process for Listener {
        type Msg = u32;
        fn decide(&mut self, _: &mut Context<'_>) -> Action<u32> {
            Action::Idle
        }
        fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
            self.heard.push(msg.copied());
        }
        fn output(&self) -> Option<bool> {
            None
        }
    }

    enum Node {
        Chatter(Chatter),
        Listener(Listener),
    }
    impl Process for Node {
        type Msg = u32;
        fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            match self {
                Node::Chatter(c) => c.decide(ctx),
                Node::Listener(l) => l.decide(ctx),
            }
        }
        fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&u32>) {
            match self {
                Node::Chatter(c) => c.receive(ctx, msg),
                Node::Listener(l) => l.receive(ctx, msg),
            }
        }
        fn output(&self) -> Option<bool> {
            None
        }
    }

    fn star_net() -> DualGraph {
        // 0 is the hub; 1, 2, 3 are leaves. No unreliable edges.
        DualGraph::classic(Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap()).unwrap()
    }

    #[test]
    fn single_broadcaster_delivers() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .record_trace(true)
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        // Node 0 (hub) hears node 1's message; nodes 2 and 3 are not
        // adjacent to 1 and hear silence.
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(2)]), // process id of node 1
            _ => panic!("node 0 should listen"),
        }
        match &e.procs()[2] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        assert_eq!(e.metrics().deliveries, 1);
        assert_eq!(e.metrics().collisions, 0);
        assert_eq!(e.trace().unwrap().rounds[0].broadcasters, 1);
    }

    #[test]
    fn two_broadcasters_collide_at_hub() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .spawn(|info| {
                if info.node.index() == 1 || info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        assert_eq!(e.metrics().collisions, 1);
    }

    #[test]
    fn unreliable_edge_silent_under_reliable_only() {
        // G: path 0-1; G' adds (0, 2)... need G connected over 3 nodes.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        let net = DualGraph::new(g, gp).unwrap();
        let mut e = EngineBuilder::new(net)
            .spawn(|info| {
                if info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        // Node 0 must not hear node 2 over the (inactive) unreliable edge.
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        // Node 1 hears node 2 over the reliable edge.
        match &e.procs()[1] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(3)]),
            _ => panic!(),
        }
    }

    #[test]
    fn unreliable_edge_delivers_under_all_unreliable() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        let net = DualGraph::new(g, gp).unwrap();
        let mut e = EngineBuilder::new(net)
            .adversary(crate::adversary::AllUnreliable)
            .spawn(|info| {
                if info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(3)]),
            _ => panic!(),
        }
    }

    #[test]
    fn sleeping_nodes_neither_send_nor_receive() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .wake_rounds(vec![1, 1, 3, 1])
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.run_rounds(2);
        match &e.procs()[2] {
            // Asleep for rounds 1-2: no receptions recorded.
            Node::Listener(l) => assert!(l.heard.is_empty()),
            _ => panic!(),
        }
        e.step();
        match &e.procs()[2] {
            // Awake from round 3; hears silence (not adjacent to node 1).
            Node::Listener(l) => assert_eq!(l.heard.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn oversize_messages_counted() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .max_message_bits(16)
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter) // u32 message: 32 bits > 16
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        assert_eq!(e.metrics().oversize_messages, 1);
    }

    #[test]
    fn builder_validation() {
        let net = star_net();
        let err = EngineBuilder::new(net)
            .wake_rounds(vec![1, 2])
            .spawn(|_| Node::Chatter(Chatter));
        assert!(matches!(err.map(|_| ()), Err(EngineError::BadWakeRounds)));
    }

    #[test]
    fn determinism_under_same_seed() {
        // Random chatters: same seed => same trace.
        struct Coin;
        impl Process for Coin {
            type Msg = u32;
            fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast(ctx.my_id.get())
                } else {
                    Action::Idle
                }
            }
            fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
            fn output(&self) -> Option<bool> {
                None
            }
        }
        let run = |seed| {
            let mut e = EngineBuilder::new(star_net())
                .seed(seed)
                .record_trace(true)
                .spawn(|_| Coin)
                .unwrap();
            e.run_rounds(50);
            e.trace().unwrap().clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn auto_mode_resolves_by_density() {
        // Dense: a 256-clique has edge_slots = 256·255 ≫ 3·256·4 words.
        let clique = DualGraph::classic(Graph::complete(256)).unwrap();
        let dense = EngineBuilder::new(clique)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(dense.step_mode(), StepMode::Bitset);

        // Sparse: a path has avg degree ~2, far under the 3-words-per-node
        // break-even, so the scalar scatter stays selected.
        let edges: Vec<_> = (0..255).map(|i| (i, i + 1)).collect();
        let path = DualGraph::classic(Graph::from_edges(256, edges).unwrap()).unwrap();
        let sparse = EngineBuilder::new(path)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(sparse.step_mode(), StepMode::Scalar);

        // Explicit overrides win over the density rule.
        let forced = EngineBuilder::new(DualGraph::classic(Graph::complete(64)).unwrap())
            .step_mode(StepMode::Scalar)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(forced.step_mode(), StepMode::Scalar);
    }

    #[test]
    fn bitset_tier_matches_scalar() {
        // Random chatters over a clique with unreliable chords: the two
        // tiers must produce identical traces and transcripts. (The broad
        // differential suite lives in tests/determinism.rs; this is the
        // in-crate smoke.)
        struct Coin {
            heard: Vec<Option<u32>>,
        }
        impl Process for Coin {
            type Msg = u32;
            fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
                if ctx.rng.gen_bool(0.3) {
                    Action::Broadcast(ctx.my_id.get())
                } else {
                    Action::Idle
                }
            }
            fn receive(&mut self, _: &mut Context<'_>, m: Option<&u32>) {
                self.heard.push(m.copied());
            }
            fn output(&self) -> Option<bool> {
                None
            }
        }
        let net = || {
            // G: dense circulant (70 nodes, offsets 1..=20, degree 40);
            // G': the full clique, so E' \ E is a real unreliable layer.
            let mut edges = Vec::new();
            for i in 0..70usize {
                for d in 1..=20 {
                    edges.push((i, (i + d) % 70));
                }
            }
            let g = Graph::from_edges(70, edges).unwrap();
            DualGraph::new(g, Graph::complete(70)).unwrap()
        };
        let run = |mode| {
            let mut e = EngineBuilder::new(net())
                .seed(5)
                .adversary(crate::adversary::AllUnreliable)
                .record_trace(true)
                .step_mode(mode)
                .spawn(|_| Coin { heard: Vec::new() })
                .unwrap();
            e.run_rounds(40);
            let heard: Vec<_> = e.procs().iter().map(|p| p.heard.clone()).collect();
            (e.trace().unwrap().clone(), heard, *e.metrics())
        };
        assert_eq!(run(StepMode::Scalar), run(StepMode::Bitset));
    }
}
