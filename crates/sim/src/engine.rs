//! The synchronous execution engine for dual graph radio networks.
//!
//! Each round the engine: (1) asks every awake process for an action; (2)
//! lets the adversary pick the round's reach set (all of `E` plus chosen
//! unreliable edges); (3) applies the model's delivery rule — a listener
//! receives a message iff *exactly one* reachable neighbor broadcast,
//! otherwise it observes `⊥` (there is no collision detection); broadcasters
//! receive only their own message. Processes that start asynchronously
//! (Section 9) are simply not scheduled before their wake round.
//!
//! Executions are deterministic given the engine seed: every process gets a
//! private RNG derived from it, and adversaries carry their own seeds.
//!
//! # Performance architecture
//!
//! Stepping is the hot path of every experiment, and it comes in **four
//! tiers**, each differentially pinned to the one below it by golden-trace
//! tests (identical traces, transcripts, metrics, and outputs for the same
//! seed):
//!
//! 1. [`Engine::step_legacy`] — the seed implementation, kept verbatim.
//!    Allocates per-round buffers and scans every listener's full
//!    neighborhood; the reference everything else is measured and tested
//!    against.
//! 2. [`Engine::step`] — the scalar scratch tier. **Steady-state zero heap
//!    allocation**: every per-round buffer lives in [`RoundScratch`],
//!    sized once at spawn and overwritten (never freed) each round.
//!    Delivery is *broadcaster-centric*: each broadcaster scatters into
//!    epoch-stamped reach counters over the frozen CSR adjacency
//!    ([`crate::CsrGraph`]), costing `O(Σ deg(broadcasters))` — on sparse
//!    broadcast schedules (MIS-style contention reduction) far below the
//!    seed's `O(Σ deg(listeners))` scan. Adversary proposals are validated
//!    with an `O(1)`-amortized [`crate::NeighborStamps`] row test.
//! 3. [`Engine::step_bitset`] — the word-packed tier. Delivery ORs each
//!    broadcaster's bitmask row ([`crate::BitRows`], `⌈n/64⌉` words per
//!    node) into carry-save seen/collide accumulators
//!    (`collide |= seen & row; seen |= row`), then overlays the
//!    adversary's activated unreliable edges bit by bit — `O(B·⌈n/64⌉)`
//!    word operations per round, a ~64× narrower inner loop than the
//!    scalar scatter on dense graphs.
//! 4. [`Engine::step_batched`] / [`BatchedEngine`] — the multi-trial
//!    tier. A [`BatchedEngine`] steps `B` independent trials of the same
//!    topology one round at a time over **struct-of-arrays** reach state:
//!    each trial's seen/collide planes are contiguous `⌈n/64⌉`-word
//!    stripes in one flat buffer, and delivery runs node-major — every
//!    node broadcasting in at least one trial has its bitmask row fetched
//!    **once** and carry-saved into every broadcasting trial's plane
//!    while the row is hot in cache, amortizing row traffic across the
//!    batch the way an inference stack amortizes weight fetches. The
//!    decide/receive phases stay strictly per-trial (each trial's private
//!    RNG streams are drawn in exactly the order `step_bitset` draws
//!    them), so every trial's trace, transcript, metrics, and outputs are
//!    bit-identical to its solo run. [`Engine::step_batched`] is the
//!    tier's batch-of-one face: the same phase helpers over a single
//!    plane pair.
//!
//! **Tier selection.** The run loops ([`Engine::run`] and friends) pick
//! between the scalar and bitset tiers once at spawn via
//! [`EngineBuilder::step_mode`]. The default, [`StepMode::Auto`], chooses
//! bitset when the reliable layer's average degree exceeds three row
//! widths (`edge_slots ≥ 3·n·⌈n/64⌉` — the break-even point of the
//! three row passes a bitset round makes against the scalar scatter,
//! computed with checked arithmetic so a pathological `n` can never wrap
//! the product and mis-select a tier) and `n` is small enough that the
//! rows' `n·⌈n/64⌉` words stay cache-friendly (`n ≤ 16384`); otherwise
//! the scalar tier runs. Dense workloads (cliques, dense RGGs) land on
//! bitset, sparse ones (paths, bounded degree) on scalar. `step_legacy`
//! is never auto-selected — it exists as the differential reference and
//! benchmark baseline.
//!
//! `Auto` never resolves a *single* engine to the batched tier: batching
//! is a property of a trial set, not of one engine, so the batch-level
//! selection lives in [`BatchedEngine::run_all`] — handed a run of ≥ 2
//! same-topology trials whose engines resolved to the bitset tier (dense
//! nets), it steps them through one [`BatchedEngine`]; anything else
//! falls back to per-trial solo runs. `run_trials_batched`-style sweep
//! harnesses route whole cells of trials through it, so registry sweeps
//! and user specs benefit with zero spec changes.
//!
//! The scratch invariants:
//!
//! * `msgs`, `broadcasting`, `reach_*` are exactly `n` long from spawn and
//!   are overwritten (not reallocated) every round;
//! * `extra` holds the adversary's proposal; its capacity high-water-marks
//!   after the first few rounds, after which `clear()` frees nothing;
//! * `reach_stamp` equality with the current round epoch marks a listener
//!   as reached this round — stale entries are never cleared, just
//!   outdated, so no `O(n)` zeroing happens between rounds. The epoch
//!   advances **every round**, including broadcaster-less ones, where
//!   stale reach state from earlier rounds must not deliver;
//! * the bitset tier's `bit_seen`/`bit_collide` words are `⌈n/64⌉` long
//!   and cleared (not reallocated) every round — the same
//!   every-round-including-empty rule, enforced by a regression test that
//!   alternates empty and dense broadcast rounds.
//!
//! `BENCH_engine.json` tracks all three tiers' relative throughput
//! PR-over-PR.

use crate::adversary::{Adversary, ReliableOnly};
use crate::detector::LinkDetectorAssignment;
use crate::dynamic::DetectorProvider;
use crate::graph::{BitRows, NeighborStamps};
use crate::ids::{IdAssignment, NodeId, ProcessId};
use crate::network::DualGraph;
use crate::process::{Action, Context, MessageSize, Process, ProcessRng};
use crate::trace::{ExecutionMetrics, RoundRecord, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Errors from assembling an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The id assignment covers a different number of nodes than the network.
    IdSizeMismatch {
        /// Nodes in the network.
        n: usize,
        /// Nodes covered by the assignment.
        ids: usize,
    },
    /// The detector provider covers a different number of nodes.
    DetectorSizeMismatch {
        /// Nodes in the network.
        n: usize,
        /// Nodes covered by the provider.
        detector: usize,
    },
    /// The wake-round vector has the wrong length or contains round 0.
    BadWakeRounds,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::IdSizeMismatch { n, ids } => {
                write!(f, "id assignment covers {ids} nodes, network has {n}")
            }
            EngineError::DetectorSizeMismatch { n, detector } => {
                write!(f, "detector covers {detector} nodes, network has {n}")
            }
            EngineError::BadWakeRounds => {
                write!(f, "wake rounds must have one entry >= 1 per node")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Which delivery tier the run loops step through (see the module docs'
/// *Performance architecture*). `step_legacy` is not selectable — it is
/// the differential reference, not a production tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Resolve to [`StepMode::Scalar`] or [`StepMode::Bitset`] at spawn by
    /// the density rule in the module docs.
    #[default]
    Auto,
    /// Always step through the scalar scratch tier ([`Engine::step`]).
    Scalar,
    /// Always step through the word-packed tier ([`Engine::step_bitset`]).
    Bitset,
    /// Always step through the batched tier's single-trial path
    /// ([`Engine::step_batched`]). Multi-trial batching itself lives in
    /// [`BatchedEngine`]; [`StepMode::Auto`] never resolves a lone engine
    /// here — the batch-level selection happens in
    /// [`BatchedEngine::run_all`].
    Batched,
}

/// Largest `n` at which [`StepMode::Auto`] may pick the bitset tier: the
/// bitmask rows cost `n·⌈n/64⌉` words (33 MiB at this cap), past which
/// the CSR scatter's cache behavior wins and the million-node direction
/// wants implicit topologies anyway.
const MAX_AUTO_BITSET_N: usize = 16_384;

/// The bitset tier's break-even edge-slot threshold, `3·n·⌈n/64⌉`, or
/// `None` when the product would overflow `usize`. An overflowing
/// threshold is unreachably large — no graph can have that many edge
/// slots — so callers must treat `None` as "not dense" rather than let a
/// wrapped product mis-select the tier for a pathological `n`.
fn bitset_break_even(n: usize) -> Option<usize> {
    n.div_ceil(64).checked_mul(n)?.checked_mul(3)
}

/// The density rule behind [`StepMode::Auto`]: a bitset round makes three
/// row passes of `⌈n/64⌉` words per broadcaster, so it pays off once the
/// average reliable degree exceeds three row widths.
fn auto_step_mode(net: &DualGraph) -> StepMode {
    let n = net.n();
    let dense = n > 0
        && n <= MAX_AUTO_BITSET_N
        && bitset_break_even(n).is_some_and(|t| net.g_csr().edge_slots() >= t);
    if dense {
        StepMode::Bitset
    } else {
        StepMode::Scalar
    }
}

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process reported [`Process::is_done`].
    AllDone,
    /// The caller's predicate returned true.
    Predicate,
    /// The round budget was exhausted first.
    MaxRounds,
}

/// Result of a run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total rounds executed so far (cumulative across run calls).
    pub rounds: u64,
    /// Why the loop stopped.
    pub stop: StopReason,
}

/// Everything a process factory gets to see when instantiating a process.
#[derive(Debug)]
pub struct SpawnInfo<'a> {
    /// The node the process is assigned to.
    pub node: NodeId,
    /// The process's unique id.
    pub id: ProcessId,
    /// Network size `n`.
    pub n: usize,
    /// The process's link detector output at its wake round.
    pub detector: &'a BTreeSet<u32>,
    /// The round the process wakes (1 = synchronous start).
    pub wake_round: u64,
}

/// Builder for [`Engine`]; start with [`EngineBuilder::new`].
pub struct EngineBuilder {
    net: DualGraph,
    ids: Option<IdAssignment>,
    adversary: Box<dyn Adversary>,
    detectors: Option<Box<dyn DetectorProvider>>,
    wake_rounds: Option<Vec<u64>>,
    seed: u64,
    max_message_bits: Option<u64>,
    record_trace: bool,
    step_mode: StepMode,
}

impl EngineBuilder {
    /// Starts building an engine for `net`.
    pub fn new(net: DualGraph) -> Self {
        EngineBuilder {
            net,
            ids: None,
            adversary: Box::new(ReliableOnly),
            detectors: None,
            wake_rounds: None,
            seed: 0,
            max_message_bits: None,
            record_trace: false,
            step_mode: StepMode::Auto,
        }
    }

    /// Sets the process-to-node assignment (default: identity).
    pub fn ids(mut self, ids: IdAssignment) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Sets the reach-set adversary (default: [`ReliableOnly`]).
    pub fn adversary(mut self, a: impl Adversary + 'static) -> Self {
        self.adversary = Box::new(a);
        self
    }

    /// Sets the link detector provider (default: the 0-complete detector for
    /// the network and id assignment).
    pub fn detector(mut self, d: impl DetectorProvider + 'static) -> Self {
        self.detectors = Some(Box::new(d));
        self
    }

    /// Sets per-node wake rounds (default: every node wakes at round 1).
    pub fn wake_rounds(mut self, w: Vec<u64>) -> Self {
        self.wake_rounds = Some(w);
        self
    }

    /// Sets the master seed for process randomness (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enforces a message-size bound `b` in bits; oversize broadcasts are
    /// counted in [`ExecutionMetrics::oversize_messages`].
    pub fn max_message_bits(mut self, b: u64) -> Self {
        self.max_message_bits = Some(b);
        self
    }

    /// Enables per-round trace recording (default: off).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Sets which delivery tier the run loops step through (default:
    /// [`StepMode::Auto`] — resolved by density at spawn). All tiers
    /// produce identical executions; this only selects the implementation.
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Instantiates one process per node via `factory` and assembles the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the id assignment, detector provider, or
    /// wake-round vector does not match the network size.
    pub fn spawn<P, F>(self, mut factory: F) -> Result<Engine<P>, EngineError>
    where
        P: Process,
        F: FnMut(SpawnInfo<'_>) -> P,
    {
        let n = self.net.n();
        let ids = self.ids.unwrap_or_else(|| IdAssignment::identity(n));
        if ids.n() != n {
            return Err(EngineError::IdSizeMismatch { n, ids: ids.n() });
        }
        let detectors: Box<dyn DetectorProvider> = match self.detectors {
            Some(d) => d,
            None => Box::new(LinkDetectorAssignment::zero_complete(&self.net, &ids)),
        };
        if detectors.n() != n {
            return Err(EngineError::DetectorSizeMismatch {
                n,
                detector: detectors.n(),
            });
        }
        let wake_rounds = self.wake_rounds.unwrap_or_else(|| vec![1; n]);
        if wake_rounds.len() != n || wake_rounds.contains(&0) {
            return Err(EngineError::BadWakeRounds);
        }
        // Size the adversary-proposal buffer for the built-in adversaries'
        // worst cases (full unreliable layer, or ≤ 2 edges per listener) so
        // steady state never grows it.
        let extra_capacity = self.net.unreliable_edge_count().max(2 * n);
        // Per-process seeds come from the master StdRng (pinned stream);
        // the per-process generators themselves are the cheap SmallRng —
        // process coins dominate RNG volume at steady state.
        let mut master = StdRng::seed_from_u64(self.seed);
        let rngs = (0..n)
            .map(|_| ProcessRng::seed_from_u64(master.gen()))
            .collect();
        let procs = (0..n)
            .map(|v| {
                factory(SpawnInfo {
                    node: NodeId(v),
                    id: ids.id_of(NodeId(v)),
                    n,
                    detector: detectors.set_at(NodeId(v), wake_rounds[v]),
                    wake_round: wake_rounds[v],
                })
            })
            .collect();
        // A detector that is static from round 1 never changes output:
        // copy its sets once so the per-node, per-round lookup is a plain
        // index instead of a virtual call.
        let static_sets = if detectors.stabilization_round() == Some(1) {
            Some(
                (0..n)
                    .map(|v| detectors.set_at(NodeId(v), 1).clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        let mode = match self.step_mode {
            StepMode::Auto => auto_step_mode(&self.net),
            m => m,
        };
        if matches!(mode, StepMode::Bitset | StepMode::Batched) {
            // Build (and cache on the network) the bitmask rows up front,
            // so the hot loop never pays the one-time cost mid-run.
            self.net.g_bit_rows();
        }
        Ok(Engine {
            net: self.net,
            ids,
            procs,
            adversary: self.adversary,
            detectors,
            wake_rounds,
            rngs,
            round: 0,
            metrics: ExecutionMetrics::default(),
            trace: if self.record_trace {
                Some(Trace::new())
            } else {
                None
            },
            max_message_bits: self.max_message_bits,
            decided_round: vec![None; n],
            static_sets,
            mode,
            scratch: RoundScratch::new(n, extra_capacity),
        })
    }
}

/// Reusable per-round buffers of the engine (see the module docs for the
/// invariants). Sized once at spawn; `step()` only overwrites.
// lint: begin-no-alloc
struct RoundScratch<M> {
    /// This round's decisions, indexed by node. Only current-round
    /// broadcasters' slots are meaningful; idle slots go stale (never
    /// read, never cleared).
    msgs: Vec<Option<M>>,
    /// Whether each node broadcast this round.
    broadcasting: Vec<bool>,
    /// The nodes that broadcast this round, in node order.
    broadcasters: Vec<u32>,
    /// The adversary's proposed unreliable edges, normalized/filtered in
    /// place each round.
    extra: Vec<(usize, usize)>,
    /// Row tester validating proposals against `E' \ E` in `O(1)` amortized.
    unreliable_rows: NeighborStamps,
    /// Monotone round epoch for the reach counters below; stale entries are
    /// outdated by the bump, never cleared.
    epoch: u64,
    /// Last epoch in which each listener was reached by any broadcaster.
    reach_stamp: Vec<u64>,
    /// Reachable-broadcaster count per listener (valid iff stamp == epoch).
    reach_count: Vec<u32>,
    /// First reachable broadcaster per listener (valid iff stamp == epoch).
    /// The bitset tier reuses it as its delivering-source array: whenever a
    /// listener's seen bit is set cleanly, the slot holds the sender.
    reach_first: Vec<u32>,
    /// Bitset tier: listeners reached at least once this round, one bit
    /// per node. Cleared (never reallocated) every round.
    bit_seen: Vec<u64>,
    /// Bitset tier: listeners reached at least twice this round (the
    /// carry-save "seen twice" half of the pair).
    bit_collide: Vec<u64>,
}
// lint: end-no-alloc

impl<M> RoundScratch<M> {
    fn new(n: usize, extra_capacity: usize) -> Self {
        RoundScratch {
            msgs: (0..n).map(|_| None).collect(),
            broadcasting: vec![false; n],
            broadcasters: Vec::with_capacity(n),
            extra: Vec::with_capacity(extra_capacity),
            unreliable_rows: NeighborStamps::new(n),
            epoch: 0,
            reach_stamp: vec![0; n],
            reach_count: vec![0; n],
            reach_first: vec![0; n],
            bit_seen: vec![0; n.div_ceil(64)],
            bit_collide: vec![0; n.div_ceil(64)],
        }
    }
}

/// Executes an algorithm on a dual graph network, round by round.
///
/// # Examples
///
/// Run a trivial one-round algorithm in which everyone immediately outputs:
///
/// ```
/// use radio_sim::{Action, Context, DualGraph, EngineBuilder, Graph, Process};
///
/// struct Silent(Option<bool>);
/// impl Process for Silent {
///     type Msg = ();
///     fn decide(&mut self, _: &mut Context<'_>) -> Action<()> {
///         self.0 = Some(false);
///         Action::Idle
///     }
///     fn receive(&mut self, _: &mut Context<'_>, _: Option<&()>) {}
///     fn output(&self) -> Option<bool> { self.0 }
/// }
///
/// let net = DualGraph::classic(Graph::from_edges(2, [(0, 1)])?)?;
/// let mut engine = EngineBuilder::new(net).spawn(|_| Silent(None))?;
/// let outcome = engine.run(10);
/// assert_eq!(outcome.rounds, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine<P: Process> {
    net: DualGraph,
    ids: IdAssignment,
    procs: Vec<P>,
    adversary: Box<dyn Adversary>,
    detectors: Box<dyn DetectorProvider>,
    wake_rounds: Vec<u64>,
    rngs: Vec<ProcessRng>,
    round: u64,
    metrics: ExecutionMetrics,
    trace: Option<Trace>,
    max_message_bits: Option<u64>,
    decided_round: Vec<Option<u64>>,
    /// Detector sets copied at spawn when the provider is static (see
    /// [`EngineBuilder::spawn`]); `None` for genuinely dynamic detectors.
    static_sets: Option<Vec<BTreeSet<u32>>>,
    /// The resolved delivery tier the run loops step through (never
    /// [`StepMode::Auto`] after spawn).
    mode: StepMode,
    scratch: RoundScratch<P::Msg>,
}

/// The detector set of node `v` at round `r` — a plain index for static
/// detectors, the provider call otherwise. A free function over the two
/// fields so callers keep disjoint borrows of the rest of the engine.
#[inline]
fn detector_set<'a>(
    static_sets: &'a Option<Vec<BTreeSet<u32>>>,
    detectors: &'a dyn DetectorProvider,
    v: usize,
    r: u64,
) -> &'a BTreeSet<u32> {
    match static_sets {
        Some(sets) => &sets[v],
        None => detectors.set_at(NodeId(v), r),
    }
}

impl<P: Process> Engine<P> {
    /// Executes one synchronous round.
    ///
    /// Allocation-free in steady state: all per-round buffers live in the
    /// engine's scratch (see the module docs). Deliveries are computed by
    /// scattering each broadcaster's CSR neighborhood into epoch-stamped
    /// reach counters, `O(Σ deg(broadcasters) + extra edges + n)` per round.
    // lint: begin-no-alloc
    pub fn step(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides. Idle nodes' `msgs` slots
        // are left stale on purpose: delivery only ever dereferences the
        // slot of a *current-round* broadcaster (via `reach_first`), and
        // those slots are freshly written below.
        self.scratch.broadcasters.clear();
        // lint: rng-order(decide)
        for v in 0..n {
            if self.wake_rounds[v] > r {
                self.scratch.broadcasting[v] = false;
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => {
                    self.scratch.broadcasting[v] = false;
                }
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    self.scratch.broadcasting[v] = true;
                    self.scratch.broadcasters.push(v as u32);
                    self.scratch.msgs[v] = Some(m);
                }
            }
        }
        // lint: end-rng-order(decide)
        let broadcaster_count = self.scratch.broadcasters.len() as u32;

        // Phase 2: the adversary picks the round's unreliable reach edges.
        // Normalize, dedupe, then validate against E' \ E — one stamped row
        // load per distinct endpoint instead of a binary search per edge.
        self.scratch.extra.clear();
        self.adversary.extra_edges(
            r,
            &self.net,
            &self.scratch.broadcasting,
            &mut self.scratch.extra,
        );
        // With a trace recording, the full proposal must be normalized,
        // deduped, and validated up front so the recorded `extra_edges`
        // count matches the legacy engine exactly. Without one, only edges
        // with exactly one broadcasting endpoint are observable (they
        // alone can affect delivery), so all per-edge work happens in the
        // single fused scatter pass below.
        let tracing = self.trace.is_some();
        if tracing {
            for e in &mut self.scratch.extra {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            }
            self.sort_validate_extra(n);
        }
        let extra_count = self.scratch.extra.len() as u32;

        // Phase 3: reach. Each broadcaster scatters its CSR row into the
        // stamped counters; activated unreliable edges then add their
        // endpoints in a fused pass (incidence filter, duplicate skip,
        // `E' \ E` validation, bump — one traversal, no buffer writes).
        // The fused pass assumes the proposal is normalized and strictly
        // sorted, which holds for every built-in adversary; if a proposal
        // violates that, the pass aborts, the epoch bump discards all
        // partial reach state, and one retry runs on the sorted list.
        // The epoch advances every round — including broadcaster-less ones,
        // where stale reach state from earlier rounds must not deliver.
        self.scratch.epoch += 1;
        if broadcaster_count > 0 {
            let mut attempt = 0;
            loop {
                attempt += 1;
                if attempt > 1 {
                    self.scratch.epoch += 1;
                }
                let epoch = self.scratch.epoch;
                let csr_g = self.net.g_csr();
                for i in 0..self.scratch.broadcasters.len() {
                    let u = self.scratch.broadcasters[i] as usize;
                    for &v in csr_g.neighbors(u) {
                        let vi = v as usize;
                        if self.scratch.reach_stamp[vi] != epoch {
                            self.scratch.reach_stamp[vi] = epoch;
                            self.scratch.reach_count[vi] = 1;
                            self.scratch.reach_first[vi] = u as u32;
                        } else {
                            self.scratch.reach_count[vi] += 1;
                        }
                    }
                }
                let unreliable = self.net.unreliable_csr();
                let RoundScratch {
                    extra,
                    unreliable_rows,
                    broadcasting,
                    reach_stamp,
                    reach_count,
                    reach_first,
                    ..
                } = &mut self.scratch;
                let strict = attempt == 1;
                let mut loaded = usize::MAX;
                // Ordering/duplicate tracking only needs to cover pairs
                // that bump a counter, so the cheap incidence test runs
                // first and skips ~all proposals in one compare. (0, 0) is
                // below every normalized pair, so it works as "no prev".
                let mut prev = (0usize, 0usize);
                let mut disorder = false;
                for &(a, b) in extra.iter() {
                    if a >= n || b >= n {
                        continue;
                    }
                    // Also drops self-loops (equal flags on both sides).
                    if broadcasting[a] == broadcasting[b] {
                        continue;
                    }
                    let (u, v) = if a < b { (a, b) } else { (b, a) };
                    if strict {
                        if prev >= (u, v) {
                            // Out-of-order or duplicate among counted
                            // pairs: redo on the sorted list.
                            disorder = true;
                            break;
                        }
                        prev = (u, v);
                    }
                    if !tracing {
                        if loaded != u {
                            unreliable_rows.load_row(unreliable, u);
                            loaded = u;
                        }
                        if !unreliable_rows.contains(v) {
                            continue;
                        }
                    }
                    let (from, to) = if broadcasting[u] { (u, v) } else { (v, u) };
                    if reach_stamp[to] != epoch {
                        reach_stamp[to] = epoch;
                        reach_count[to] = 1;
                        reach_first[to] = from as u32;
                    } else {
                        reach_count[to] += 1;
                    }
                }
                if !disorder {
                    break;
                }
                for e in extra.iter_mut() {
                    if e.0 > e.1 {
                        *e = (e.1, e.0);
                    }
                }
                extra.sort_unstable();
                extra.dedup();
            }
        }

        // Delivery: exactly one reachable broadcaster => message; otherwise
        // ⊥. Sleeping nodes neither broadcast nor receive.
        let epoch = self.scratch.epoch;
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        // lint: rng-order(receive)
        for v in 0..n {
            if self.wake_rounds[v] > r || self.scratch.broadcasting[v] {
                continue;
            }
            let reach = if self.scratch.reach_stamp[v] == epoch {
                self.scratch.reach_count[v]
            } else {
                0
            };
            let delivered = if reach == 1 {
                deliveries += 1;
                Some(self.scratch.reach_first[v] as usize)
            } else {
                if reach >= 2 {
                    collisions += 1;
                }
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| self.scratch.msgs[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        // lint: end-rng-order(receive)
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }
    // lint: end-no-alloc

    /// The seed implementation of [`Engine::step`], kept verbatim as the
    /// reference for differential (golden-trace) testing and as the
    /// baseline side of `BENCH_engine.json`. Allocates its per-round
    /// buffers and scans every listener's full neighborhood; produces
    /// executions identical to [`Engine::step`] for the same seed.
    // lint: begin-no-alloc
    #[allow(clippy::needless_range_loop)] // kept structurally verbatim
    pub fn step_legacy(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides.
        // lint:allow(no-alloc-region) seed tier allocates its per-round buffers by design
        let mut messages: Vec<Option<P::Msg>> = Vec::with_capacity(n);
        // lint:allow(no-alloc-region) seed tier allocates its per-round buffers by design
        let mut broadcasting = vec![false; n];
        // lint: rng-order(decide)
        for v in 0..n {
            if self.wake_rounds[v] > r {
                messages.push(None);
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => messages.push(None),
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    broadcasting[v] = true;
                    messages.push(Some(m));
                }
            }
        }
        // lint: end-rng-order(decide)

        // Phase 2: the adversary picks the round's unreliable reach edges.
        self.scratch.extra.clear();
        self.adversary
            .extra_edges(r, &self.net, &broadcasting, &mut self.scratch.extra);
        // Defensive filtering: keep only genuine unreliable edges, dedupe.
        let net = &self.net;
        self.scratch
            .extra
            .retain(|&(u, v)| u < n && v < n && net.is_unreliable_edge(u, v));
        for e in &mut self.scratch.extra {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.scratch.extra.sort_unstable();
        self.scratch.extra.dedup();
        let extra_count = self.scratch.extra.len() as u32;

        // Per-listener extra reach: broadcasters connected by an activated
        // unreliable edge.
        // lint:allow(no-alloc-region) seed tier allocates its per-round buffers by design
        let mut extra_from: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &self.scratch.extra {
            if broadcasting[u] && !broadcasting[v] {
                extra_from[v].push(u);
            }
            if broadcasting[v] && !broadcasting[u] {
                extra_from[u].push(v);
            }
        }

        // Phase 3: delivery. Exactly one reachable broadcaster => message;
        // otherwise ⊥. Sleeping nodes neither broadcast nor receive.
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        // lint: rng-order(receive)
        for v in 0..n {
            if self.wake_rounds[v] > r || broadcasting[v] {
                continue;
            }
            let mut reach = extra_from[v].len();
            let mut the_one = extra_from[v].first().copied();
            for &u in self.net.g().neighbors(v) {
                if broadcasting[u] {
                    reach += 1;
                    if the_one.is_none() {
                        the_one = Some(u);
                    }
                    if reach >= 2 {
                        break;
                    }
                }
            }
            let delivered = if reach == 1 {
                deliveries += 1;
                the_one
            } else {
                if reach >= 2 {
                    collisions += 1;
                }
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| messages[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        // lint: end-rng-order(receive)
        let broadcaster_count = broadcasting.iter().filter(|&&b| b).count() as u32;
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }
    // lint: end-no-alloc

    /// Executes one synchronous round through the word-packed delivery
    /// tier (see the module docs' *Performance architecture*).
    ///
    /// Produces executions identical to [`Engine::step`] — same decide and
    /// receive call order (hence the same per-process RNG streams), same
    /// traces, transcripts, metrics, and outputs — for every adversary,
    /// including malformed proposals; the golden-trace differential tests
    /// pin the equivalence exactly the way `step` is pinned to
    /// [`Engine::step_legacy`].
    ///
    /// Reach is computed as a carry-save bit pair over `⌈n/64⌉`-word
    /// bitmask rows: for each broadcaster row,
    /// `collide |= seen & row; seen |= row` — one-bit saturating counters
    /// distinguishing "reached once" (clean delivery) from "reached twice
    /// or more" (collision), which is all the model's delivery rule needs.
    /// The adversary's activated unreliable edges overlay single bits, and
    /// a second row pass records each cleanly reached listener's unique
    /// source. Cost: `O(B·⌈n/64⌉ + extra + n)` word operations per round
    /// for `B` broadcasters.
    ///
    /// Allocation-free in steady state. The bitmask rows are built (and
    /// cached on the network) at spawn for engines resolved to
    /// [`StepMode::Bitset`], or on the first call otherwise.
    // lint: begin-no-alloc
    pub fn step_bitset(&mut self) {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;

        // Phase 1: every awake process decides — identical to `step`, so
        // the RNG streams and broadcast metrics stay in lockstep.
        self.scratch.broadcasters.clear();
        // lint: rng-order(decide)
        for v in 0..n {
            if self.wake_rounds[v] > r {
                self.scratch.broadcasting[v] = false;
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => {
                    self.scratch.broadcasting[v] = false;
                }
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    self.scratch.broadcasting[v] = true;
                    self.scratch.broadcasters.push(v as u32);
                    self.scratch.msgs[v] = Some(m);
                }
            }
        }
        // lint: end-rng-order(decide)
        let broadcaster_count = self.scratch.broadcasters.len() as u32;

        // Phase 2: the adversary picks the round's unreliable reach edges.
        // The bitset path always normalizes, sorts, dedupes, and validates
        // the proposal up front: partial carry-save updates cannot be
        // rolled back the way the scalar path's epoch bump discards a
        // failed fused pass, and built-in adversaries emit near-sorted
        // lists so the allocation-free `sort_unstable` is cheap.
        self.scratch.extra.clear();
        self.adversary.extra_edges(
            r,
            &self.net,
            &self.scratch.broadcasting,
            &mut self.scratch.extra,
        );
        for e in &mut self.scratch.extra {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.sort_validate_extra(n);
        let extra_count = self.scratch.extra.len() as u32;

        // Phase 3: carry-save reach. seen/collide are cleared every round
        // — including broadcaster-less ones, where stale bits from an
        // earlier round must not deliver (the phantom-delivery bug class
        // the scalar path's unconditional epoch bump guards against).
        let words = n.div_ceil(64);
        self.scratch.bit_seen[..words].fill(0);
        self.scratch.bit_collide[..words].fill(0);
        if broadcaster_count > 0 {
            let rows = self.net.g_bit_rows();
            let RoundScratch {
                broadcasters,
                broadcasting,
                extra,
                bit_seen,
                bit_collide,
                reach_first,
                ..
            } = &mut self.scratch;
            for &u in broadcasters.iter() {
                let row = rows.row(u as usize);
                for w in 0..words {
                    bit_collide[w] |= bit_seen[w] & row[w];
                    bit_seen[w] |= row[w];
                }
            }
            // Unreliable overlay: each validated activated edge with
            // exactly one broadcasting endpoint adds a single bit (the
            // equality test also drops both-broadcasting pairs). E' \ E is
            // disjoint from E, so an extra edge never double-counts a row
            // delivery from the same broadcaster.
            for &(a, b) in extra.iter() {
                if broadcasting[a] == broadcasting[b] {
                    continue;
                }
                let (from, to) = if broadcasting[a] { (a, b) } else { (b, a) };
                let (w, bit) = (to >> 6, 1u64 << (to & 63));
                if bit_seen[w] & bit != 0 {
                    bit_collide[w] |= bit;
                } else {
                    bit_seen[w] |= bit;
                    reach_first[to] = from as u32;
                }
            }
            // Second row pass: record the delivering source of every
            // cleanly row-reached listener. A clean bit has exactly one
            // reaching broadcaster (a second row or extra hit would have
            // set collide), so exactly one row writes each slot.
            for &u in broadcasters.iter() {
                let row = rows.row(u as usize);
                for w in 0..words {
                    let mut hits = row[w] & bit_seen[w] & !bit_collide[w];
                    while hits != 0 {
                        let v = (w << 6) | hits.trailing_zeros() as usize;
                        reach_first[v] = u;
                        hits &= hits - 1;
                    }
                }
            }
        }

        // Delivery: read each listener's bit pair — collide => ⊥ with a
        // collision counted, seen => the recorded source's message,
        // neither => silence. Same receive-call order as `step`.
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        // lint: rng-order(receive)
        for v in 0..n {
            if self.wake_rounds[v] > r || self.scratch.broadcasting[v] {
                continue;
            }
            let (w, bit) = (v >> 6, 1u64 << (v & 63));
            let delivered = if self.scratch.bit_collide[w] & bit != 0 {
                collisions += 1;
                None
            } else if self.scratch.bit_seen[w] & bit != 0 {
                deliveries += 1;
                Some(self.scratch.reach_first[v] as usize)
            } else {
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| self.scratch.msgs[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        // lint: end-rng-order(receive)
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }
    // lint: end-no-alloc

    /// Executes one synchronous round through the batched tier's
    /// single-trial path: the same decide / adversary / carry-save /
    /// receive phase helpers a [`BatchedEngine`] interleaves across its
    /// trials, run over one plane pair. Produces executions identical to
    /// [`Engine::step_bitset`] (and therefore to the whole differential
    /// chain) — the batch-of-one face of the fourth tier.
    ///
    /// Allocation-free in steady state: the plane pair is the scratch's
    /// own `bit_seen`/`bit_collide`, temporarily moved out (no copy) so
    /// the receive phase can borrow the planes and the engine mutably at
    /// once.
    // lint: begin-no-alloc
    pub fn step_batched(&mut self) {
        let words = self.net.n().div_ceil(64);
        let broadcaster_count = self.batched_decide();
        let extra_count = self.batched_adversary();
        let mut seen = std::mem::take(&mut self.scratch.bit_seen);
        let mut collide = std::mem::take(&mut self.scratch.bit_collide);
        seen[..words].fill(0);
        collide[..words].fill(0);
        if broadcaster_count > 0 {
            let rows = self.net.g_bit_rows();
            let RoundScratch {
                broadcasters,
                broadcasting,
                extra,
                reach_first,
                ..
            } = &mut self.scratch;
            for &u in broadcasters.iter() {
                carry_save_row(
                    rows.row(u as usize),
                    &mut seen[..words],
                    &mut collide[..words],
                );
            }
            overlay_extra_bits(
                extra,
                broadcasting,
                reach_first,
                &mut seen[..words],
                &mut collide[..words],
            );
            for &u in broadcasters.iter() {
                recover_row_sources(
                    rows.row(u as usize),
                    u,
                    &seen[..words],
                    &collide[..words],
                    reach_first,
                );
            }
        }
        self.batched_receive(
            &seen[..words],
            &collide[..words],
            broadcaster_count,
            extra_count,
        );
        self.scratch.bit_seen = seen;
        self.scratch.bit_collide = collide;
    }
    // lint: end-no-alloc

    /// Batched-tier phase 1: advance the round and let every awake
    /// process decide, in node order — the exact loop (and therefore the
    /// exact per-process RNG draw order) of `step_bitset`'s phase 1.
    /// Returns the broadcaster count.
    // lint: begin-no-alloc
    fn batched_decide(&mut self) -> u32 {
        let n = self.net.n();
        self.round += 1;
        let r = self.round;
        self.metrics.rounds = r;
        self.scratch.broadcasters.clear();
        // lint: rng-order(decide)
        for v in 0..n {
            if self.wake_rounds[v] > r {
                self.scratch.broadcasting[v] = false;
                continue;
            }
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            match self.procs[v].decide(&mut ctx) {
                Action::Idle => {
                    self.scratch.broadcasting[v] = false;
                }
                Action::Broadcast(m) => {
                    let bits = m.bits();
                    self.metrics.broadcasts += 1;
                    self.metrics.bits_broadcast += bits;
                    if let Some(b) = self.max_message_bits {
                        if bits > b {
                            self.metrics.oversize_messages += 1;
                        }
                    }
                    self.scratch.broadcasting[v] = true;
                    self.scratch.broadcasters.push(v as u32);
                    self.scratch.msgs[v] = Some(m);
                }
            }
        }
        // lint: end-rng-order(decide)
        self.scratch.broadcasters.len() as u32
    }
    // lint: end-no-alloc

    /// Batched-tier phase 2: collect the adversary's proposal, then
    /// normalize, sort, dedupe, and validate it up front — exactly
    /// `step_bitset`'s unconditional full pass, so the recorded
    /// `extra_edges` count matches the whole chain. Returns the validated
    /// proposal length.
    // lint: begin-no-alloc
    fn batched_adversary(&mut self) -> u32 {
        let n = self.net.n();
        self.scratch.extra.clear();
        self.adversary.extra_edges(
            self.round,
            &self.net,
            &self.scratch.broadcasting,
            &mut self.scratch.extra,
        );
        for e in &mut self.scratch.extra {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.sort_validate_extra(n);
        self.scratch.extra.len() as u32
    }
    // lint: end-no-alloc

    /// Batched-tier phase 4: read each listener's bit pair out of the
    /// given planes and deliver, in node order — the exact receive loop
    /// (and RNG draw order) of `step_bitset`'s delivery phase — then run
    /// the shared end-of-round bookkeeping.
    // lint: begin-no-alloc
    fn batched_receive(
        &mut self,
        seen: &[u64],
        collide: &[u64],
        broadcaster_count: u32,
        extra_count: u32,
    ) {
        let n = self.net.n();
        let r = self.round;
        let mut deliveries = 0u32;
        let mut collisions = 0u32;
        // lint: rng-order(receive)
        for v in 0..n {
            if self.wake_rounds[v] > r || self.scratch.broadcasting[v] {
                continue;
            }
            let (w, bit) = (v >> 6, 1u64 << (v & 63));
            let delivered = if collide[w] & bit != 0 {
                collisions += 1;
                None
            } else if seen[w] & bit != 0 {
                deliveries += 1;
                Some(self.scratch.reach_first[v] as usize)
            } else {
                None
            };
            let det = detector_set(&self.static_sets, self.detectors.as_ref(), v, r);
            let mut ctx = Context {
                local_round: r - self.wake_rounds[v] + 1,
                n,
                my_id: self.ids.id_of(NodeId(v)),
                detector: det,
                rng: &mut self.rngs[v],
            };
            let msg = delivered.and_then(|u| self.scratch.msgs[u].as_ref());
            self.procs[v].receive(&mut ctx, msg);
        }
        // lint: end-rng-order(receive)
        self.finish_round(r, broadcaster_count, deliveries, collisions, extra_count);
    }
    // lint: end-no-alloc

    /// Sorts, dedupes, and validates the (already normalized) proposal in
    /// place — the full pass the tracing path needs so its recorded
    /// `extra_edges` count matches the legacy engine.
    // lint: begin-no-alloc
    fn sort_validate_extra(&mut self, n: usize) {
        self.scratch.extra.sort_unstable();
        self.scratch.extra.dedup();
        let unreliable = self.net.unreliable_csr();
        let RoundScratch {
            extra,
            unreliable_rows,
            ..
        } = &mut self.scratch;
        let mut loaded = usize::MAX;
        extra.retain(|&(u, v)| {
            u < n && v < n && {
                if loaded != u {
                    unreliable_rows.load_row(unreliable, u);
                    loaded = u;
                }
                unreliable_rows.contains(v)
            }
        });
    }
    // lint: end-no-alloc

    /// Shared end-of-round bookkeeping: aggregate metrics, first-output
    /// rounds, and the optional trace record.
    // lint: begin-no-alloc
    fn finish_round(
        &mut self,
        r: u64,
        broadcasters: u32,
        deliveries: u32,
        collisions: u32,
        extra_edges: u32,
    ) {
        self.metrics.deliveries += u64::from(deliveries);
        self.metrics.collisions += u64::from(collisions);
        for v in 0..self.decided_round.len() {
            if self.decided_round[v].is_none() && self.procs[v].output().is_some() {
                self.decided_round[v] = Some(r);
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(RoundRecord {
                round: r,
                broadcasters,
                deliveries,
                collisions,
                extra_edges,
            });
        }
    }
    // lint: end-no-alloc

    /// Runs until every process is done or `max_rounds` total rounds have
    /// been executed.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        self.run_until(max_rounds, |_| false)
    }

    /// Runs until every process is done, the predicate over the process
    /// array returns true, or the budget is exhausted — whichever first.
    pub fn run_until(&mut self, max_rounds: u64, mut pred: impl FnMut(&[P]) -> bool) -> RunOutcome {
        loop {
            if self.procs.iter().all(Process::is_done) {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::AllDone,
                };
            }
            if pred(&self.procs) {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::Predicate,
                };
            }
            if self.round >= max_rounds {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::MaxRounds,
                };
            }
            self.step_selected();
        }
    }

    /// Runs exactly `rounds` additional rounds (regardless of outputs).
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_selected();
        }
    }

    /// One round through the tier resolved at spawn (see [`StepMode`]).
    #[inline]
    fn step_selected(&mut self) {
        match self.mode {
            StepMode::Bitset => self.step_bitset(),
            StepMode::Batched => self.step_batched(),
            _ => self.step(),
        }
    }

    /// The delivery tier the run loops step through, resolved at spawn
    /// (never [`StepMode::Auto`]).
    pub fn step_mode(&self) -> StepMode {
        self.mode
    }

    /// The network being simulated.
    pub fn net(&self) -> &DualGraph {
        &self.net
    }

    /// The process-to-node assignment.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// The processes, indexed by node.
    pub fn procs(&self) -> &[P] {
        &self.procs
    }

    /// Mutable access to the processes (used by wrappers such as the
    /// continuous CCDS that restart protocols between runs).
    pub fn procs_mut(&mut self) -> &mut [P] {
        &mut self.procs
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Aggregate execution counters.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Outputs by node (`None` while undecided).
    pub fn outputs(&self) -> Vec<Option<bool>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// The first round at which node `v` had an output, if it has one.
    pub fn decided_round(&self, v: NodeId) -> Option<u64> {
        self.decided_round[v.index()]
    }

    /// Latest first-output round across nodes that have decided; `None` if
    /// any node is still undecided.
    pub fn all_decided_round(&self) -> Option<u64> {
        self.decided_round
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Per-node rounds-from-wake until first output (Section 9's complexity
    /// measure); `None` for undecided nodes.
    pub fn decided_latency(&self, v: NodeId) -> Option<u64> {
        self.decided_round[v.index()].map(|r| r - self.wake_rounds[v.index()] + 1)
    }
}

/// Carry-saves one bitmask row into a seen/collide plane pair:
/// `collide |= seen & row; seen |= row`. The iterator form elides bounds
/// checks so the word loop vectorizes — this is the inner loop the
/// batched tier runs once per (broadcasting node, broadcasting trial)
/// pair while the row is hot in cache.
// lint: begin-no-alloc
#[inline]
fn carry_save_row(row: &[u64], seen: &mut [u64], collide: &mut [u64]) {
    for ((s, c), &w) in seen.iter_mut().zip(collide.iter_mut()).zip(row) {
        *c |= *s & w;
        *s |= w;
    }
}

/// Overlays the adversary's validated activated edges onto a plane pair:
/// each edge with exactly one broadcasting endpoint adds a single bit
/// (the equality test also drops both-broadcasting pairs and self-loops),
/// recording the sender in `reach_first` on a clean hit — exactly
/// `step_bitset`'s overlay, parameterized over the planes.
#[inline]
fn overlay_extra_bits(
    extra: &[(usize, usize)],
    broadcasting: &[bool],
    reach_first: &mut [u32],
    seen: &mut [u64],
    collide: &mut [u64],
) {
    for &(a, b) in extra {
        if broadcasting[a] == broadcasting[b] {
            continue;
        }
        let (from, to) = if broadcasting[a] { (a, b) } else { (b, a) };
        let (w, bit) = (to >> 6, 1u64 << (to & 63));
        if seen[w] & bit != 0 {
            collide[w] |= bit;
        } else {
            seen[w] |= bit;
            reach_first[to] = from as u32;
        }
    }
}

/// Second row pass over a plane pair: records broadcaster `u` as the
/// delivering source of every listener its row reached cleanly (seen and
/// not collided — such a listener has exactly one reaching broadcaster,
/// so exactly one row writes each slot).
#[inline]
fn recover_row_sources(
    row: &[u64],
    u: u32,
    seen: &[u64],
    collide: &[u64],
    reach_first: &mut [u32],
) {
    for (w, ((&rw, &sw), &cw)) in row.iter().zip(seen).zip(collide).enumerate() {
        let mut hits = rw & sw & !cw;
        while hits != 0 {
            let v = (w << 6) | hits.trailing_zeros() as usize;
            reach_first[v] = u;
            hits &= hits - 1;
        }
    }
}
// lint: end-no-alloc

/// Steps `B` independent trials of the same topology one round at a time
/// over struct-of-arrays reach state — the multi-trial half of the
/// batched tier (see the module docs' *Performance architecture*).
///
/// Every trial's seen/collide planes are contiguous `⌈n/64⌉`-word stripes
/// of one flat buffer. A batched round runs:
///
/// 1. per trial, in trial order: the decide and adversary phases
///    (identical per-trial code and RNG draw order to
///    [`Engine::step_bitset`] — trials own disjoint RNG streams, so the
///    ordering *across* trials is immaterial);
/// 2. node-major delivery: for every node broadcasting in ≥ 1 trial, the
///    bitmask row is fetched **once** and carry-saved into each
///    broadcasting trial's plane while hot, then (after the per-trial
///    unreliable overlays) a second node-major pass recovers delivering
///    sources the same way;
/// 3. per trial, in trial order: the receive phase.
///
/// Because trials share no mutable state, interleaving the phases this
/// way leaves each trial's execution — trace, transcript, metrics,
/// outputs, RNG streams — bit-identical to stepping its engine solo
/// through `step_bitset`; the differential tests pin this at several
/// batch sizes. Allocation-free in steady state: all buffers are sized at
/// construction.
pub struct BatchedEngine<P: Process> {
    engines: Vec<Engine<P>>,
    /// One shared copy of the reliable layer's bitmask rows (owning it
    /// keeps the delivery borrows disjoint from the engines).
    rows: BitRows,
    n: usize,
    words: usize,
    /// Trial-major seen planes: trial `b` owns words `b·words ..
    /// (b+1)·words`.
    seen: Vec<u64>,
    /// Trial-major collide planes, same stripe layout.
    collide: Vec<u64>,
    /// Node-major broadcast masks: `⌈B/64⌉` words per node recording
    /// which trials the node broadcasts in this round. Rebuilt every
    /// round; lets delivery skip silent nodes in one word read instead of
    /// a `B`-way cursor merge.
    bcast_mask: Vec<u64>,
    mask_words: usize,
    /// Per-trial (broadcaster, validated-extra) counts for the round.
    counts: Vec<(u32, u32)>,
    /// Which trials still step; [`BatchedEngine::run_each`] retires
    /// trials as they stop, fresh batches step everything.
    active: Vec<bool>,
    outcomes: Vec<RunOutcome>,
}

impl<P: Process> BatchedEngine<P> {
    /// Assembles a batch over `engines`, which must all simulate the same
    /// topology (checked cheaply in release — node count and edge slots —
    /// and structurally in debug builds).
    ///
    /// The engines' resolved [`StepMode`]s are irrelevant here: a batch
    /// always steps its trials through the batched tier. Engines may be at
    /// different rounds; trials are independent.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or the topologies disagree.
    pub fn new(engines: Vec<Engine<P>>) -> Self {
        assert!(!engines.is_empty(), "a batch needs at least one trial");
        let first = engines[0].net.g_csr();
        assert!(
            engines
                .iter()
                .all(|e| e.net.n() == first.n() && e.net.g_csr().edge_slots() == first.edge_slots()),
            "batched trials must share one topology"
        );
        debug_assert!(
            engines.iter().all(|e| e.net.g_csr() == first),
            "batched trials must share one topology (structural check)"
        );
        let n = engines[0].net.n();
        let words = n.div_ceil(64);
        let b = engines.len();
        let mask_words = b.div_ceil(64);
        let rows = engines[0].net.g_bit_rows().clone();
        BatchedEngine {
            rows,
            n,
            words,
            seen: vec![0; b * words],
            collide: vec![0; b * words],
            bcast_mask: vec![0; n * mask_words],
            mask_words,
            counts: vec![(0, 0); b],
            active: vec![true; b],
            outcomes: vec![
                RunOutcome {
                    rounds: 0,
                    stop: StopReason::MaxRounds,
                };
                b
            ],
            engines,
        }
    }

    /// Number of trials in the batch.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the batch is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The trial engines, in batch order.
    pub fn engines(&self) -> &[Engine<P>] {
        &self.engines
    }

    /// Disassembles the batch back into its trial engines, in batch order.
    pub fn into_engines(self) -> Vec<Engine<P>> {
        self.engines
    }

    /// Steps every still-active trial one round (all trials are active on
    /// a fresh batch; [`BatchedEngine::run_each`] retires them).
    // lint: begin-no-alloc
    pub fn step(&mut self) {
        let b_count = self.engines.len();
        let words = self.words;
        let mask_words = self.mask_words;

        // Phases 1+2, per trial in trial order, clearing each active
        // trial's planes for the round (every round, including
        // broadcaster-less ones — the phantom-delivery rule).
        for b in 0..b_count {
            if !self.active[b] {
                continue;
            }
            let engine = &mut self.engines[b];
            let bc = engine.batched_decide();
            let ec = engine.batched_adversary();
            self.counts[b] = (bc, ec);
            self.seen[b * words..(b + 1) * words].fill(0);
            self.collide[b * words..(b + 1) * words].fill(0);
        }

        // Node-major broadcast masks for the round.
        self.bcast_mask.fill(0);
        for b in 0..b_count {
            if !self.active[b] || self.counts[b].0 == 0 {
                continue;
            }
            let (mw, mbit) = (b >> 6, 1u64 << (b & 63));
            for &u in &self.engines[b].scratch.broadcasters {
                self.bcast_mask[u as usize * mask_words + mw] |= mbit;
            }
        }

        // First row pass: each hot row carry-saves into every
        // broadcasting trial's plane.
        for u in 0..self.n {
            let base = u * mask_words;
            for mw in 0..mask_words {
                let mut mask = self.bcast_mask[base + mw];
                if mask == 0 {
                    continue;
                }
                let row = self.rows.row(u);
                while mask != 0 {
                    let b = (mw << 6) | mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    carry_save_row(
                        row,
                        &mut self.seen[b * words..(b + 1) * words],
                        &mut self.collide[b * words..(b + 1) * words],
                    );
                }
            }
        }

        // Per-trial unreliable overlays.
        for b in 0..b_count {
            if !self.active[b] || self.counts[b].0 == 0 {
                continue;
            }
            let RoundScratch {
                extra,
                broadcasting,
                reach_first,
                ..
            } = &mut self.engines[b].scratch;
            overlay_extra_bits(
                extra,
                broadcasting,
                reach_first,
                &mut self.seen[b * words..(b + 1) * words],
                &mut self.collide[b * words..(b + 1) * words],
            );
        }

        // Second row pass: recover each cleanly reached listener's source,
        // node-major again so the row is fetched once per node.
        for u in 0..self.n {
            let base = u * mask_words;
            for mw in 0..mask_words {
                let mut mask = self.bcast_mask[base + mw];
                if mask == 0 {
                    continue;
                }
                let row = self.rows.row(u);
                while mask != 0 {
                    let b = (mw << 6) | mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    recover_row_sources(
                        row,
                        u as u32,
                        &self.seen[b * words..(b + 1) * words],
                        &self.collide[b * words..(b + 1) * words],
                        &mut self.engines[b].scratch.reach_first,
                    );
                }
            }
        }

        // Phase 4, per trial in trial order.
        for b in 0..b_count {
            if !self.active[b] {
                continue;
            }
            let (bc, ec) = self.counts[b];
            let engine = &mut self.engines[b];
            engine.batched_receive(
                &self.seen[b * words..(b + 1) * words],
                &self.collide[b * words..(b + 1) * words],
                bc,
                ec,
            );
        }
    }
    // lint: end-no-alloc

    /// Steps every still-active trial exactly `rounds` more rounds
    /// (regardless of outputs) — the batched mirror of
    /// [`Engine::run_rounds`].
    pub fn run_rounds_each(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs every trial until it is done or has executed `max_rounds`
    /// total rounds, whichever first — per trial, exactly
    /// [`Engine::run`]'s stop rule (all-done is checked before the
    /// budget, both before stepping). Active trials stay in round
    /// lockstep; finished trials freeze while the rest continue. Returns
    /// one [`RunOutcome`] per trial, in batch order.
    pub fn run_each(&mut self, max_rounds: u64) -> Vec<RunOutcome> {
        for flag in &mut self.active {
            *flag = true;
        }
        loop {
            let mut any = false;
            for b in 0..self.engines.len() {
                if !self.active[b] {
                    continue;
                }
                let engine = &self.engines[b];
                if engine.procs.iter().all(Process::is_done) {
                    self.outcomes[b] = RunOutcome {
                        rounds: engine.round,
                        stop: StopReason::AllDone,
                    };
                    self.active[b] = false;
                } else if engine.round >= max_rounds {
                    self.outcomes[b] = RunOutcome {
                        rounds: engine.round,
                        stop: StopReason::MaxRounds,
                    };
                    self.active[b] = false;
                } else {
                    any = true;
                }
            }
            if !any {
                return self.outcomes.clone();
            }
            self.step();
        }
    }

    /// The batch-level tier selection (see the module docs): runs a trial
    /// set to `max_rounds` through one [`BatchedEngine`] when batching
    /// pays — ≥ 2 trials whose engines resolved to the bitset tier (or
    /// were pinned to the batched one), i.e. a dense shared topology —
    /// and falls back to per-trial [`Engine::run`] calls otherwise.
    /// Either way the executions (and the returned per-trial outcomes)
    /// are bit-identical; only the stepping schedule differs.
    pub fn run_all(
        mut engines: Vec<Engine<P>>,
        max_rounds: u64,
    ) -> (Vec<Engine<P>>, Vec<RunOutcome>) {
        let batchable = engines.len() >= 2
            && engines
                .iter()
                .all(|e| matches!(e.step_mode(), StepMode::Bitset | StepMode::Batched));
        if batchable {
            let mut batch = BatchedEngine::new(engines);
            let outcomes = batch.run_each(max_rounds);
            (batch.into_engines(), outcomes)
        } else {
            let outcomes = engines.iter_mut().map(|e| e.run(max_rounds)).collect();
            (engines, outcomes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Broadcasts its id every round, never outputs.
    struct Chatter;
    impl Process for Chatter {
        type Msg = u32;
        fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            Action::Broadcast(ctx.my_id.get())
        }
        fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
        fn output(&self) -> Option<bool> {
            None
        }
    }

    /// Listens forever, recording what it hears.
    struct Listener {
        heard: Vec<Option<u32>>,
    }
    impl Process for Listener {
        type Msg = u32;
        fn decide(&mut self, _: &mut Context<'_>) -> Action<u32> {
            Action::Idle
        }
        fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
            self.heard.push(msg.copied());
        }
        fn output(&self) -> Option<bool> {
            None
        }
    }

    enum Node {
        Chatter(Chatter),
        Listener(Listener),
    }
    impl Process for Node {
        type Msg = u32;
        fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            match self {
                Node::Chatter(c) => c.decide(ctx),
                Node::Listener(l) => l.decide(ctx),
            }
        }
        fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&u32>) {
            match self {
                Node::Chatter(c) => c.receive(ctx, msg),
                Node::Listener(l) => l.receive(ctx, msg),
            }
        }
        fn output(&self) -> Option<bool> {
            None
        }
    }

    fn star_net() -> DualGraph {
        // 0 is the hub; 1, 2, 3 are leaves. No unreliable edges.
        DualGraph::classic(Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap()).unwrap()
    }

    #[test]
    fn single_broadcaster_delivers() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .record_trace(true)
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        // Node 0 (hub) hears node 1's message; nodes 2 and 3 are not
        // adjacent to 1 and hear silence.
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(2)]), // process id of node 1
            _ => panic!("node 0 should listen"),
        }
        match &e.procs()[2] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        assert_eq!(e.metrics().deliveries, 1);
        assert_eq!(e.metrics().collisions, 0);
        assert_eq!(e.trace().unwrap().rounds[0].broadcasters, 1);
    }

    #[test]
    fn two_broadcasters_collide_at_hub() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .spawn(|info| {
                if info.node.index() == 1 || info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        assert_eq!(e.metrics().collisions, 1);
    }

    #[test]
    fn unreliable_edge_silent_under_reliable_only() {
        // G: path 0-1; G' adds (0, 2)... need G connected over 3 nodes.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        let net = DualGraph::new(g, gp).unwrap();
        let mut e = EngineBuilder::new(net)
            .spawn(|info| {
                if info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        // Node 0 must not hear node 2 over the (inactive) unreliable edge.
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![None]),
            _ => panic!(),
        }
        // Node 1 hears node 2 over the reliable edge.
        match &e.procs()[1] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(3)]),
            _ => panic!(),
        }
    }

    #[test]
    fn unreliable_edge_delivers_under_all_unreliable() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        let net = DualGraph::new(g, gp).unwrap();
        let mut e = EngineBuilder::new(net)
            .adversary(crate::adversary::AllUnreliable)
            .spawn(|info| {
                if info.node.index() == 2 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        match &e.procs()[0] {
            Node::Listener(l) => assert_eq!(l.heard, vec![Some(3)]),
            _ => panic!(),
        }
    }

    #[test]
    fn sleeping_nodes_neither_send_nor_receive() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .wake_rounds(vec![1, 1, 3, 1])
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter)
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.run_rounds(2);
        match &e.procs()[2] {
            // Asleep for rounds 1-2: no receptions recorded.
            Node::Listener(l) => assert!(l.heard.is_empty()),
            _ => panic!(),
        }
        e.step();
        match &e.procs()[2] {
            // Awake from round 3; hears silence (not adjacent to node 1).
            Node::Listener(l) => assert_eq!(l.heard.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn oversize_messages_counted() {
        let net = star_net();
        let mut e = EngineBuilder::new(net)
            .max_message_bits(16)
            .spawn(|info| {
                if info.node.index() == 1 {
                    Node::Chatter(Chatter) // u32 message: 32 bits > 16
                } else {
                    Node::Listener(Listener { heard: Vec::new() })
                }
            })
            .unwrap();
        e.step();
        assert_eq!(e.metrics().oversize_messages, 1);
    }

    #[test]
    fn builder_validation() {
        let net = star_net();
        let err = EngineBuilder::new(net)
            .wake_rounds(vec![1, 2])
            .spawn(|_| Node::Chatter(Chatter));
        assert!(matches!(err.map(|_| ()), Err(EngineError::BadWakeRounds)));
    }

    #[test]
    fn determinism_under_same_seed() {
        // Random chatters: same seed => same trace.
        struct Coin;
        impl Process for Coin {
            type Msg = u32;
            fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast(ctx.my_id.get())
                } else {
                    Action::Idle
                }
            }
            fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
            fn output(&self) -> Option<bool> {
                None
            }
        }
        let run = |seed| {
            let mut e = EngineBuilder::new(star_net())
                .seed(seed)
                .record_trace(true)
                .spawn(|_| Coin)
                .unwrap();
            e.run_rounds(50);
            e.trace().unwrap().clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn auto_mode_resolves_by_density() {
        // Dense: a 256-clique has edge_slots = 256·255 ≫ 3·256·4 words.
        let clique = DualGraph::classic(Graph::complete(256)).unwrap();
        let dense = EngineBuilder::new(clique)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(dense.step_mode(), StepMode::Bitset);

        // Sparse: a path has avg degree ~2, far under the 3-words-per-node
        // break-even, so the scalar scatter stays selected.
        let edges: Vec<_> = (0..255).map(|i| (i, i + 1)).collect();
        let path = DualGraph::classic(Graph::from_edges(256, edges).unwrap()).unwrap();
        let sparse = EngineBuilder::new(path)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(sparse.step_mode(), StepMode::Scalar);

        // Explicit overrides win over the density rule.
        let forced = EngineBuilder::new(DualGraph::classic(Graph::complete(64)).unwrap())
            .step_mode(StepMode::Scalar)
            .spawn(|_| Node::Chatter(Chatter))
            .unwrap();
        assert_eq!(forced.step_mode(), StepMode::Scalar);
    }

    #[test]
    fn auto_mode_density_boundary_is_exact() {
        // n = 64 => words = 1 => break-even at 3·64·1 = 192 edge slots =
        // 96 undirected edges. A connected graph with exactly 96 edges
        // sits on the threshold (bitset); one edge fewer falls back to
        // scalar.
        let graph_with_edges = |extra_chords: usize| {
            let mut edges: Vec<(usize, usize)> = (0..63).map(|i| (i, i + 1)).collect();
            edges.extend((2..2 + extra_chords).map(|j| (0, j + 1)));
            DualGraph::classic(Graph::from_edges(64, edges).unwrap()).unwrap()
        };
        let at = graph_with_edges(33); // 63 + 33 = 96 edges
        assert_eq!(at.g_csr().edge_slots(), 192);
        assert_eq!(auto_step_mode(&at), StepMode::Bitset);
        let below = graph_with_edges(32); // 95 edges
        assert_eq!(below.g_csr().edge_slots(), 190);
        assert_eq!(auto_step_mode(&below), StepMode::Scalar);
    }

    #[test]
    fn break_even_threshold_never_wraps() {
        // A pathological n whose 3·n·⌈n/64⌉ product overflows usize must
        // report "no threshold" (treated as not-dense), not a wrapped
        // small number that would mis-select the bitset tier.
        assert_eq!(bitset_break_even(usize::MAX), None);
        assert_eq!(bitset_break_even(1 << 40), None);
        // Sane sizes still compute exactly.
        assert_eq!(bitset_break_even(64), Some(192));
        assert_eq!(bitset_break_even(1024), Some(3 * 1024 * 16));
        assert_eq!(bitset_break_even(0), Some(0));
    }

    #[test]
    fn batched_tier_matches_bitset_solo_and_in_batch() {
        // Random chatters over the dense circulant + clique dual: the
        // batch-of-one path and a 3-trial batch must both reproduce the
        // bitset tier's executions exactly. (The broad differential suite
        // at B ∈ {1, 2, 7, 64} lives in tests/determinism.rs.)
        struct Coin {
            heard: Vec<Option<u32>>,
        }
        impl Process for Coin {
            type Msg = u32;
            fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
                if ctx.rng.gen_bool(0.3) {
                    Action::Broadcast(ctx.my_id.get())
                } else {
                    Action::Idle
                }
            }
            fn receive(&mut self, _: &mut Context<'_>, m: Option<&u32>) {
                self.heard.push(m.copied());
            }
            fn output(&self) -> Option<bool> {
                None
            }
        }
        let net = || {
            let mut edges = Vec::new();
            for i in 0..70usize {
                for d in 1..=20 {
                    edges.push((i, (i + d) % 70));
                }
            }
            let g = Graph::from_edges(70, edges).unwrap();
            DualGraph::new(g, Graph::complete(70)).unwrap()
        };
        let spawn = |seed: u64, mode: StepMode| {
            EngineBuilder::new(net())
                .seed(seed)
                .adversary(crate::adversary::AllUnreliable)
                .record_trace(true)
                .step_mode(mode)
                .spawn(|_| Coin { heard: Vec::new() })
                .unwrap()
        };
        let capture = |e: &Engine<Coin>| {
            let heard: Vec<_> = e.procs().iter().map(|p| p.heard.clone()).collect();
            (e.trace().unwrap().clone(), heard, *e.metrics())
        };
        for seed in [5u64, 17, 23] {
            let mut bit = spawn(seed, StepMode::Bitset);
            bit.run_rounds(40);
            // Batch-of-one path (also what StepMode::Batched steps).
            let mut one = spawn(seed, StepMode::Batched);
            one.run_rounds(40);
            assert_eq!(capture(&bit), capture(&one), "seed {seed} solo");
        }
        // A 3-trial batch, stepped in lockstep.
        let mut batch = BatchedEngine::new(vec![
            spawn(5, StepMode::Bitset),
            spawn(17, StepMode::Bitset),
            spawn(23, StepMode::Bitset),
        ]);
        batch.run_rounds_each(40);
        for (engine, seed) in batch.engines().iter().zip([5u64, 17, 23]) {
            let mut reference = spawn(seed, StepMode::Bitset);
            reference.run_rounds(40);
            assert_eq!(capture(&reference), capture(engine), "seed {seed} batched");
        }
    }

    #[test]
    fn run_all_selects_batching_only_for_dense_multi_trial_runs() {
        // Dense clique, 3 trials: engines resolve to Bitset, run_all
        // batches them; outcomes and rounds match per-trial runs.
        let clique = || DualGraph::classic(Graph::complete(72)).unwrap();
        let spawn = |seed: u64| {
            EngineBuilder::new(clique())
                .seed(seed)
                .spawn(|_| Node::Chatter(Chatter))
                .unwrap()
        };
        let (engines, outcomes) = BatchedEngine::run_all(vec![spawn(1), spawn(2), spawn(3)], 12);
        assert_eq!(engines.len(), 3);
        for (engine, outcome) in engines.iter().zip(&outcomes) {
            assert_eq!(engine.round(), 12);
            assert_eq!(outcome.stop, StopReason::MaxRounds);
            assert_eq!(outcome.rounds, 12);
        }
        // A single trial never batches; a scalar-resolved (sparse) set
        // falls back to solo runs. Both still execute to the budget.
        let (solo, _) = BatchedEngine::run_all(vec![spawn(1)], 12);
        assert_eq!(solo[0].round(), 12);
        let path = || {
            let edges: Vec<_> = (0..71).map(|i| (i, i + 1)).collect();
            DualGraph::classic(Graph::from_edges(72, edges).unwrap()).unwrap()
        };
        let sparse: Vec<_> = (0..3)
            .map(|s| {
                EngineBuilder::new(path())
                    .seed(s)
                    .spawn(|_| Node::Chatter(Chatter))
                    .unwrap()
            })
            .collect();
        assert!(sparse.iter().all(|e| e.step_mode() == StepMode::Scalar));
        let (engines, _) = BatchedEngine::run_all(sparse, 12);
        assert_eq!(engines[0].round(), 12);
    }

    #[test]
    fn bitset_tier_matches_scalar() {
        // Random chatters over a clique with unreliable chords: the two
        // tiers must produce identical traces and transcripts. (The broad
        // differential suite lives in tests/determinism.rs; this is the
        // in-crate smoke.)
        struct Coin {
            heard: Vec<Option<u32>>,
        }
        impl Process for Coin {
            type Msg = u32;
            fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
                if ctx.rng.gen_bool(0.3) {
                    Action::Broadcast(ctx.my_id.get())
                } else {
                    Action::Idle
                }
            }
            fn receive(&mut self, _: &mut Context<'_>, m: Option<&u32>) {
                self.heard.push(m.copied());
            }
            fn output(&self) -> Option<bool> {
                None
            }
        }
        let net = || {
            // G: dense circulant (70 nodes, offsets 1..=20, degree 40);
            // G': the full clique, so E' \ E is a real unreliable layer.
            let mut edges = Vec::new();
            for i in 0..70usize {
                for d in 1..=20 {
                    edges.push((i, (i + d) % 70));
                }
            }
            let g = Graph::from_edges(70, edges).unwrap();
            DualGraph::new(g, Graph::complete(70)).unwrap()
        };
        let run = |mode| {
            let mut e = EngineBuilder::new(net())
                .seed(5)
                .adversary(crate::adversary::AllUnreliable)
                .record_trace(true)
                .step_mode(mode)
                .spawn(|_| Coin { heard: Vec::new() })
                .unwrap();
            e.run_rounds(40);
            let heard: Vec<_> = e.procs().iter().map(|p| p.heard.clone()).collect();
            (e.trace().unwrap().clone(), heard, *e.metrics())
        };
        assert_eq!(run(StepMode::Scalar), run(StepMode::Bitset));
    }
}
