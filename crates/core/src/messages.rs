//! Message framing with explicit bit-size accounting.
//!
//! The model bounds messages by `b` bits; algorithm running times depend on
//! `b` (e.g. the CCDS bound `O(Δ·log²n/b + log³n)`). Messages in this crate
//! are therefore wrapped in a [`Wire`] frame that carries the encoded size
//! computed by the sender (ids cost [`id_bits`]`(n)` bits each, tags a few
//! bits), so the engine can enforce the bound and the experiment harness can
//! report bit traffic.
//!
//! [`id_bits`]: crate::params::id_bits

use radio_sim::MessageSize;

/// A message body together with its encoded size in bits.
///
/// # Examples
///
/// ```
/// use radio_structures::messages::Wire;
/// use radio_sim::MessageSize;
/// let w = Wire::new("payload", 42);
/// assert_eq!(w.bits(), 42);
/// assert_eq!(*w.body(), "payload");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire<T> {
    body: T,
    bits: u64,
}

impl<T> Wire<T> {
    /// Frames `body` with the given encoded size.
    pub fn new(body: T, bits: u64) -> Self {
        Wire { body, bits }
    }

    /// The message body.
    pub fn body(&self) -> &T {
        &self.body
    }

    /// Consumes the frame, returning the body.
    pub fn into_body(self) -> T {
        self.body
    }
}

impl<T> MessageSize for Wire<T> {
    fn bits(&self) -> u64 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accessors() {
        let w = Wire::new(vec![1u32, 2], 64);
        assert_eq!(w.bits(), 64);
        assert_eq!(w.body().len(), 2);
        assert_eq!(w.into_body(), vec![1, 2]);
    }
}
